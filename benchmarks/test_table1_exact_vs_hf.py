"""Figure 8 (the paper's main table): exact vs Espresso-HF on the suite.

Reproduces, per circuit: number of dhf-primes, exact cover size and time,
Espresso-HF essential-class count, cover size and time — and the headline
claims: the exact flow fails on cache-ctrl / pscsi-pscsi / stetson-p1 while
Espresso-HF solves everything, matching the exact minimum wherever the
exact flow finishes.
"""

import pytest

from benchmarks.conftest import BENCH_EXACT_BUDGET, EXACT_FAILING, EXACT_SOLVABLE, SMALL_CIRCUITS
from repro.exact import exact_hazard_free_minimize, ExactFailure
from repro.hf import espresso_hf
from repro.hazards.verify import is_hazard_free_cover


@pytest.mark.parametrize("name", SMALL_CIRCUITS)
def test_hf_small_circuits(benchmark, instances, name):
    """Espresso-HF runtime on the small circuits (repeatable rounds)."""
    instance = instances[name]
    result = benchmark(lambda: espresso_hf(instance))
    assert is_hazard_free_cover(instance, result.cover)


@pytest.mark.parametrize("name", ["pe-send-ifc", "pscsi-tsend-bm", "stetson-p2", "sd-control"])
def test_hf_medium_circuits(benchmark, instances, name):
    """Espresso-HF runtime on the medium circuits (single round)."""
    instance = instances[name]
    result = benchmark.pedantic(
        lambda: espresso_hf(instance), rounds=1, iterations=1
    )
    assert is_hazard_free_cover(instance, result.cover)


@pytest.mark.parametrize("name", EXACT_FAILING)
def test_hf_solves_circuits_exact_cannot(benchmark, instances, name):
    """The paper's headline: Espresso-HF solves the three circuits the
    exact method fails on."""
    instance = instances[name]
    result = benchmark.pedantic(
        lambda: espresso_hf(instance), rounds=1, iterations=1
    )
    assert is_hazard_free_cover(instance, result.cover)


@pytest.mark.parametrize("name", SMALL_CIRCUITS)
def test_exact_small_circuits(benchmark, instances, name):
    """Exact-flow runtime where it succeeds."""
    instance = instances[name]
    result = benchmark(
        lambda: exact_hazard_free_minimize(instance, budget=BENCH_EXACT_BUDGET)
    )
    assert is_hazard_free_cover(instance, result.cover)


@pytest.mark.parametrize("name", EXACT_FAILING)
def test_exact_fails_on_large_circuits(benchmark, instances, name):
    """The exact flow must hit a stage budget on the paper's three failures."""
    instance = instances[name]

    def run():
        with pytest.raises(ExactFailure):
            exact_hazard_free_minimize(instance, budget=BENCH_EXACT_BUDGET)

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_hf_matches_exact_minimum_everywhere_solvable(benchmark, instances):
    """Cover-quality claim: HF cardinality == exact minimum on every circuit
    the exact flow can finish (paper: all but one)."""

    def run():
        mismatches = []
        for name in EXACT_SOLVABLE:
            instance = instances[name]
            exact = exact_hazard_free_minimize(instance, budget=BENCH_EXACT_BUDGET)
            hf = espresso_hf(instance)
            if hf.num_cubes != exact.num_cubes:
                mismatches.append((name, hf.num_cubes, exact.num_cubes))
        return mismatches

    mismatches = benchmark.pedantic(run, rounds=1, iterations=1)
    assert mismatches == []
