"""Shared fixtures for the benchmark suite.

The heavy circuits are built once per session; the exact-flow budget is
deliberately tighter than the library default so a full benchmark run stays
in the minutes range while still reproducing the paper's failure pattern.
"""

import pytest

from repro.bm.benchmarks import BENCHMARKS, build_benchmark
from repro.exact import ExactBudget

#: circuits the exact flow solves under the benchmark budget (paper: 12/15)
EXACT_SOLVABLE = [
    b.name for b in BENCHMARKS if b.exact_failed_in_paper is None
]
EXACT_FAILING = [b.name for b in BENCHMARKS if b.exact_failed_in_paper]

#: small circuits suitable for repeated timing rounds
SMALL_CIRCUITS = [
    "dram-ctrl",
    "pscsi-ircv",
    "sscsi-isend-bm",
    "sscsi-trcv-bm",
    "sscsi-tsend-bm",
    "stetson-p3",
]

BENCH_EXACT_BUDGET = ExactBudget(
    prime_limit=50_000,
    transform_limit=100_000,
    covering_node_limit=300_000,
    time_limit_s=20.0,
)


@pytest.fixture(scope="session")
def instances():
    """All fifteen suite instances, built once."""
    return {b.name: build_benchmark(b.name) for b in BENCHMARKS}
