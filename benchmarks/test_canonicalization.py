"""Dhf-canonicalization as problem-size reduction (paper §3.2).

Canonical required cubes "may have smaller size than Q, i.e. being a more
efficient representation of the problem" and, being larger cubes, speed up
EXPAND.  This bench measures |Q| vs |Q_f| on the suite and times the
canonicalization itself.
"""

import pytest

from benchmarks.conftest import SMALL_CIRCUITS
from repro.bm.benchmarks import BENCHMARKS
from repro.hf import HFContext


@pytest.mark.parametrize("name", SMALL_CIRCUITS + ["sd-control", "stetson-p1"])
def test_canonicalization_time(benchmark, instances, name):
    instance = instances[name]

    def run():
        ctx = HFContext(instance)
        return ctx.canonical_required()

    qf = benchmark(run)
    assert qf is not None


def test_problem_size_reduction(benchmark, instances):
    """|Q_f| <= |Q| on every suite circuit, strictly smaller on several."""

    def run():
        rows = []
        for bench in BENCHMARKS:
            instance = instances[bench.name]
            ctx = HFContext(instance)
            qf = ctx.canonical_required()
            rows.append((bench.name, len(instance.required_cubes()), len(qf)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, q, qf in rows:
        assert qf <= q, (name, q, qf)
    assert any(qf < q for _, q, qf in rows)


def test_canonical_cubes_dominate_originals(benchmark, instances):
    """Every canonical cube contains its original required cube and is a
    dhf-implicant (the equivalence of the two covering problems, §3.2)."""
    instance = instances["stetson-p2"]

    def run():
        ctx = HFContext(instance)
        qf = ctx.canonical_required()
        for t in qf:
            assert t.canonical.contains_input(t.original)
            assert ctx.is_dhf_implicant(t.canonical, 1 << t.output)
        return len(qf)

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 0
