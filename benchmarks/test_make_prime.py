"""MAKE_DHF_PRIME ablation (paper §3.8).

The main loop stops expanding once no more required cubes can be absorbed;
the final pass to dhf-primes exists "for literal reduction and testability".
This bench verifies the pass never changes cover cardinality, strictly
reduces literal counts on the suite, and measures its cost.
"""

import pytest

from benchmarks.conftest import SMALL_CIRCUITS
from repro.hf import espresso_hf, EspressoHFOptions
from repro.hazards.verify import is_hazard_free_cover

WITH = EspressoHFOptions(make_prime=True)
WITHOUT = EspressoHFOptions(make_prime=False)


@pytest.mark.parametrize("name", SMALL_CIRCUITS)
def test_with_make_prime(benchmark, instances, name):
    instance = instances[name]
    result = benchmark(lambda: espresso_hf(instance, WITH))
    assert is_hazard_free_cover(instance, result.cover)


def test_literal_reduction(benchmark, instances):
    """MAKE_DHF_PRIME reduces literals without changing cardinality."""

    def run():
        rows = []
        for name in SMALL_CIRCUITS + ["pscsi-isend", "stetson-p2", "sd-control"]:
            instance = instances[name]
            with_p = espresso_hf(instance, WITH)
            without_p = espresso_hf(instance, WITHOUT)
            rows.append(
                (
                    name,
                    with_p.num_cubes,
                    without_p.num_cubes,
                    with_p.num_literals,
                    without_p.num_literals,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, c_with, c_without, l_with, l_without in rows:
        assert c_with <= c_without, name
        assert l_with <= l_without, name
    # literal count strictly improves somewhere on the suite
    assert any(l_with < l_without for _, _, _, l_with, l_without in rows)


def test_primes_cannot_be_raised(benchmark, instances):
    """Post-pass cubes are dhf-prime: no single literal raise is feasible."""
    from repro.hf import HFContext

    instance = instances["dram-ctrl"]
    result = espresso_hf(instance, WITH)
    ctx = HFContext(instance)

    def run():
        checked = 0
        for c in result.cover:
            for i in range(instance.n_inputs):
                if c.literal(i) == 3:
                    continue
                raised = c.with_literal(i, 3)
                assert ctx.supercube_dhf([raised], c.outbits) is None
                checked += 1
        return checked

    assert benchmark(run) > 0
