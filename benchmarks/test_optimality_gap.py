"""Cover-quality claim: Espresso-HF "almost always obtains an exactly
minimum cover" (paper abstract and §5).

Measures the fraction of seeded random instances on which the heuristic
matches the exact minimum, and bounds the worst-case excess.
"""

from repro.bm.random_spec import random_instance
from repro.exact import exact_hazard_free_minimize
from repro.hazards import hazard_free_solution_exists
from repro.hf import espresso_hf


def _sweep(n_inputs, n_outputs, seeds):
    total = matched = 0
    worst_gap = 0
    for seed in seeds:
        inst = random_instance(n_inputs, n_outputs, n_transitions=4, seed=seed)
        if not inst.transitions or not hazard_free_solution_exists(inst):
            continue
        exact = exact_hazard_free_minimize(inst)
        hf = espresso_hf(inst)
        total += 1
        gap = hf.num_cubes - exact.num_cubes
        assert gap >= 0
        worst_gap = max(worst_gap, gap)
        if gap == 0:
            matched += 1
    return total, matched, worst_gap


def test_single_output_optimality(benchmark):
    total, matched, worst = benchmark.pedantic(
        lambda: _sweep(4, 1, range(80)), rounds=1, iterations=1
    )
    assert total >= 40
    assert matched / total >= 0.9  # "almost always"
    assert worst <= 2


def test_multi_output_optimality(benchmark):
    total, matched, worst = benchmark.pedantic(
        lambda: _sweep(4, 2, range(60)), rounds=1, iterations=1
    )
    assert total >= 30
    assert matched / total >= 0.85
    assert worst <= 2


def test_five_input_optimality(benchmark):
    total, matched, worst = benchmark.pedantic(
        lambda: _sweep(5, 1, range(40)), rounds=1, iterations=1
    )
    assert total >= 20
    assert matched / total >= 0.85
    assert worst <= 2
