"""Closed-loop validation: minimized suite circuits run glitch-free.

The strongest end-to-end check in the repository: the minimized cover is
operated as the actual locally-clocked feedback machine and driven through
random walks of its own burst-mode specification with random per-gate and
per-wire delays.  Hazard-free covers must complete every walk with zero
glitches and correct state landings.
"""

import pytest

from repro.bm.benchmarks import build_benchmark_synthesis
from repro.hf import espresso_hf
from repro.simulate import run_spec_walk

CIRCUITS = ["dram-ctrl", "pscsi-ircv", "sscsi-trcv-bm", "stetson-p3", "pscsi-isend"]


@pytest.mark.parametrize("name", CIRCUITS)
def test_closed_loop_walks(benchmark, name):
    synth = build_benchmark_synthesis(name)
    cover = espresso_hf(synth.instance).cover

    def run():
        steps = 0
        for seed in range(5):
            steps += len(run_spec_walk(cover, synth, n_steps=25, seed=seed))
        return steps

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 0


def test_closed_loop_large_circuit(benchmark):
    """Even cache-ctrl — unsolvable for the exact flow — runs clean."""
    synth = build_benchmark_synthesis("cache-ctrl")
    cover = espresso_hf(synth.instance).cover

    def run():
        return len(run_spec_walk(cover, synth, n_steps=30, seed=1))

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 0
