"""Multi-output vs single-output minimization (paper §1: "implements both
single-output and multi-output minimization").

Multi-output minimization lets one AND gate feed several outputs; this bench
measures the sharing benefit over per-output minimization on the suite and
on the hand-written controller library.
"""

import pytest

from benchmarks.conftest import SMALL_CIRCUITS
from repro.bm.library import CONTROLLERS
from repro.bm.synthesis import synthesize
from repro.hf import espresso_hf, espresso_hf_per_output
from repro.hazards.verify import is_hazard_free_cover


@pytest.mark.parametrize("name", SMALL_CIRCUITS)
def test_multi_output_mode(benchmark, instances, name):
    instance = instances[name]
    result = benchmark(lambda: espresso_hf(instance))
    assert is_hazard_free_cover(instance, result.cover)


@pytest.mark.parametrize("name", SMALL_CIRCUITS)
def test_per_output_mode(benchmark, instances, name):
    instance = instances[name]
    result = benchmark(lambda: espresso_hf_per_output(instance))
    assert is_hazard_free_cover(instance, result.cover)


def test_sharing_never_loses(benchmark, instances):
    """Multi-output covers are never larger than merged per-output covers."""

    def run():
        rows = []
        for name in SMALL_CIRCUITS + ["pe-send-ifc", "pscsi-isend"]:
            instance = instances[name]
            multi = espresso_hf(instance).num_cubes
            per = espresso_hf_per_output(instance).num_cubes
            rows.append((name, multi, per))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, multi, per in rows:
        assert multi <= per, (name, multi, per)


def test_sharing_on_library_controllers(benchmark):
    """The hand-written controllers all benefit from (or tie under)
    multi-output sharing, and both modes verify hazard-free."""

    def run():
        rows = []
        for name, factory in sorted(CONTROLLERS.items()):
            instance = synthesize(factory()).instance
            multi = espresso_hf(instance)
            per = espresso_hf_per_output(instance)
            assert is_hazard_free_cover(instance, multi.cover)
            assert is_hazard_free_cover(instance, per.cover)
            rows.append((name, multi.num_cubes, per.num_cubes))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, multi, per in rows:
        assert multi <= per, (name, multi, per)
