"""Figure 1: hazard-freedom costs cover cardinality (5 vs 4 products).

Also sweeps random instances to measure how often and by how much the
minimal hazard-free cover exceeds the minimal unconstrained cover.
"""

from repro.bench.figure1 import (
    figure1_experiment,
    figure1_instance,
    minimum_plain_cover,
)
from repro.bm.random_spec import random_instance
from repro.exact import exact_hazard_free_minimize
from repro.hazards import hazard_free_solution_exists
from repro.simulate import SopNetwork, find_glitch


def test_figure1_gap(benchmark):
    """The frozen Figure 1 instance: minimal HF = 5, minimal plain = 4."""
    result = benchmark.pedantic(figure1_experiment, rounds=1, iterations=1)
    assert result.hazard_free_cubes == 5
    assert result.plain_cubes == 4


def test_figure1_plain_cover_glitches(benchmark):
    """The 4-product minimum cover really glitches under random delays."""
    instance = figure1_instance()
    result = figure1_experiment()
    network = SopNetwork(result.plain_cover)

    def run():
        return [
            t for t in instance.transitions if find_glitch(network, t, trials=300)
        ]

    glitching = benchmark.pedantic(run, rounds=1, iterations=1)
    assert glitching  # at least one specified transition glitches


def test_figure1_hf_cover_never_glitches(benchmark):
    instance = figure1_instance()
    result = figure1_experiment()
    network = SopNetwork(result.hazard_free_cover)

    def run():
        return [
            t for t in instance.transitions if find_glitch(network, t, trials=300)
        ]

    glitching = benchmark.pedantic(run, rounds=1, iterations=1)
    assert glitching == []


def test_hazard_cost_on_suite(benchmark, instances):
    """Suite-level cost of hazard-freedom: Espresso-HF covers vs a
    hazard-oblivious heuristic baseline minimizing the same specification
    (required-cube union per output, same OFF-set, rest don't-care)."""
    from repro.cubes import Cover
    from repro.espresso import espresso
    from repro.hf import espresso_hf

    names = ["dram-ctrl", "pscsi-ircv", "sscsi-isend-bm", "stetson-p3", "pscsi-isend"]

    def run():
        rows = []
        for name in names:
            inst = instances[name]
            hf = espresso_hf(inst).num_cubes
            plain_total = 0
            for j in range(inst.n_outputs):
                req = Cover(
                    inst.n_inputs,
                    [q.cube for q in inst.required_cubes() if q.output == j],
                )
                if req.is_empty:
                    continue
                off = inst.off_for_output(j)
                plain_total += len(espresso(req, off=off))
            rows.append((name, hf, plain_total))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # the multi-output hazard-free cover must stay in the same ballpark as
    # the per-output hazard-oblivious baseline (sharing vs hazard cost)
    for name, hf, plain in rows:
        assert hf > 0 and plain > 0, name


def test_hazard_cost_sweep(benchmark):
    """Random 4-variable sweep: HF minimum >= plain minimum, strictly larger
    on a nontrivial fraction of instances."""

    def run():
        gaps = []
        for seed in range(60):
            inst = random_instance(4, 1, n_transitions=4, seed=seed)
            if not inst.transitions or not hazard_free_solution_exists(inst):
                continue
            hf = exact_hazard_free_minimize(inst)
            plain = minimum_plain_cover(inst)
            gaps.append(hf.num_cubes - len(plain))
        return gaps

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(g >= 0 for g in gaps)
    assert any(g > 0 for g in gaps)
