"""Ablation: LAST_GASP (paper §3.7).

LAST_GASP exists to escape local minima of the inner loop; this bench
verifies it never worsens covers and measures its cost on the suite.
"""

import pytest

from benchmarks.conftest import SMALL_CIRCUITS
from repro.hf import espresso_hf, EspressoHFOptions
from repro.hazards.verify import is_hazard_free_cover

WITH = EspressoHFOptions(use_last_gasp=True)
WITHOUT = EspressoHFOptions(use_last_gasp=False)


@pytest.mark.parametrize("name", SMALL_CIRCUITS)
def test_with_last_gasp(benchmark, instances, name):
    instance = instances[name]
    result = benchmark(lambda: espresso_hf(instance, WITH))
    assert is_hazard_free_cover(instance, result.cover)


@pytest.mark.parametrize("name", SMALL_CIRCUITS)
def test_without_last_gasp(benchmark, instances, name):
    instance = instances[name]
    result = benchmark(lambda: espresso_hf(instance, WITHOUT))
    assert is_hazard_free_cover(instance, result.cover)


def test_last_gasp_never_worsens(benchmark, instances):
    def run():
        rows = []
        for name in SMALL_CIRCUITS + ["pscsi-tsend", "pscsi-tsend-bm", "sd-control"]:
            instance = instances[name]
            rows.append(
                (
                    name,
                    espresso_hf(instance, WITH).num_cubes,
                    espresso_hf(instance, WITHOUT).num_cubes,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, with_c, without_c in rows:
        assert with_c <= without_c, (name, with_c, without_c)
