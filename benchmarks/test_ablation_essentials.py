"""Ablation: essential-equivalence-class detection (paper §3.4, §5).

The paper: "The detection of essentials is crucial for speed and size" and
"quite a few examples can be minimized by just the essential step".  This
bench runs Espresso-HF with and without the essentials step and compares
runtime and cover size, and counts how many suite circuits are minimized to
a guaranteed optimum purely by essentials.
"""

import time

import pytest

from benchmarks.conftest import SMALL_CIRCUITS
from repro.bm.benchmarks import BENCHMARKS
from repro.hf import espresso_hf, EspressoHFOptions
from repro.hazards.verify import is_hazard_free_cover

WITH = EspressoHFOptions(use_essentials=True)
WITHOUT = EspressoHFOptions(use_essentials=False)


@pytest.mark.parametrize("name", SMALL_CIRCUITS)
def test_with_essentials(benchmark, instances, name):
    instance = instances[name]
    result = benchmark(lambda: espresso_hf(instance, WITH))
    assert is_hazard_free_cover(instance, result.cover)


@pytest.mark.parametrize("name", SMALL_CIRCUITS)
def test_without_essentials(benchmark, instances, name):
    instance = instances[name]
    result = benchmark(lambda: espresso_hf(instance, WITHOUT))
    assert is_hazard_free_cover(instance, result.cover)


def test_cover_quality_not_hurt_by_essentials(benchmark, instances):
    """Essential classes never worsen the cover on the suite."""

    def run():
        rows = []
        for name in SMALL_CIRCUITS + ["pe-send-ifc", "pscsi-isend", "stetson-p2"]:
            instance = instances[name]
            with_e = espresso_hf(instance, WITH)
            without_e = espresso_hf(instance, WITHOUT)
            rows.append((name, with_e.num_cubes, without_e.num_cubes))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, with_c, without_c in rows:
        assert with_c <= without_c, (name, with_c, without_c)


def test_many_circuits_solved_purely_by_essentials(benchmark, instances):
    """Count circuits where essentials alone give the whole (hence provably
    minimum) cover — the paper observes this for "quite a few" examples."""

    def run():
        solved = []
        for bench in BENCHMARKS:
            instance = instances[bench.name]
            res = espresso_hf(instance, WITH)
            if res.num_essential_classes == res.num_cubes:
                solved.append(bench.name)
        return solved

    solved = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(solved) >= 8  # a majority of the suite
