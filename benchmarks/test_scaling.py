"""Scaling behaviour of Espresso-HF and its core operators.

The paper positions Espresso-HF as the tool that scales where the exact
flow cannot; these benches measure how the heuristic's runtime grows with
the synthesized controller size and time the hot operators.
"""

import pytest

from repro.bm.random_spec import random_burst_mode_spec
from repro.bm.synthesis import synthesize
from repro.bm.spec import SpecError
from repro.hf import espresso_hf, HFContext
from repro.hazards import hazard_free_solution_exists
from repro.hazards.verify import is_hazard_free_cover

SIZES = [2, 3, 4, 5, 6]


def _instance_for(n_states: int):
    for seed in range(80):
        try:
            spec = random_burst_mode_spec(4, 3, n_states, seed=seed, max_burst=2)
            result = synthesize(spec)
        except SpecError:
            continue
        if hazard_free_solution_exists(result.instance):
            return result.instance
    raise RuntimeError(f"no solvable instance found for {n_states} states")


@pytest.mark.parametrize("n_states", SIZES)
def test_hf_scaling_with_state_count(benchmark, n_states):
    instance = _instance_for(n_states)
    result = benchmark.pedantic(
        lambda: espresso_hf(instance), rounds=1, iterations=1
    )
    assert is_hazard_free_cover(instance, result.cover)


def test_supercube_dhf_operator(benchmark, instances):
    """The hot inner operator: canonicalization over the suite's largest
    solvable circuit."""
    instance = instances["sd-control"]
    ctx = HFContext(instance)
    reqs = instance.required_cubes()

    def run():
        count = 0
        for q in reqs:
            if ctx.supercube_dhf([q.cube], 1 << q.output) is not None:
                count += 1
        return count

    assert benchmark(run) == len(reqs)


def test_required_cube_generation(benchmark, instances):
    """Required-cube derivation (minimal hitting sets) on stetson-p1."""
    from repro.hazards.instance import HazardFreeInstance

    src = instances["stetson-p1"]

    def run():
        fresh = HazardFreeInstance(
            src.on, src.off, src.transitions, name="copy", validate=False
        )
        return len(fresh.required_cubes())

    assert benchmark.pedantic(run, rounds=1, iterations=1) == 386


def test_verifier_scaling(benchmark, instances):
    """The Theorem 2.11 verifier on the largest circuit's HF cover."""
    instance = instances["stetson-p1"]
    cover = espresso_hf(instance).cover
    from repro.hazards.verify import verify_hazard_free_cover

    violations = benchmark.pedantic(
        lambda: verify_hazard_free_cover(instance, cover), rounds=1, iterations=1
    )
    assert violations == []
