"""Micro-benchmarks of the substrate operators.

Not a paper artifact — a performance-regression guard for the cube algebra
and the unate-recursive core everything else sits on.
"""

import random

from repro.cubes import Cube, Cover, minimize_scc
from repro.cubes.operations import cube_sharp
from repro.espresso import complement, tautology, all_primes
from repro.espresso.espresso import espresso
from repro.mincov import solve_mincov


def _random_cover(n, k, seed):
    rng = random.Random(seed)
    cubes = []
    for _ in range(k):
        lits = [rng.choice((1, 2, 3)) for _ in range(n)]
        cubes.append(Cube.from_literals(lits))
    return Cover(n, cubes)


def test_cube_intersection_throughput(benchmark):
    cover = _random_cover(24, 200, 1)
    cubes = list(cover)

    def run():
        hits = 0
        for a in cubes:
            for b in cubes:
                if a.intersects_input(b):
                    hits += 1
        return hits

    assert benchmark(run) > 0


def test_scc_minimization(benchmark):
    cover = _random_cover(16, 300, 2)
    result = benchmark(lambda: minimize_scc(cover))
    assert len(result) <= 300


def test_sharp_operation(benchmark):
    a = Cube.full(20)
    b = Cube.from_literals([1, 2] * 10)

    def run():
        return cube_sharp(a, b)

    assert len(benchmark(run)) == 20


def test_tautology_check(benchmark):
    cover = _random_cover(10, 60, 3)
    benchmark(lambda: tautology(cover))


def test_complement_medium(benchmark):
    cover = _random_cover(12, 25, 4)
    comp = benchmark(lambda: complement(cover))
    assert comp is not None


def test_all_primes_medium(benchmark):
    cover = _random_cover(8, 15, 5)
    primes = benchmark(lambda: all_primes(cover))
    assert primes


def test_espresso_loop(benchmark):
    cover = _random_cover(8, 30, 6)
    result = benchmark.pedantic(lambda: espresso(cover), rounds=1, iterations=1)
    assert result.semantically_equal(cover)


def test_mincov_exact(benchmark):
    rng = random.Random(7)
    rows = [
        sorted(rng.sample(range(30), rng.randint(2, 5))) for _ in range(40)
    ]
    solution = benchmark(lambda: solve_mincov(rows, 30))
    assert solution is not None
