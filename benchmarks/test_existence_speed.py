"""Section 4's claim: the Theorem 4.1 existence check is much faster than
deciding existence through the exact flow's dhf-prime table.

The fast check is a handful of forced supercube expansions per required
cube; the exact route must generate *all* dhf-primes first.  On the large
circuits the exact route does not finish at all, while the fast check still
answers — reproduced here as the ultimate speedup.
"""

import pytest

from benchmarks.conftest import BENCH_EXACT_BUDGET, EXACT_FAILING, SMALL_CIRCUITS
from repro.bm.random_spec import random_instance
from repro.exact import all_dhf_primes
from repro.espresso.primes import PrimeExplosionError
from repro.exact.dhf_primes import DhfTransformExplosionError
from repro.hazards import existence_report, hazard_free_solution_exists


@pytest.mark.parametrize("name", SMALL_CIRCUITS + ["stetson-p2", "sd-control"])
def test_fast_existence(benchmark, instances, name):
    instance = instances[name]
    exists = benchmark(lambda: hazard_free_solution_exists(instance))
    assert exists


@pytest.mark.parametrize("name", SMALL_CIRCUITS)
def test_existence_via_dhf_prime_table(benchmark, instances, name):
    """The exact route: generate all dhf-primes, check the table (slow)."""
    instance = instances[name]

    def run():
        primes = all_dhf_primes(instance)
        for q in instance.required_cubes():
            if not any(
                p.has_output(q.output) and p.contains_input(q.cube) for p in primes
            ):
                return False
        return True

    assert benchmark(run)


@pytest.mark.parametrize("name", EXACT_FAILING)
def test_fast_existence_answers_where_exact_route_cannot(benchmark, instances, name):
    """On the three paper-failing circuits the dhf-prime route explodes but
    Theorem 4.1 still answers instantly."""
    instance = instances[name]
    exists = benchmark.pedantic(
        lambda: hazard_free_solution_exists(instance), rounds=1, iterations=1
    )
    assert exists
    with pytest.raises((PrimeExplosionError, DhfTransformExplosionError)):
        all_dhf_primes(
            instance,
            prime_limit=BENCH_EXACT_BUDGET.prime_limit,
            transform_limit=BENCH_EXACT_BUDGET.transform_limit,
            deadline=__import__("time").perf_counter() + BENCH_EXACT_BUDGET.time_limit_s,
        )


def test_existence_agrees_with_exact_route_on_random(benchmark):
    """Both existence criteria agree (including unsolvable instances)."""

    def run():
        agree = 0
        for seed in range(40):
            inst = random_instance(4, 1, n_transitions=3, seed=seed)
            fast = hazard_free_solution_exists(inst)
            primes = all_dhf_primes(inst)
            slow = all(
                any(p.contains_input(q.cube) for p in primes)
                for q in inst.required_cubes()
            )
            assert fast == slow
            agree += 1
        return agree

    assert benchmark.pedantic(run, rounds=1, iterations=1) == 40


def test_existence_report_details(benchmark, instances):
    """The report carries per-required-cube canonical expansions."""
    instance = instances["dram-ctrl"]
    report = benchmark(lambda: existence_report(instance))
    assert report.exists
    assert len(report.canonical) == len(instance.required_cubes())
