"""Transformation of prime implicants into dhf-prime implicants.

Within a prime that does not contain a privileged cube's start point, no
subcube can contain it either, so an illegal intersection can only be
resolved by (a) shrinking the input part to avoid the privileged cube
entirely (the sharp operation gives the maximal such subcubes) or (b) for a
multi-output prime, dropping the offending output.  Recursing over all
violations and keeping the maximal survivors yields exactly the set of
dhf-prime implicants.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from repro.cubes.cube import Cube
from repro.cubes.cover import Cover
from repro.cubes.containment import maximal_cubes
from repro.cubes.operations import cube_sharp
from repro.espresso.complement import complement
from repro.espresso.primes import all_primes, all_primes_multi
from repro.hazards.dhf import illegally_intersects
from repro.hazards.instance import HazardFreeInstance, PrivilegedCube


class DhfTransformExplosionError(RuntimeError):
    """Raised when prime → dhf-prime transformation exceeds its budget.

    This is the stage that defeated the exact minimizer on ``cache-ctrl``
    in the paper's experiments.
    """


def instance_primes(
    instance: HazardFreeInstance,
    limit: Optional[int] = None,
    deadline: Optional[float] = None,
) -> List[Cube]:
    """All (multi-output) prime implicants of the instance's function.

    The implicant space of output ``j`` is the complement of its OFF-set
    (ON ∪ don't-care), so primes are generated from those per-output covers.
    """
    n, m = instance.n_inputs, instance.n_outputs
    union = Cover(n, (), m)
    for j in range(m):
        comp = complement(instance.off_for_output(j))
        for c in comp:
            union.append(Cube(n, c.inbits, 1 << j, m))
    if m == 1:
        return [
            Cube(n, p.inbits, 1, 1)
            for p in all_primes(union, limit=limit, deadline=deadline)
        ]
    return all_primes_multi(union, limit=limit, deadline=deadline)


def transform_to_dhf_primes(
    primes: Sequence[Cube],
    instance: HazardFreeInstance,
    limit: Optional[int] = None,
    deadline: Optional[float] = None,
) -> List[Cube]:
    """All dhf-prime implicants, from the set of all primes.

    ``limit`` bounds the intermediate candidate count; exceeding it raises
    :class:`DhfTransformExplosionError`.
    """
    priv_by_output = [
        instance.privileged_for_output(j) for j in range(instance.n_outputs)
    ]
    survivors: List[Cube] = []
    for p in primes:
        survivors.extend(_resolve(p, priv_by_output, instance.n_outputs))
        if limit is not None and len(survivors) > limit:
            raise DhfTransformExplosionError(
                f"dhf transformation exceeded {limit} candidate cubes"
            )
        if deadline is not None and time.perf_counter() > deadline:
            raise DhfTransformExplosionError(
                "dhf transformation exceeded its deadline"
            )
    return maximal_cubes(survivors)


def _first_violation(
    cube: Cube, priv_by_output: Sequence[Sequence[PrivilegedCube]]
) -> Optional[Tuple[PrivilegedCube, int]]:
    probe = Cube(cube.n_inputs, cube.inbits, 1, 1)
    for j in range(cube.n_outputs):
        if not cube.has_output(j):
            continue
        for p in priv_by_output[j]:
            if illegally_intersects(probe, p):
                return p, j
    return None


def _resolve(
    cube: Cube,
    priv_by_output: Sequence[Sequence[PrivilegedCube]],
    n_outputs: int,
) -> List[Cube]:
    violation = _first_violation(cube, priv_by_output)
    if violation is None:
        return [cube]
    priv, j = violation
    results: List[Cube] = []
    # (a) shrink the input part to avoid the privileged cube entirely.
    priv_as_cover_cube = Cube(cube.n_inputs, priv.cube.inbits, cube.outbits, n_outputs)
    for piece in cube_sharp(cube, priv_as_cover_cube):
        if piece.outbits != cube.outbits:
            continue  # output-part sharp fragment handled by case (b)
        results.extend(_resolve(piece, priv_by_output, n_outputs))
    # (b) drop the offending output (multi-output only).
    rest = cube.outbits & ~(1 << j)
    if rest:
        results.extend(
            _resolve(cube.with_outputs(rest), priv_by_output, n_outputs)
        )
    return results


def all_dhf_primes(
    instance: HazardFreeInstance,
    prime_limit: Optional[int] = None,
    transform_limit: Optional[int] = None,
    deadline: Optional[float] = None,
) -> List[Cube]:
    """All dhf-prime implicants of an instance (both exact-flow stages)."""
    primes = instance_primes(instance, limit=prime_limit, deadline=deadline)
    return transform_to_dhf_primes(
        primes, instance, limit=transform_limit, deadline=deadline
    )
