"""Exact hazard-free two-level minimization (Nowick/Dill '95, Fuhrer/Lin/
Nowick '95 flow) — the comparator of the paper's Figure 8 table.

Three stages, each with exponential worst-case behaviour (paper §5):

1. generate **all prime implicants** (:mod:`repro.espresso.primes`),
2. transform them into **dhf-prime implicants**
   (:mod:`repro.exact.dhf_primes`),
3. solve the required-cube / dhf-prime **covering problem** with MINCOV
   (:mod:`repro.mincov`).

Each stage can be budgeted; exceeding a budget reproduces the paper's
"could not be solved by the exact minimizer" outcomes.
"""

from repro.exact.dhf_primes import all_dhf_primes, DhfTransformExplosionError
from repro.exact.minimizer import (
    exact_hazard_free_minimize,
    ExactHFResult,
    ExactBudget,
    ExactFailure,
    NoSolutionError,
)

__all__ = [
    "all_dhf_primes",
    "DhfTransformExplosionError",
    "exact_hazard_free_minimize",
    "ExactHFResult",
    "ExactBudget",
    "ExactFailure",
    "NoSolutionError",
]
