"""The exact hazard-free minimizer: all primes → dhf-primes → MINCOV."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.cubes.cover import Cover
from repro.espresso.primes import PrimeExplosionError
from repro.exact.dhf_primes import (
    DhfTransformExplosionError,
    instance_primes,
    transform_to_dhf_primes,
)
from repro.hazards.instance import HazardFreeInstance
from repro.mincov import solve_mincov, CoveringExplosionError


class ExactFailure(RuntimeError):
    """The exact flow failed in one of its three exponential stages.

    ``stage`` is ``"primes"``, ``"transform"`` or ``"covering"`` — matching
    the three failure modes the paper reports for stetson-p1, cache-ctrl and
    pscsi-pscsi respectively.
    """

    def __init__(self, stage: str, message: str):
        super().__init__(f"exact minimizer failed in stage '{stage}': {message}")
        self.stage = stage


class NoSolutionError(RuntimeError):
    """No hazard-free cover exists: some required cube is covered by no
    dhf-prime implicant.

    .. deprecated::
        :func:`exact_hazard_free_minimize` no longer raises this — it
        returns an :class:`ExactHFResult` with ``status="no_solution"``
        instead, so batch drivers (the corpus differential in
        :mod:`repro.corpus.differential`) can *score* unsolvable
        instances rather than catch them.  The class stays importable
        for old ``except`` clauses.
    """


@dataclass
class ExactBudget:
    """Stage budgets for the exact flow (``None`` = unbounded)."""

    prime_limit: Optional[int] = None
    transform_limit: Optional[int] = None
    covering_node_limit: Optional[int] = None
    #: overall wall-clock budget; checked between stages
    time_limit_s: Optional[float] = None


@dataclass
class ExactHFResult:
    """Outcome of an exact run.

    ``status`` distinguishes the two *answers* the exact flow can give:

    ``"ok"``
        a minimum-cardinality hazard-free cover was found (``cover`` set);
    ``"no_solution"``
        Theorem 4.1 failed — some required cube is covered by no dhf-prime
        implicant, so no hazard-free cover exists (``cover`` is ``None``
        and ``detail`` names the offending required cube).

    Budget exhaustion is *not* a status: a stage blowing its budget still
    raises :class:`ExactFailure`, because "too expensive to answer" is a
    property of the budget, not of the instance.
    """

    cover: Optional[Cover]
    num_primes: int
    num_dhf_primes: int
    runtime_s: float
    phase_seconds: dict = field(default_factory=dict)
    status: str = "ok"
    detail: str = ""

    @property
    def num_cubes(self) -> int:
        return 0 if self.cover is None else len(self.cover)


def exact_hazard_free_minimize(
    instance: HazardFreeInstance,
    budget: Optional[ExactBudget] = None,
    heuristic_cover: bool = False,
) -> ExactHFResult:
    """Minimum-cardinality hazard-free cover via the exact flow.

    Raises :class:`ExactFailure` when a stage budget is exceeded; an
    unsolvable instance is an *answer*, not a failure — the result comes
    back with ``status="no_solution"`` and ``cover=None`` (the CLI maps
    that to exit code 2, see docs/FAILURES.md).  With ``heuristic_cover``
    the covering stage runs MINCOV's greedy mode (then the result is not
    guaranteed minimum).
    """
    budget = budget or ExactBudget()
    phases = {}
    t_start = time.perf_counter()
    deadline = (
        t_start + budget.time_limit_s if budget.time_limit_s is not None else None
    )

    t0 = time.perf_counter()
    try:
        primes = instance_primes(
            instance, limit=budget.prime_limit, deadline=deadline
        )
    except PrimeExplosionError as exc:
        raise ExactFailure("primes", str(exc)) from exc
    phases["primes"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    try:
        dhf_primes = transform_to_dhf_primes(
            primes, instance, limit=budget.transform_limit, deadline=deadline
        )
    except DhfTransformExplosionError as exc:
        raise ExactFailure("transform", str(exc)) from exc
    phases["transform"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    required = instance.required_cubes()
    rows = []
    for q in required:
        cols = [
            j
            for j, p in enumerate(dhf_primes)
            if p.has_output(q.output) and p.contains_input(q.cube)
        ]
        if not cols:
            phases["covering"] = time.perf_counter() - t0
            return ExactHFResult(
                cover=None,
                num_primes=len(primes),
                num_dhf_primes=len(dhf_primes),
                runtime_s=time.perf_counter() - t_start,
                phase_seconds=phases,
                status="no_solution",
                detail=f"required cube {q} covered by no dhf-prime implicant",
            )
        rows.append(cols)
    try:
        chosen = solve_mincov(
            rows,
            len(dhf_primes),
            heuristic=heuristic_cover,
            node_limit=budget.covering_node_limit,
        )
    except CoveringExplosionError as exc:
        raise ExactFailure("covering", str(exc)) from exc
    phases["covering"] = time.perf_counter() - t0
    assert chosen is not None

    cover = Cover(instance.n_inputs, (), instance.n_outputs)
    for j in sorted(chosen):
        cover.append(dhf_primes[j])
    return ExactHFResult(
        cover=cover,
        num_primes=len(primes),
        num_dhf_primes=len(dhf_primes),
        runtime_s=time.perf_counter() - t_start,
        phase_seconds=phases,
    )
