"""First-class minimization sessions: warm-start / incremental re-runs.

A :class:`MinimizationSession` is the explicit, serializable form of the
per-run state that used to live scattered across the stack — the final
cover, the pipeline's best-verified snapshot, the canonical key from
:mod:`repro.serve.canon`, and the context-private supercube / escape-row /
coverage memo tables of :class:`repro.hf.context.HFContext` — extracted
behind a stable capture/restore protocol (``to_dict`` / ``from_dict`` /
``save`` / ``load``).

On top of it sits the diff layer (:func:`diff_instances`,
:func:`signature_of`) and the warm-start planner
(:func:`plan_warm_start`), which ``espresso_hf(warm_start=session)``
consults to decide between an *identical* short-circuit, a memo-seeded
*warm* run, or a *cold* fallback.  See ``docs/WARMSTART.md`` for the
session format, the invalidation rules, and the soundness argument.
"""

from repro.session.session import (
    SESSION_VERSION,
    MinimizationSession,
    capture_session,
    signature_of,
)
from repro.session.diff import InstanceDiff, compare_signatures, diff_instances
from repro.session.warm import (
    DEFAULT_MAX_EDIT_FRACTION,
    WarmStartPlan,
    plan_warm_start,
)
from repro.session.store import SessionStore

__all__ = [
    "SESSION_VERSION",
    "MinimizationSession",
    "capture_session",
    "signature_of",
    "InstanceDiff",
    "compare_signatures",
    "diff_instances",
    "DEFAULT_MAX_EDIT_FRACTION",
    "WarmStartPlan",
    "plan_warm_start",
    "SessionStore",
]
