"""The serializable session object and its capture side.

A session records everything a later run needs to *warm-start* on an
edited copy of the same instance:

* the minimized cover and essential classes (seed / identical-mode
  short-circuit material),
* the pipeline's best-verified snapshot (budget-degradation floor),
* the derived-set **signature** of the producing instance — the per-output
  required, privileged, and OFF cube lists the algorithm actually
  consumes.  Diffing is done on signatures, never on raw text, so
  formatting or comment edits cost nothing,
* the bounded supercube / escape-row / coverage memo export of
  :meth:`repro.hf.context.HFContext.export_caches`,
* the canonical key of :func:`repro.serve.canon.canonicalize` (when the
  caller computed one), which is the session-store address on the serve
  path.

Cubes serialize as ``[inbits, outbits]`` integer pairs — the 2-bits-per-
variable encoding is already a plain int, and Python's ``json`` round-
trips big ints exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cubes.cube import Cube
from repro.hazards.instance import HazardFreeInstance

#: bump when the serialized layout changes; ``plan_warm_start`` falls back
#: cold on any mismatch rather than guessing at old layouts
SESSION_VERSION = 1


def signature_of(instance: HazardFreeInstance) -> Dict[str, Any]:
    """The derived-set signature the minimizer's behaviour depends on.

    Per output ``j``: the ordered privileged ``(cube, start)`` input-bit
    pairs, the ordered OFF-cover input bits, and the ordered required-cube
    input bits.  Plus the *global* required order, because the pipeline
    (canonicalize, essentials, the main loop) iterates ``Q`` in that
    order and the heuristic trace — hence the cover — is order-sensitive.
    Two instances with equal signatures are indistinguishable to
    ``espresso_hf``: the algorithm reads the instance only through these
    sets.
    """
    outputs = []
    for j in range(instance.n_outputs):
        outputs.append(
            {
                "priv": [
                    [p.cube.inbits, p.start.inbits]
                    for p in instance.privileged_for_output(j)
                ],
                "off": [o.inbits for o in instance.off_for_output(j)],
                "required": [
                    q.cube.inbits for q in instance.required_for_output(j)
                ],
            }
        )
    return {
        "outputs": outputs,
        "required_order": [
            [q.cube.inbits, q.output] for q in instance.required_cubes()
        ],
    }


def _cube_pairs(cubes) -> List[List[int]]:
    return [[c.inbits, c.outbits] for c in cubes]


@dataclass
class MinimizationSession:
    """Capture of one successful minimization run, restore-ready.

    ``caches`` is the portable export of
    :meth:`~repro.hf.context.HFContext.export_caches`; see that method
    for the layout.  ``signature`` is :func:`signature_of` applied to the
    producing instance.  ``canonical_key`` is optional — offline captures
    may skip the canonicalization cost — but required for storage in a
    :class:`~repro.session.store.SessionStore`.
    """

    name: str
    n_inputs: int
    n_outputs: int
    cover: List[List[int]]
    signature: Dict[str, Any]
    essentials: List[List[int]] = field(default_factory=list)
    best: Optional[List[List[int]]] = None
    caches: Dict[str, Any] = field(default_factory=dict)
    canonical_key: Optional[str] = None
    num_canonical_required: int = 0
    iterations: int = 0
    status: str = "ok"
    version: int = SESSION_VERSION

    # ------------------------------------------------------------------
    # Restore-side helpers
    # ------------------------------------------------------------------

    def cover_cubes(self) -> List[Cube]:
        """The session cover as :class:`Cube` objects."""
        return [
            Cube(self.n_inputs, inbits, outbits, self.n_outputs)
            for inbits, outbits in self.cover
        ]

    def essential_cubes(self) -> List[Cube]:
        return [
            Cube(self.n_inputs, inbits, outbits, self.n_outputs)
            for inbits, outbits in self.essentials
        ]

    def best_cubes(self) -> Optional[List[Cube]]:
        if self.best is None:
            return None
        return [
            Cube(self.n_inputs, inbits, outbits, self.n_outputs)
            for inbits, outbits in self.best
        ]

    # ------------------------------------------------------------------
    # Serialization protocol
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "name": self.name,
            "n_inputs": self.n_inputs,
            "n_outputs": self.n_outputs,
            "cover": [list(pair) for pair in self.cover],
            "signature": self.signature,
            "essentials": [list(pair) for pair in self.essentials],
            "best": (
                None
                if self.best is None
                else [list(pair) for pair in self.best]
            ),
            "caches": self.caches,
            "canonical_key": self.canonical_key,
            "num_canonical_required": self.num_canonical_required,
            "iterations": self.iterations,
            "status": self.status,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MinimizationSession":
        """Rebuild a session from :meth:`to_dict` output.

        Raises ``ValueError`` on structurally broken input; version skew
        is *not* an error here — the warm planner downgrades it to a cold
        fallback so stale stores stay usable.
        """
        if not isinstance(data, dict):
            raise ValueError("session payload must be a dict")
        try:
            return cls(
                name=str(data.get("name", "session")),
                n_inputs=int(data["n_inputs"]),
                n_outputs=int(data["n_outputs"]),
                cover=[
                    [int(a), int(b)] for a, b in data.get("cover", [])
                ],
                signature=dict(data.get("signature", {})),
                essentials=[
                    [int(a), int(b)] for a, b in data.get("essentials", [])
                ],
                best=(
                    None
                    if data.get("best") is None
                    else [[int(a), int(b)] for a, b in data["best"]]
                ),
                caches=dict(data.get("caches", {})),
                canonical_key=data.get("canonical_key"),
                num_canonical_required=int(
                    data.get("num_canonical_required", 0)
                ),
                iterations=int(data.get("iterations", 0)),
                status=str(data.get("status", "ok")),
                version=int(data.get("version", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed session payload: {exc}") from None

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)

    @classmethod
    def load(cls, path: str) -> "MinimizationSession":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


def capture_session(
    instance: HazardFreeInstance,
    cover,
    ctx,
    essentials=(),
    best: Optional[List[Cube]] = None,
    iterations: int = 0,
    num_canonical_required: int = 0,
    canonical_key: Optional[str] = None,
    max_supercube_entries: int = 50_000,
    max_escape_rows: int = 4_096,
) -> MinimizationSession:
    """Capture a finished run's state into a session.

    ``ctx`` is the run's :class:`~repro.hf.context.HFContext`; its memo
    tables are exported in portable (position-independent) form.  Callers
    that know the canonical key (the serve path, `--session-out` with
    canonicalization enabled) pass it so the session is store-addressable.
    """
    caches = ctx.export_caches(
        max_supercube_entries=max_supercube_entries,
        max_escape_rows=max_escape_rows,
    )
    return MinimizationSession(
        name=instance.name,
        n_inputs=instance.n_inputs,
        n_outputs=instance.n_outputs,
        cover=_cube_pairs(cover),
        signature=signature_of(instance),
        essentials=_cube_pairs(essentials),
        best=None if best is None else _cube_pairs(best),
        caches=caches,
        canonical_key=canonical_key,
        num_canonical_required=num_canonical_required,
        iterations=iterations,
        status="ok",
    )


def _as_pair_list(value) -> List[Tuple[int, int]]:
    return [(int(a), int(b)) for a, b in value]
