"""Edit-support diffing between a session and a re-submitted instance.

The minimizer reads an instance only through its derived sets (required
``Q``, privileged ``P``, OFF ``R`` — see
:func:`repro.session.signature_of`), so edits are diffed at that level:
an output is *valid* for memo import iff its privileged pairs and OFF
cubes are set-equal to the session's — exactly the data
``supercube_dhf`` verdicts depend on (the fixpoint environment of
:meth:`repro.hf.context.HFContext.supercube_dhf_bits` is built from
nothing else), so every memo entry confined to valid outputs is
value-identical to what a cold run would recompute.  Required-cube churn
does not invalidate memo entries — it only changes *which* probes run —
but it does feed the edit fraction that triggers the cold fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.hazards.instance import HazardFreeInstance
from repro.session.session import signature_of


@dataclass
class InstanceDiff:
    """Edit support between an old signature and a new instance.

    ``valid_outputs`` is a bitmask over output indices whose privileged
    and OFF sets are unchanged (memo entries touching only these outputs
    are importable); ``touched_outputs`` is its complement within the
    shared shape.  ``identical`` means the *ordered* signatures are
    equal — the strongest statement: the minimizer cannot distinguish
    the two instances at all.
    """

    shape_ok: bool
    identical: bool = False
    valid_outputs: int = 0
    touched_outputs: int = 0
    added_required: int = 0
    removed_required: int = 0
    edit_fraction: float = 1.0
    reasons: List[str] = field(default_factory=list)


def compare_signatures(
    old: Dict[str, Any], new: Dict[str, Any]
) -> InstanceDiff:
    """Diff two :func:`~repro.session.signature_of` signatures."""
    old_outputs = old.get("outputs") or []
    new_outputs = new.get("outputs") or []
    if len(old_outputs) != len(new_outputs):
        return InstanceDiff(shape_ok=False, reasons=["output count differs"])
    n_outputs = len(new_outputs)

    identical = old == new
    valid = 0
    reasons: List[str] = []
    for j in range(n_outputs):
        o, n = old_outputs[j], new_outputs[j]
        # Set-level equality licenses memo import: verdicts depend on the
        # priv/OFF *sets*, not their order (the fixpoint is confluent and
        # the OFF test is a union membership).
        priv_same = frozenset(map(tuple, o.get("priv", []))) == frozenset(
            map(tuple, n.get("priv", []))
        )
        off_same = frozenset(o.get("off", [])) == frozenset(
            n.get("off", [])
        )
        if priv_same and off_same:
            valid |= 1 << j
        else:
            reasons.append(
                f"output {j}: "
                + ("priv changed" if not priv_same else "OFF changed")
            )
    touched = ((1 << n_outputs) - 1) & ~valid

    old_req = {tuple(pair) for pair in old.get("required_order", [])}
    new_req = {tuple(pair) for pair in new.get("required_order", [])}
    added = len(new_req - old_req)
    removed = len(old_req - new_req)
    denom = max(1, len(old_req))
    edit_fraction = (added + removed) / denom
    return InstanceDiff(
        shape_ok=True,
        identical=identical,
        valid_outputs=valid,
        touched_outputs=touched,
        added_required=added,
        removed_required=removed,
        edit_fraction=edit_fraction,
        reasons=reasons,
    )


def diff_instances(
    old: HazardFreeInstance, new: HazardFreeInstance
) -> InstanceDiff:
    """Compute the edit support between two instances.

    Convenience wrapper over :func:`compare_signatures`; the warm-start
    planner uses the stored session signature directly so the old
    instance never needs re-deriving.
    """
    if (old.n_inputs, old.n_outputs) != (new.n_inputs, new.n_outputs):
        return InstanceDiff(shape_ok=False, reasons=["shape differs"])
    return compare_signatures(signature_of(old), signature_of(new))
