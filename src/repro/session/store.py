"""Bounded LRU store of sessions, keyed by canonical instance key.

The serve layer keeps one of these next to its result cache: successful
runs that asked for capture deposit their session under the instance's
canonical key (:func:`repro.serve.canon.canonicalize`), and an edited
resubmission carrying ``warm_key`` fetches the predecessor's state for
the diff path.  Sessions are stored as plain dicts (the wire / worker
format); the store never deserializes them.

Thread-safe: the supervisor touches it from the event loop, tests and
offline tools from arbitrary threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional


class SessionStore:
    """LRU dict of ``canonical key -> session dict`` with hit accounting."""

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: str, session: Dict[str, Any]) -> None:
        if not isinstance(key, str) or not key:
            raise ValueError("session key must be a non-empty string")
        with self._lock:
            self._entries[key] = session
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
