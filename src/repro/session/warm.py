"""Warm-start planning: identical short-circuit, memo import, or cold.

Given a stored :class:`~repro.session.MinimizationSession` and the newly
submitted instance, :func:`plan_warm_start` decides one of three modes:

``identical``
    The ordered signatures are equal — the minimizer cannot distinguish
    the instances, so the session cover *is* the cold cover.  The caller
    still re-verifies it with the Theorem 2.11 checker (defence against
    corrupt or hand-edited sessions) and falls back cold on violation.
``warm``
    The edit is small enough: memo entries confined to unchanged outputs
    are imported (value-identical to a cold recomputation, so the final
    cover stays byte-identical to the cold run), and the prior cover — if
    it re-verifies hazard-free on the *new* instance — seeds the
    pipeline's budget-degradation floor via ``start_from=``.
``cold``
    Shape or version mismatch, irreconcilable labeling (every output
    touched), or edit fraction above the threshold: run as if no session
    existed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cubes.cover import Cover
from repro.cubes.cube import Cube
from repro.hazards.instance import HazardFreeInstance
from repro.hazards.verify import verify_hazard_free_cover
from repro.session.diff import InstanceDiff, compare_signatures
from repro.session.session import (
    SESSION_VERSION,
    MinimizationSession,
    signature_of,
)

#: above this (added + removed) / old required-cube churn the diff is "too
#: large" and the planner goes cold — importing a handful of stale-free
#: memo entries cannot pay for the planning and verification overhead
DEFAULT_MAX_EDIT_FRACTION = 0.5


@dataclass
class WarmStartPlan:
    """Outcome of warm-start planning (see module docstring)."""

    mode: str  # "identical" | "warm" | "cold"
    reasons: List[str] = field(default_factory=list)
    diff: Optional[InstanceDiff] = None
    valid_outputs: int = 0
    #: session cover, re-verified hazard-free on the *new* instance —
    #: identical-mode result / budget-floor seed; None if verification
    #: failed or was skipped
    seed: Optional[List[Cube]] = None
    cubes_reverified: int = 0


def plan_warm_start(
    session: MinimizationSession,
    instance: HazardFreeInstance,
    max_edit_fraction: float = DEFAULT_MAX_EDIT_FRACTION,
    assume_identical: bool = False,
) -> WarmStartPlan:
    """Classify a warm-start attempt against ``instance``.

    Never raises on bad sessions — every defect downgrades to a cold
    plan with a reason string (surfaced through the ``warmstart.
    fallbacks`` counter and the run trace).

    ``assume_identical`` skips the signature derivation and comparison:
    the caller proved externally that ``instance`` is the same instance
    the session was captured from (the serve layer does this by digest —
    byte-identical request text parses deterministically to an identical
    instance, hence an identical signature).  The defensive Theorem 2.11
    re-verification of the session cover still runs; only the provably
    redundant signature work is skipped.
    """
    if session.version != SESSION_VERSION:
        return WarmStartPlan(
            "cold", [f"session version {session.version} != {SESSION_VERSION}"]
        )
    if session.status != "ok":
        return WarmStartPlan("cold", [f"session status {session.status!r}"])
    if (session.n_inputs, session.n_outputs) != (
        instance.n_inputs,
        instance.n_outputs,
    ):
        return WarmStartPlan(
            "cold",
            [
                f"shape {session.n_inputs}x{session.n_outputs} != "
                f"{instance.n_inputs}x{instance.n_outputs}"
            ],
        )
    if assume_identical:
        diff = InstanceDiff(
            shape_ok=True,
            identical=True,
            valid_outputs=(1 << instance.n_outputs) - 1,
            edit_fraction=0.0,
            reasons=["identical by caller proof (text digest)"],
        )
    else:
        try:
            diff = compare_signatures(
                session.signature, signature_of(instance)
            )
        except (KeyError, TypeError, ValueError) as exc:
            return WarmStartPlan("cold", [f"signature diff failed: {exc}"])
        if not diff.shape_ok:
            return WarmStartPlan("cold", diff.reasons, diff=diff)

    # Re-verify the prior cover against the *new* instance.  In identical
    # mode this is the defensive Theorem 2.11 gate before short-circuiting;
    # in warm mode it licenses the cover as a budget-degradation floor.
    seed: Optional[List[Cube]] = None
    reverified = 0
    try:
        cubes = session.cover_cubes()
        cover = Cover(instance.n_inputs, cubes, instance.n_outputs)
        if not verify_hazard_free_cover(instance, cover):
            seed = cubes
            reverified = len(cubes)
    except (TypeError, ValueError):
        seed = None

    if diff.identical:
        if seed is None:
            # A session claiming to match byte-for-byte but failing the
            # verifier is corrupt — never trust its caches either.
            return WarmStartPlan(
                "cold", ["identical signature but cover failed verification"],
                diff=diff,
            )
        return WarmStartPlan(
            "identical",
            ["signatures identical"],
            diff=diff,
            valid_outputs=diff.valid_outputs,
            seed=seed,
            cubes_reverified=reverified,
        )

    if diff.valid_outputs == 0:
        return WarmStartPlan(
            "cold",
            ["no unchanged outputs (labeling irreconcilable or global edit)"]
            + diff.reasons,
            diff=diff,
        )
    if diff.edit_fraction > max_edit_fraction:
        return WarmStartPlan(
            "cold",
            [
                f"edit fraction {diff.edit_fraction:.2f} > "
                f"{max_edit_fraction:.2f}"
            ],
            diff=diff,
        )
    return WarmStartPlan(
        "warm",
        diff.reasons or ["required-cube churn only"],
        diff=diff,
        valid_outputs=diff.valid_outputs,
        seed=seed,
        cubes_reverified=reverified,
    )
