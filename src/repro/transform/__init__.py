"""Hazard-free transformation: the ``u(f)`` rewrite backend.

Companion to :mod:`repro.detect` — where the detector *judges* circuits,
this package *repairs* them: :func:`transform_instance` /
:func:`transform_netlist` produce two-level networks that the detector
verifies hazard-free, as a size/depth/latency comparison baseline for
Espresso-HF covers (see ``scripts/detect_run.py`` and
``docs/DETECTION.md``).
"""

from repro.transform.extract import DEFAULT_MAX_INPUTS, extract_covers
from repro.transform.uf import (
    DEFAULT_PRIME_LIMIT,
    MODES,
    TransformResult,
    expand_against_off,
    transform_instance,
    transform_netlist,
)

__all__ = [
    "DEFAULT_MAX_INPUTS",
    "extract_covers",
    "DEFAULT_PRIME_LIMIT",
    "MODES",
    "TransformResult",
    "expand_against_off",
    "transform_instance",
    "transform_netlist",
]
