"""Function extraction: recover ON/OFF covers from a netlist.

The detector and the ``u(f)`` transform both need the boolean *function*
a netlist implements, as covers.  For a netlist that came from a cover we
already have it; for a foreign ``.net`` circuit we recover it by a single
sweep over all ``2^n`` input vectors (gated by ``max_inputs`` — foreign
netlists are interface traffic, not 32-input benchmarks) and then
compact the minterm sets through the unate-recursive complement, which
keeps the downstream cofactor/tautology stability checks cheap.
"""

from __future__ import annotations

import itertools
from typing import List, Tuple

from repro.cubes.cube import Cube
from repro.cubes.cover import Cover
from repro.detect.netlist import Netlist, NetlistError
from repro.espresso.complement import complement

#: Extraction is exponential in the input count; refuse beyond this.
DEFAULT_MAX_INPUTS = 14


def extract_covers(
    netlist: Netlist, max_inputs: int = DEFAULT_MAX_INPUTS
) -> Tuple[Cover, Cover]:
    """Multi-output ``(on, off)`` covers of the function the netlist
    computes (fully defined: every vector is in exactly one of the two).

    Raises :class:`NetlistError` when the netlist is too wide to
    enumerate.
    """
    n = netlist.n_inputs
    if n > max_inputs:
        raise NetlistError(
            f"{netlist.name}: function extraction enumerates 2^{n} "
            f"vectors; refusing beyond {max_inputs} inputs"
        )
    n_out = netlist.n_outputs
    out_indices = netlist.outputs
    on_minterms: List[List[Cube]] = [[] for _ in range(n_out)]
    for vec in itertools.product((0, 1), repeat=n):
        values = netlist.eval_gates(vec)
        for j in range(n_out):
            if values[out_indices[j]]:
                on_minterms[j].append(Cube.minterm(vec))
    on = Cover(n, (), n_out)
    off = Cover(n, (), n_out)
    for j in range(n_out):
        on_j = Cover(n, on_minterms[j], 1)
        off_j = complement(on_j)
        # Re-complementing the compact OFF cover compacts ON as well.
        on_j = complement(off_j) if on_j.cubes else on_j
        for c in on_j:
            on.append(Cube(n, c.inbits, 1 << j, n_out))
        for c in off_j:
            off.append(Cube(n, c.inbits, 1 << j, n_out))
    return on, off
