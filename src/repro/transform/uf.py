"""The hazard-free rewrite ``u(f)``: any circuit → a hazard-free one.

Ikenmeyer et al. prove every boolean function has a hazard-free circuit
(at worst the complete sum / DNF of prime implicants) and give the
hazard-derivative machinery for constructing one.  This module ships the
practical two-level instantiation in two strengths:

* ``mode="transitions"`` — the *transition-scoped* rewrite.  Take the
  instance's required cubes (Definition 2.9, via
  :func:`repro.hazards.required.maximal_on_subcubes`) and greedily
  expand each against the OFF cover to a prime.  For a
  function-hazard-free instance every constant-1 subcube of a specified
  transition lies inside a single required cube (the ``[A, p]``
  downward-closure lemma), so the result is **hazard-free at every
  ternary point of every specified transition** — including instances
  Espresso-HF must refuse as unsolvable, because condition (c)
  (privileged-cube intersections) never constrains this construction.
* ``mode="complete"`` — the complete sum: *all* prime implicants per
  output (:func:`repro.espresso.primes.all_primes`, budget-gated).
  Hazard-free at every ternary point of the whole cube — the classical
  worst-case-size certificate, kept as the strongest guarantee for
  small functions.

The scoreboard (``scripts/detect_run.py``) compares both against
Espresso-HF covers for size/depth/latency; ``docs/DETECTION.md`` states
the guarantees precisely.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cubes.cube import Cube, LITERAL_DC
from repro.cubes.cover import Cover
from repro.detect.netlist import Netlist
from repro.espresso.primes import PrimeExplosionError, all_primes
from repro.guard.budget import RunBudget
from repro.guard.errors import BudgetExceeded
from repro.hazards.instance import HazardFreeInstance
from repro.hazards.transitions import Transition
from repro.obs.metrics import MetricsRegistry

#: Live-cube cap handed to :func:`all_primes` in ``complete`` mode.
DEFAULT_PRIME_LIMIT = 20_000

MODES = ("transitions", "complete")


@dataclass
class TransformResult:
    """Outcome of one ``u(f)`` rewrite."""

    name: str
    mode: str
    cover: Cover
    netlist: Netlist
    elapsed_s: float
    cubes_by_output: Dict[int, int] = field(default_factory=dict)

    @property
    def num_cubes(self) -> int:
        return len(self.cover.cubes)

    @property
    def num_gates(self) -> int:
        return self.netlist.num_gates

    @property
    def depth(self) -> int:
        return self.netlist.depth

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "mode": self.mode,
            "num_cubes": self.num_cubes,
            "num_gates": self.num_gates,
            "num_literals": self.netlist.num_literals,
            "depth": self.depth,
            "elapsed_s": round(self.elapsed_s, 6),
        }


def expand_against_off(cube: Cube, off: Cover) -> Cube:
    """Greedily raise literals to don't-care while avoiding ``off``.

    The result is a prime implicant containing ``cube`` (single-output
    semantics; ``off`` is the OFF cover of one output).
    """
    c = cube
    for i in range(cube.n_inputs):
        if c.literal(i) == LITERAL_DC:
            continue
        cand = c.with_literal(i, LITERAL_DC)
        if not any(cand.intersects_input(o) for o in off.cubes):
            c = cand
    return c


def _maximal_cubes(cubes: Sequence[Cube]) -> List[Cube]:
    """Drop duplicates and cubes strictly contained in another (inputs)."""
    unique: Dict[int, Cube] = {}
    for c in cubes:
        unique.setdefault(c.inbits, c)
    out: List[Cube] = []
    for c in unique.values():
        if any(
            o.inbits != c.inbits and o.contains_input(c)
            for o in unique.values()
        ):
            continue
        out.append(c)
    return out


def transform_instance(
    instance: HazardFreeInstance,
    mode: str = "transitions",
    budget: Optional[RunBudget] = None,
    registry: Optional[MetricsRegistry] = None,
    prime_limit: int = DEFAULT_PRIME_LIMIT,
) -> TransformResult:
    """Build the hazard-free two-level rewrite of an instance."""
    if mode not in MODES:
        raise ValueError(f"unknown transform mode {mode!r}")
    t0 = time.perf_counter()
    n, n_out = instance.n_inputs, instance.n_outputs
    per_output: Dict[int, List[Cube]] = {j: [] for j in range(n_out)}
    if mode == "transitions":
        for rq in instance.required_cubes():
            if budget is not None:
                budget.checkpoint("transform")
            off_j = instance.off.restrict_to_output(rq.output)
            per_output[rq.output].append(
                expand_against_off(
                    Cube(n, rq.cube.inbits, 1, 1), off_j
                )
            )
    else:
        deadline = None
        if budget is not None and budget.wall_s is not None:
            budget.start()
            deadline = time.perf_counter() + budget.wall_s
        for j in range(n_out):
            on_j = instance.on.restrict_to_output(j)
            try:
                primes = all_primes(on_j, limit=prime_limit, deadline=deadline)
            except PrimeExplosionError as exc:
                raise BudgetExceeded(
                    f"{instance.name}: complete-sum u(f) exploded on "
                    f"output {j}: {exc}"
                )
            per_output[j].extend(primes)
    by_inbits: Dict[int, int] = {}
    for j in range(n_out):
        for c in _maximal_cubes(per_output[j]):
            by_inbits[c.inbits] = by_inbits.get(c.inbits, 0) | (1 << j)
    cover = Cover(n, (), n_out)
    for inbits in sorted(by_inbits):
        cover.append(Cube(n, inbits, by_inbits[inbits], n_out))
    netlist = Netlist.from_cover(cover, name=f"uf({instance.name})")
    elapsed = time.perf_counter() - t0
    if registry is not None:
        registry.counter("transform.runs").inc()
        registry.counter("transform.cubes_out").inc(len(cover.cubes))
        registry.histogram("transform.elapsed_s").observe(elapsed)
    return TransformResult(
        name=instance.name,
        mode=mode,
        cover=cover,
        netlist=netlist,
        elapsed_s=elapsed,
        cubes_by_output={
            j: len(_maximal_cubes(per_output[j])) for j in range(n_out)
        },
    )


def transform_netlist(
    netlist: Netlist,
    transitions: Sequence[Transition] = (),
    budget: Optional[RunBudget] = None,
    registry: Optional[MetricsRegistry] = None,
    max_inputs: Optional[int] = None,
) -> TransformResult:
    """Rewrite a foreign netlist into a hazard-free two-level network.

    With transitions the rewrite is transition-scoped; without, the
    complete sum certifies hazard-freedom at *every* ternary point.
    Function extraction enumerates ``2^n`` vectors, so this entry point
    is for interface-scale circuits.
    """
    from repro.transform.extract import DEFAULT_MAX_INPUTS, extract_covers

    on, off = extract_covers(
        netlist,
        max_inputs=DEFAULT_MAX_INPUTS if max_inputs is None else max_inputs,
    )
    if transitions:
        instance = HazardFreeInstance(
            on, off, list(transitions), name=netlist.name
        )
        return transform_instance(
            instance, mode="transitions", budget=budget, registry=registry
        )
    instance = HazardFreeInstance(on, off, [], name=netlist.name, validate=False)
    return transform_instance(
        instance, mode="complete", budget=budget, registry=registry
    )
