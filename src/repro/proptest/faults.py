"""Seeded defect injection: prove the oracles catch broken phase operators.

A test suite that has never seen a bug is unfalsified, not trustworthy.
This module defines five deliberately defective variants of the minimizer's
phase operators — one per historically plausible failure mode — and installs
them through the pipeline's instrumentation seam
(:func:`repro.pipeline.map_passes` via ``EspressoHFOptions.pass_decorator``),
so the *shipping* pipeline runs with exactly one corrupted pass and the
property suite must flag it (``tests/test_bug_injection.py``).

The defects, and the Theorem 2.11 condition each one breaks:

``expand_overwiden``
    EXPAND raises a literal past the legal dhf-expansion frontier — the
    cube can now hit the OFF-set (condition a) or intersect a privileged
    cube illegally (condition c).
``reduce_undershrink``
    REDUCE shrinks a cube below its required-coverage floor — a required
    cube loses its cover (condition b).
``irredundant_drop``
    IRREDUNDANT discards a cube that still uniquely covers a required cube
    (condition b).
``essentials_mistag``
    The essentials phase marks a required cube as covered by an essential
    class that does not cover it; later passes are then free to drop its
    real cover (condition b, surfacing at the final full-set check).
``make_prime_off``
    MAKE_DHF_PRIME "expands" a cube to the universe, ignoring the OFF-set
    blocking matrix (condition a).

Each corruption mutates the pipeline state *after* the genuine pass body,
so the injected behaviour is a wrong *result*, not a crash — the hard case
for an oracle.  On some instances a corruption is coincidentally harmless
(e.g. widening a cube that stays inside the ON-set); the bug-injection test
therefore drives :func:`probe_with_fault` under Hypothesis until it finds —
and shrinks — an instance where the defect is observable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.cubes.cube import (
    Cube,
    LITERAL_DC,
    LITERAL_ZERO,
    full_input_mask,
)


@dataclass(frozen=True)
class Defect:
    """One injected bug: which pass to corrupt and how.

    ``needs_loop`` marks defects living in the REDUCE/EXPAND/IRREDUNDANT
    loop.  On small random instances the essentials phase usually covers
    every required cube, the working cover empties, and the loop is
    skipped — so :func:`faulty_options` disables essentials for these
    defects to force the corrupted pass to actually process cubes (the
    standard mutation-testing rule: run the configuration that reaches
    the mutant).
    """

    name: str
    pass_name: str
    corrupt: Callable
    description: str = ""
    needs_loop: bool = False


class FaultyPass:
    """Wraps a genuine pass; runs it, then applies the defect's corruption.

    The wrapper keeps the inner pass's name so pipeline traces, timing
    buckets, and checked-mode checkpoint labels are indistinguishable from
    a production run — the oracles must catch the defect by its *effect*.
    """

    def __init__(self, inner, corrupt: Callable):
        self.inner = inner
        self.corrupt = corrupt
        self.name = inner.name

    def run(self, state):
        self.inner.run(state)
        self.corrupt(state)
        return state


# ----------------------------------------------------------------------
# Corruptions (applied to HFState after the genuine pass body)
# ----------------------------------------------------------------------


def _overwiden_first(state) -> None:
    """Raise the first bound literal of the first cover cube to don't-care."""
    for idx, cube in enumerate(state.f):
        for i in range(cube.n_inputs):
            if cube.literal(i) != LITERAL_DC:
                state.f[idx] = cube.with_literal(i, LITERAL_DC)
                return


def _undershrink_first(state) -> None:
    """Bind the first free literal of the first cover cube to ZERO."""
    for idx, cube in enumerate(state.f):
        for i in range(cube.n_inputs):
            if cube.literal(i) == LITERAL_DC:
                state.f[idx] = cube.with_literal(i, LITERAL_ZERO)
                return


def _drop_last(state) -> None:
    """Discard the last cover cube, required or not."""
    if state.f:
        state.f.pop()


def _mistag_required(state) -> None:
    """Corrupt the essentials phase's coverage accounting.

    Either a pending required cube is marked covered without a covering
    essential (popped from ``remaining``), or an essential class
    representative vanishes while the required cubes it distinguished stay
    marked as covered (popped from ``essentials``) — both are the same
    bookkeeping bug seen from two sides.
    """
    if state.remaining:
        state.remaining.pop(0)
    elif state.essentials:
        state.essentials.pop(0)


def _widen_to_universe(state) -> None:
    """Replace the first cover cube's input part with the full cube."""
    if state.f:
        cube = state.f[0]
        state.f[0] = Cube(
            cube.n_inputs,
            full_input_mask(cube.n_inputs),
            cube.outbits,
            cube.n_outputs,
        )


DEFECTS = {
    d.name: d
    for d in (
        Defect(
            "expand_overwiden",
            pass_name="expand",
            corrupt=_overwiden_first,
            description="EXPAND raises a literal past the dhf frontier",
            needs_loop=True,
        ),
        Defect(
            "reduce_undershrink",
            pass_name="reduce",
            corrupt=_undershrink_first,
            description="REDUCE shrinks a cube below its coverage floor",
            needs_loop=True,
        ),
        Defect(
            "irredundant_drop",
            pass_name="irredundant",
            corrupt=_drop_last,
            description="IRREDUNDANT drops a still-required cube",
            needs_loop=True,
        ),
        Defect(
            "essentials_mistag",
            pass_name="essentials",
            corrupt=_mistag_required,
            description="essentials mis-tags a required cube as covered",
        ),
        Defect(
            "make_prime_off",
            pass_name="make_prime",
            corrupt=_widen_to_universe,
            description="MAKE_DHF_PRIME ignores the OFF-set blocking matrix",
        ),
    )
}


def fault_decorator(defect: Defect) -> Callable:
    """``Pass -> Pass`` mapper corrupting exactly the defect's target pass."""

    def decorate(pass_):
        if pass_.name == defect.pass_name:
            return FaultyPass(pass_, defect.corrupt)
        return pass_

    return decorate


def faulty_options(defect_name: str, checked: bool = True):
    """Fresh :class:`EspressoHFOptions` running one defective pass.

    Loop defects disable the essentials shortcut so the corrupted pass is
    reached (see :class:`Defect`); the pipeline shape is otherwise the
    shipping default.
    """
    from repro.hf.espresso_hf import EspressoHFOptions

    defect = DEFECTS[defect_name]
    return EspressoHFOptions(
        checked=checked,
        use_essentials=not defect.needs_loop,
        pass_decorator=fault_decorator(defect),
    )


def probe_with_fault(instance, defect_name: str) -> Optional[str]:
    """Run one checked minimization with the defect installed; classify.

    Returns ``None`` when nothing catches the corruption on this instance
    (including the Theorem 4.1 ``NoSolutionError`` path, where the corrupted
    pass never runs), or the failure kind that caught it:
    ``"invariant_violation"`` (a checked-mode checkpoint or the final
    full-set check), ``"verify_failed"`` (the independent Theorem 2.11
    verifier on the returned cover), or ``"crash"``.
    """
    from repro.guard.errors import InvariantViolation, NoSolutionError
    from repro.hazards.verify import verify_hazard_free_cover
    from repro.hf.espresso_hf import espresso_hf

    try:
        result = espresso_hf(instance, faulty_options(defect_name))
    except NoSolutionError:
        return None
    except InvariantViolation:
        return "invariant_violation"
    except Exception:  # noqa: BLE001 - any crash is a catch
        return "crash"
    if verify_hazard_free_cover(instance, result.cover):
        return "verify_failed"
    return None
