"""Counterexample persistence: Hypothesis example DB + guard repro bundles.

Two artifact stores cooperate here, co-located under ``artifacts/``:

* the **Hypothesis example database** (``artifacts/hypothesis/``) stores
  falsifying *choice sequences*, so re-running a property replays its last
  counterexample first — Hypothesis-native, byte-level, test-keyed;
* **guard repro bundles** (``artifacts/*.bundle``) store falsifying
  *instances* as extended PLA, the same self-contained format the guarded
  runtime and ``scripts/replay.py`` already speak — tool-agnostic and
  attachable to a bug report.

:func:`bundle_on_failure` bridges the two: wrap a property body and every
failing call serializes its instance to a fixed per-test bundle filename.
Because Hypothesis runs the *minimal* falsifying example last (the shrunk
reproduction it reports), the file left on disk after a failed test holds
the shrunk instance — replayable with ``scripts/replay.py`` or
:func:`repro.guard.bundle.replay_bundle` without Hypothesis installed.
"""

from __future__ import annotations

import os
import re
from functools import wraps
from typing import Optional

from repro.guard.bundle import DEFAULT_BUNDLE_DIR, write_bundle
from repro.hazards.instance import HazardFreeInstance

try:
    from hypothesis.database import DirectoryBasedExampleDatabase

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False

#: subdirectory of the artifact root holding the Hypothesis example DB
HYPOTHESIS_DB_SUBDIR = "hypothesis"


def example_database(root: str = DEFAULT_BUNDLE_DIR):
    """The project's Hypothesis example database, beside the repro bundles.

    CI uploads the whole ``root`` directory as one artifact, so a nightly
    failure ships both its choice-sequence replay and its PLA bundle.
    """
    if not HAVE_HYPOTHESIS:  # pragma: no cover - exercised only without hyp.
        raise RuntimeError("example_database requires the 'hypothesis' package")
    return DirectoryBasedExampleDatabase(os.path.join(root, HYPOTHESIS_DB_SUBDIR))


def bundle_filename(test_id: str) -> str:
    """Stable bundle filename for one property test."""
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", test_id).strip("_")
    return f"proptest-{safe}.bundle"


def bundle_counterexample(
    instance: HazardFreeInstance,
    test_id: str,
    error: BaseException,
    options=None,
    bundle_dir: str = DEFAULT_BUNDLE_DIR,
) -> str:
    """Serialize one falsifying instance as a ``property_falsified`` bundle.

    The filename is pinned per test (not content-addressed), so successive
    falsifying calls of one shrink run overwrite each other and the final,
    minimal example is what survives.
    """
    return write_bundle(
        instance,
        failure_kind="property_falsified",
        failure_message=f"{test_id}: {type(error).__name__}: {error}",
        failure_phase="proptest",
        options=options,
        trace=[f"proptest:{test_id}"],
        bundle_dir=bundle_dir,
        filename=bundle_filename(test_id),
    )


def _find_instance(args, kwargs) -> Optional[HazardFreeInstance]:
    for value in list(args) + list(kwargs.values()):
        if isinstance(value, HazardFreeInstance):
            return value
    return None


def bundle_on_failure(test_id: str, bundle_dir: str = DEFAULT_BUNDLE_DIR):
    """Decorator for property bodies: bundle the instance on every failure.

    Place it *under* ``@given`` (closest to the function), so it sees the
    concrete drawn arguments.  The first :class:`HazardFreeInstance` among
    them is bundled; the exception always propagates to Hypothesis, which
    keeps shrinking — each shrink step overwrites the bundle, leaving the
    minimal counterexample on disk.
    """

    def decorate(fn):
        @wraps(fn)
        def wrapper(*args, **kwargs):
            try:
                return fn(*args, **kwargs)
            except Exception as exc:
                instance = _find_instance(args, kwargs)
                if instance is not None:
                    try:
                        bundle_counterexample(
                            instance, test_id, exc, bundle_dir=bundle_dir
                        )
                    except Exception:  # noqa: BLE001 - never mask the failure
                        pass
                raise

        return wrapper

    return decorate
