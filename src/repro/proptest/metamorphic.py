"""Metamorphic transforms: hazard-freedom-preserving instance rewrites.

A metamorphic test runs the system twice — on an instance and on a
transformed instance — and asserts a *relation* between the two results
instead of an absolute oracle.  The four transforms here are chosen
because their effect on every object of the hazard-free minimization
model is known exactly:

``input_permutation`` / ``polarity_flip``
    Relabel / complement input variables.  These are bijections on the
    input space that commute with cube containment, intersection, OFF-set
    membership, and transition reachability, so: Theorem 4.1 solvability,
    the required/privileged cube sets, the Theorem 2.11 verdict of any
    (transformed) cover, and the minimizer's cover cardinality are all
    invariant.

``output_duplication``
    Append a copy of an existing output (covers and transitions shared).
    A cover cube serving the original output serves the copy identically,
    so solvability and the verifier verdict are invariant, and the
    multi-output minimizer shares every cube across the pair — cover
    cardinality is invariant too.

``transition_subset``
    Keep a subset of the specified transitions.  This weakens the
    specification monotonically: required and privileged cubes only
    disappear, so a hazard-free cover of the original instance remains
    hazard-free, and a solvable instance remains solvable.  (Cardinality
    is *not* asserted invariant: fewer required cubes can admit smaller
    covers.)

Each transform maps instances (``apply_instance``) *and* covers
(``apply_cover``), so a result computed on one side can be checked with
the verifier on the other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.cubes.cube import Cube, LITERAL_ONE, LITERAL_ZERO
from repro.cubes.cover import Cover
from repro.hazards.instance import HazardFreeInstance
from repro.hazards.transitions import Transition

try:
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False


@dataclass(frozen=True)
class MetamorphicTransform:
    """One instance rewrite plus its cover mapping and known relations.

    ``cardinality`` records what the transform provably does to the
    minimized cover size: ``"equal"`` (bijective relabelings and output
    duplication) or ``"weaker"`` (transition subsetting — the transformed
    instance is under-constrained relative to the original).
    """

    name: str
    apply_instance: Callable[[HazardFreeInstance], HazardFreeInstance]
    apply_cover: Callable[[Cover], Cover]
    cardinality: str = "equal"

    def __str__(self) -> str:
        return self.name


# ----------------------------------------------------------------------
# Input-variable permutation
# ----------------------------------------------------------------------


def permute_cube(cube: Cube, perm: Sequence[int]) -> Cube:
    """Cube with new variable ``i`` carrying old variable ``perm[i]``."""
    lits = cube.literals()
    return Cube.from_literals(
        [lits[perm[i]] for i in range(cube.n_inputs)], cube.outbits, cube.n_outputs
    )


def permute_cover(cover: Cover, perm: Sequence[int]) -> Cover:
    return Cover(
        cover.n_inputs, [permute_cube(c, perm) for c in cover], cover.n_outputs
    )


def permute_instance(
    instance: HazardFreeInstance, perm: Sequence[int]
) -> HazardFreeInstance:
    n = instance.n_inputs
    transitions = [
        Transition(
            tuple(t.start[perm[i]] for i in range(n)),
            tuple(t.end[perm[i]] for i in range(n)),
        )
        for t in instance.transitions
    ]
    return HazardFreeInstance(
        permute_cover(instance.on, perm),
        permute_cover(instance.off, perm),
        transitions,
        name=f"{instance.name}-perm",
        validate=False,
    )


def input_permutation(perm: Sequence[int]) -> MetamorphicTransform:
    perm = tuple(perm)
    return MetamorphicTransform(
        name=f"permute{list(perm)}",
        apply_instance=lambda inst: permute_instance(inst, perm),
        apply_cover=lambda cover: permute_cover(cover, perm),
        cardinality="equal",
    )


# ----------------------------------------------------------------------
# Input polarity flip
# ----------------------------------------------------------------------


def flip_cube(cube: Cube, mask: int) -> Cube:
    """Cube with every variable in ``mask`` complemented (0 <-> 1)."""
    lits = list(cube.literals())
    for i in range(cube.n_inputs):
        if (mask >> i) & 1 and lits[i] in (LITERAL_ZERO, LITERAL_ONE):
            lits[i] = LITERAL_ONE + LITERAL_ZERO - lits[i]
    return Cube.from_literals(lits, cube.outbits, cube.n_outputs)


def flip_cover(cover: Cover, mask: int) -> Cover:
    return Cover(
        cover.n_inputs, [flip_cube(c, mask) for c in cover], cover.n_outputs
    )


def flip_instance(instance: HazardFreeInstance, mask: int) -> HazardFreeInstance:
    def flip_vec(vec: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(v ^ ((mask >> i) & 1) for i, v in enumerate(vec))

    transitions = [
        Transition(flip_vec(t.start), flip_vec(t.end))
        for t in instance.transitions
    ]
    return HazardFreeInstance(
        flip_cover(instance.on, mask),
        flip_cover(instance.off, mask),
        transitions,
        name=f"{instance.name}-flip",
        validate=False,
    )


def polarity_flip(mask: int) -> MetamorphicTransform:
    return MetamorphicTransform(
        name=f"flip{mask:#x}",
        apply_instance=lambda inst: flip_instance(inst, mask),
        apply_cover=lambda cover: flip_cover(cover, mask),
        cardinality="equal",
    )


# ----------------------------------------------------------------------
# Output duplication
# ----------------------------------------------------------------------


def duplicate_output_cover(cover: Cover, j: int) -> Cover:
    """Cover with a new last output mirroring output ``j``."""
    n_out = cover.n_outputs + 1
    cubes: List[Cube] = []
    for c in cover:
        outbits = c.outbits
        if (outbits >> j) & 1:
            outbits |= 1 << cover.n_outputs
        cubes.append(Cube(c.n_inputs, c.inbits, outbits, n_out))
    return Cover(cover.n_inputs, cubes, n_out)


def duplicate_output_instance(
    instance: HazardFreeInstance, j: int
) -> HazardFreeInstance:
    return HazardFreeInstance(
        duplicate_output_cover(instance.on, j),
        duplicate_output_cover(instance.off, j),
        instance.transitions,
        name=f"{instance.name}-dup{j}",
        validate=False,
    )


def output_duplication(j: int) -> MetamorphicTransform:
    return MetamorphicTransform(
        name=f"dup-out{j}",
        apply_instance=lambda inst: duplicate_output_instance(inst, j),
        apply_cover=lambda cover: duplicate_output_cover(cover, j),
        cardinality="equal",
    )


# ----------------------------------------------------------------------
# Transition subsetting
# ----------------------------------------------------------------------


def subset_transitions_instance(
    instance: HazardFreeInstance, keep: Sequence[int]
) -> HazardFreeInstance:
    transitions = [instance.transitions[i] for i in keep]
    return HazardFreeInstance(
        instance.on,
        instance.off,
        transitions,
        name=f"{instance.name}-sub",
        validate=False,
    )


def transition_subset(keep: Sequence[int]) -> MetamorphicTransform:
    keep = tuple(keep)
    return MetamorphicTransform(
        name=f"subset{list(keep)}",
        apply_instance=lambda inst: subset_transitions_instance(inst, keep),
        apply_cover=lambda cover: cover,
        cardinality="weaker",
    )


# ----------------------------------------------------------------------
# Strategy: a transform valid for a given instance
# ----------------------------------------------------------------------

if HAVE_HYPOTHESIS:

    @st.composite
    def transforms_for(draw, instance: HazardFreeInstance):
        """Draw one metamorphic transform with parameters valid for
        ``instance`` (permutation width, output index, transition count)."""
        kinds = ["permute", "flip", "dup"]
        if len(instance.transitions) > 1:
            kinds.append("subset")
        kind = draw(st.sampled_from(kinds))
        if kind == "permute":
            perm = draw(st.permutations(range(instance.n_inputs)))
            return input_permutation(perm)
        if kind == "flip":
            mask = draw(st.integers(1, (1 << instance.n_inputs) - 1))
            return polarity_flip(mask)
        if kind == "dup":
            j = draw(st.integers(0, instance.n_outputs - 1))
            return output_duplication(j)
        n = len(instance.transitions)
        keep = draw(
            st.lists(
                st.integers(0, n - 1), min_size=1, max_size=n - 1, unique=True
            )
        )
        return transition_subset(sorted(keep))

else:  # pragma: no cover - exercised only without hypothesis

    def transforms_for(*_args, **_kwargs):
        raise RuntimeError("transforms_for requires the 'hypothesis' package")
