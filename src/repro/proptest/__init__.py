"""Property-based correctness toolkit for the hazard-free minimizer.

This package is the repository's *shipped* property-testing layer — the
strategies, metamorphic transforms, stateful machine, and counterexample
plumbing that both the test suite (``tests/test_properties.py``,
``tests/test_metamorphic.py``, ``tests/test_pipeline_machine.py``,
``tests/test_bug_injection.py``) and the seeded fuzz loop
(:mod:`repro.guard.fuzz`) are built on.  See ``docs/TESTING.md`` for the
test-layer map and replay workflow.

Modules
-------
:mod:`~repro.proptest.strategies`
    Composable generators for cubes, covers, transitions, and whole
    :class:`~repro.hazards.instance.HazardFreeInstance` values, built on a
    :class:`~repro.proptest.strategies.DrawSource` abstraction so one
    builder serves both Hypothesis (shrinkable) and a seeded PRNG
    (deterministic fuzz).  Generation is solvability-aware via the
    Theorem 4.1 existence report.
:mod:`~repro.proptest.metamorphic`
    Hazard-freedom-preserving instance rewrites (input permutation,
    polarity flip, output duplication, transition subsetting) with their
    cover mappings and provable result relations.
:mod:`~repro.proptest.machine`
    A Hypothesis ``RuleBasedStateMachine`` driving the pass pipeline in
    arbitrary legal orders, asserting the Theorem 2.11 conditions after
    every step.
:mod:`~repro.proptest.database`
    Hypothesis example database + guard repro-bundle persistence for
    shrunk counterexamples.
:mod:`~repro.proptest.faults`
    Seeded defect injection through the pipeline's ``pass_decorator``
    seam — proof that the oracles catch broken phase operators.

Hypothesis is a *test-time* dependency: the seeded builders
(:func:`~repro.proptest.strategies.seeded_instance`) and the fault
injector work without it, and everything Hypothesis-specific degrades to
a :class:`RuntimeError`-raising stub when it is absent
(``HAVE_HYPOTHESIS``).
"""

from repro.proptest.faults import (
    DEFECTS,
    Defect,
    FaultyPass,
    fault_decorator,
    faulty_options,
    probe_with_fault,
)
from repro.proptest.metamorphic import (
    MetamorphicTransform,
    input_permutation,
    output_duplication,
    polarity_flip,
    transition_subset,
    transforms_for,
)
from repro.proptest.strategies import (
    DEFAULT_CONFIG,
    FUZZ_CONFIG,
    HAVE_HYPOTHESIS,
    DrawSource,
    HypothesisSource,
    InstanceConfig,
    RandomSource,
    build_instance,
    build_unsolvable_instance,
    covers,
    cubes,
    instances,
    repair_to_solvable,
    seeded_instance,
    solvable_instances,
    transitions,
    unsolvable_instances,
)

__all__ = [
    "DEFAULT_CONFIG",
    "DEFECTS",
    "Defect",
    "DrawSource",
    "FUZZ_CONFIG",
    "FaultyPass",
    "HAVE_HYPOTHESIS",
    "HypothesisSource",
    "InstanceConfig",
    "MetamorphicTransform",
    "RandomSource",
    "build_instance",
    "build_unsolvable_instance",
    "covers",
    "cubes",
    "fault_decorator",
    "faulty_options",
    "input_permutation",
    "instances",
    "output_duplication",
    "polarity_flip",
    "probe_with_fault",
    "repair_to_solvable",
    "seeded_instance",
    "solvable_instances",
    "transforms_for",
    "transition_subset",
    "transitions",
    "unsolvable_instances",
]
