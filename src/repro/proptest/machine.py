"""Stateful pipeline testing: drive the PassManager pass-by-pass.

The declarative pipeline (:mod:`repro.pipeline`) makes every legal pass
order *expressible* — so this machine explores orders the shipping driver
never runs.  A :class:`~hypothesis.stateful.RuleBasedStateMachine` holds
one in-flight :class:`~repro.hf.espresso_hf.HFState` and fires passes as
rules: any interleaving of REDUCE / EXPAND / IRREDUNDANT / LAST_GASP, the
essentials split at an arbitrary point, finalization (merge + MAKE_PRIME +
final IRREDUNDANT) whenever Hypothesis feels like it.

What must hold regardless of order — checked after every rule via
:func:`repro.guard.invariants.check_phase` — is the algorithm's core
safety argument: every operator preserves the Theorem 2.11 conditions, so
*every* reachable intermediate cover is a valid hazard-free cover of the
pending required cubes.  Finalization then asserts the independent
:func:`~repro.hazards.verify.verify_hazard_free_cover` oracle on the
result.

Separate whole-run rules assert the driver-level contracts on the same
instance: budget exhaustion mid-sweep degrades to a *valid* snapshot
cover (never a broken one), checked and unchecked runs return byte-equal
covers, and the serial and parallel per-output sweeps are
merge-identical.  ``tests/test_pipeline_machine.py`` instantiates the
machine's ``TestCase``.
"""

from __future__ import annotations

from repro.cubes.cover import Cover
from repro.guard.budget import RunBudget
from repro.guard.errors import BudgetExceeded
from repro.guard.invariants import check_phase
from repro.hazards.verify import verify_hazard_free_cover
from repro.hf.context import HFContext
from repro.hf.espresso_hf import (
    CanonicalizePass,
    EspressoHFOptions,
    HFState,
    MergeEssentialsPass,
    espresso_hf,
    espresso_hf_per_output,
)
from repro.hf.essentials import EssentialsPass
from repro.hf.expand import ExpandPass
from repro.hf.irredundant import IrredundantPass
from repro.hf.lastgasp import LastGaspPass
from repro.hf.make_prime import MakePrimePass
from repro.hf.reduce_ import ReducePass
from repro.pipeline import PassManager, Step
from repro.proptest.strategies import InstanceConfig

try:
    from hypothesis import strategies as st
    from hypothesis.stateful import (
        RuleBasedStateMachine,
        initialize,
        invariant,
        precondition,
        rule,
    )

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False

#: machine instances stay small: every rule re-runs whole passes, and the
#: whole-run rules re-minimize the instance from scratch
MACHINE_CONFIG = InstanceConfig(
    min_inputs=2,
    max_inputs=4,
    min_outputs=1,
    max_outputs=2,
    max_on_cubes=5,
    max_transitions=3,
)


def _dedup_cover(state: HFState) -> Cover:
    """The driver's result assembly: dedup ``f`` + pending essentials."""
    cover = Cover(state.ctx.n_inputs, (), state.ctx.n_outputs)
    seen = set()
    for c in list(state.f) + list(state.essentials):
        key = (c.inbits, c.outbits)
        if key not in seen:
            seen.add(key)
            cover.append(c)
    return cover


if HAVE_HYPOTHESIS:
    from repro.proptest.strategies import solvable_instances

    class HFPipelineMachine(RuleBasedStateMachine):
        """Arbitrary legal pass orders on one solvable instance."""

        def __init__(self):
            super().__init__()
            self.manager = PassManager()
            self.state = None
            self.ctx = None
            self.instance = None
            self.finalized = False
            self.did_essentials = False
            self.did_parallel = False
            self.did_checked_diff = False

        # -- setup ------------------------------------------------------

        @initialize(inst=solvable_instances(MACHINE_CONFIG))
        def setup(self, inst):
            self.instance = inst
            options = EspressoHFOptions(checked=True)
            self.ctx = HFContext(inst, checked=True)
            self.state = HFState(inst, options, self.ctx)
            self.manager.run([Step(CanonicalizePass(), check=False)], self.state)

        # -- pass rules (any interleaving) ------------------------------

        def _active(self) -> bool:
            return (
                self.state is not None
                and not self.state.stop
                and not self.finalized
            )

        def _step(self, pass_) -> None:
            self.manager.run(
                [Step(pass_, check_reqs=lambda s: s.remaining)], self.state
            )

        @precondition(lambda self: self._active())
        @rule()
        def expand(self):
            self._step(ExpandPass())

        @precondition(lambda self: self._active())
        @rule()
        def reduce(self):
            self._step(ReducePass())

        @precondition(lambda self: self._active())
        @rule()
        def irredundant(self):
            self._step(IrredundantPass())

        @precondition(lambda self: self._active())
        @rule()
        def last_gasp(self):
            self._step(LastGaspPass())

        @precondition(lambda self: self._active() and not self.did_essentials)
        @rule()
        def essentials(self):
            self.did_essentials = True
            self.manager.run(
                [
                    Step(
                        EssentialsPass(),
                        check_cubes=lambda s: list(s.f) + list(s.essentials),
                        check_reqs=lambda s: s.qf,
                    )
                ],
                self.state,
            )

        @precondition(lambda self: self._active())
        @rule()
        def finalize(self):
            """Merge essentials, make dhf-prime, final irredundant — then the
            independent Theorem 2.11 oracle must accept the cover."""
            self.finalized = True
            self.manager.run(
                [
                    Step(MergeEssentialsPass(), record=False, check=False),
                    Step(MakePrimePass(), check_reqs=lambda s: s.qf),
                    Step(IrredundantPass(final=True), check_reqs=lambda s: s.qf),
                ],
                self.state,
            )
            violations = verify_hazard_free_cover(
                self.instance, _dedup_cover(self.state), collect_all=True
            )
            assert not violations, violations[:3]

        # -- whole-run rules (driver contracts on the same instance) ----

        @precondition(lambda self: self.instance is not None)
        @rule(cap=st.integers(min_value=1, max_value=40))
        def budget_exhaustion_mid_sweep(self, cap):
            """A run cut off after ``cap`` checkpoints must still return a
            valid hazard-free cover (the best snapshot), never garbage."""
            options = EspressoHFOptions(
                checked=True, budget=RunBudget(max_checkpoints=cap)
            )
            try:
                result = espresso_hf(self.instance, options)
            except BudgetExceeded:
                return  # exhausted before any valid cover existed: legal
            assert result.status in ("ok", "degraded", "budget_exceeded")
            assert not verify_hazard_free_cover(self.instance, result.cover)

        @precondition(lambda self: self.instance is not None and not self.did_checked_diff)
        @rule()
        def checked_matches_unchecked(self):
            """Checked mode observes; it must not steer the result."""
            self.did_checked_diff = True
            plain = espresso_hf(self.instance, EspressoHFOptions(checked=False))
            checked = espresso_hf(self.instance, EspressoHFOptions(checked=True))
            assert plain.cover.key() == checked.cover.key()

        @precondition(
            lambda self: self.instance is not None
            and self.instance.n_outputs > 1
            and not self.did_parallel
        )
        @rule()
        def serial_parallel_identical(self):
            """``--jobs`` parallelism must be invisible in the cover."""
            self.did_parallel = True
            serial = espresso_hf_per_output(
                self.instance, EspressoHFOptions(jobs=1)
            )
            parallel = espresso_hf_per_output(
                self.instance, EspressoHFOptions(jobs=2)
            )
            assert serial.cover.key() == parallel.cover.key()
            assert serial.status == parallel.status

        # -- the standing invariant -------------------------------------

        @invariant()
        def theorem_2_11_holds(self):
            """Every reachable intermediate state is a valid cover of the
            pending required cubes (conditions (a)-(c) via check_phase)."""
            if self.state is None or self.state.stop or not self.state.qf:
                return
            reqs = self.state.qf if self.finalized else self.state.remaining
            check_phase(
                self.ctx,
                "machine",
                list(self.state.f) + list(self.state.essentials),
                reqs,
            )

else:  # pragma: no cover - exercised only without hypothesis

    class HFPipelineMachine:  # type: ignore[no-redef]
        def __init__(self, *_args, **_kwargs):
            raise RuntimeError(
                "HFPipelineMachine requires the 'hypothesis' package"
            )
