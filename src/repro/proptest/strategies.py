"""Composable generators for cubes, covers, transitions, and instances.

This module is the generation layer of the property-based correctness
toolkit.  It follows the central idea of Hypothesis's own internals: every
generated object is produced by a *builder* that pulls primitive choices
from a :class:`DrawSource`, and the same builder runs against two sources —

:class:`HypothesisSource`
    adapts a Hypothesis ``draw`` function, so builders become shrinkable
    strategies (:func:`cubes`, :func:`covers`, :func:`transitions`,
    :func:`instances`) whose counterexamples Hypothesis minimizes natively;
:class:`RandomSource`
    adapts a seeded :class:`random.Random`, so the *same* construction code
    powers the deterministic overnight fuzz loop
    (:func:`repro.guard.fuzz.run_fuzz` via :func:`seeded_instance`).

Generation is **solvability-aware**: by Theorem 4.1 a hazard-free cover
exists iff every required cube has a defined dhf-supercube, and each
undefined supercube is blamed on the transition it was derived from.
:func:`repair_to_solvable` drops exactly the blamed transitions and
re-checks, so random instances are biased toward the solvable region where
the minimizer actually runs — without the rejection-heavy filtering that
``HealthCheck.filter_too_much`` exists to flag.

Functions are generated *compactly*: the ON-set is a small drawn cube list
and the OFF-set is its per-output complement, so the function is fully
defined everywhere (no definedness filtering needed) and a shrunk
counterexample serializes to a handful of PLA rows rather than a minterm
dump.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.cubes.cube import Cube
from repro.cubes.cover import Cover
from repro.espresso import complement
from repro.hazards.existence import existence_report, hazard_free_solution_exists
from repro.hazards.instance import HazardFreeInstance
from repro.hazards.transitions import Transition, function_hazard_free

try:  # Hypothesis is a test-time dependency; the seeded path works without it
    from hypothesis import assume
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False


# ----------------------------------------------------------------------
# Draw sources
# ----------------------------------------------------------------------


class DrawSource:
    """Primitive-choice interface shared by all builders.

    The two implementations below answer the same four questions —
    ``integer``, ``boolean``, ``choice``, ``subset`` — from a Hypothesis
    draw or a seeded PRNG, which is what lets one builder body serve both
    property tests (with shrinking) and the seeded fuzz loop (with
    deterministic replay).
    """

    def integer(self, lo: int, hi: int) -> int:  # pragma: no cover
        raise NotImplementedError

    def boolean(self) -> bool:  # pragma: no cover
        raise NotImplementedError

    def choice(self, seq: Sequence):  # pragma: no cover
        raise NotImplementedError

    def subset(self, seq: Sequence, min_size: int, max_size: int) -> List:
        """An ordered subset of ``seq`` with size in [min_size, max_size]."""
        raise NotImplementedError  # pragma: no cover


class RandomSource(DrawSource):
    """Draws answered by a seeded :class:`random.Random` (fuzz path)."""

    def __init__(self, rng: random.Random):
        self.rng = rng

    def integer(self, lo: int, hi: int) -> int:
        return self.rng.randint(lo, hi)

    def boolean(self) -> bool:
        return self.rng.random() < 0.5

    def choice(self, seq: Sequence):
        return seq[self.rng.randrange(len(seq))]

    def subset(self, seq: Sequence, min_size: int, max_size: int) -> List:
        k = self.rng.randint(min_size, min(max_size, len(seq)))
        picked = self.rng.sample(list(seq), k)
        return sorted(picked, key=list(seq).index)


class HypothesisSource(DrawSource):
    """Draws answered by a Hypothesis ``draw`` function (property path).

    Primitives shrink the way Hypothesis primitives do: integers toward
    ``lo``, subsets toward the smallest allowed prefix — so a shrunk
    instance has few inputs, few cubes, and few, short transitions.
    """

    def __init__(self, draw):
        self.draw = draw

    def integer(self, lo: int, hi: int) -> int:
        return self.draw(st.integers(lo, hi))

    def boolean(self) -> bool:
        return self.draw(st.booleans())

    def choice(self, seq: Sequence):
        return self.draw(st.sampled_from(list(seq)))

    def subset(self, seq: Sequence, min_size: int, max_size: int) -> List:
        items = list(seq)
        picked = self.draw(
            st.lists(
                st.sampled_from(items),
                min_size=min_size,
                max_size=min(max_size, len(items)),
                unique=True,
            )
        )
        return sorted(picked, key=items.index)


# ----------------------------------------------------------------------
# Builders (source-agnostic construction)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class InstanceConfig:
    """Size and bias knobs for instance generation.

    ``solvable_bias`` turns on the Theorem 4.1 transition-dropping repair;
    it biases rather than guarantees — callers that need a strict guarantee
    still check :func:`repro.hazards.hazard_free_solution_exists`.
    """

    min_inputs: int = 2
    max_inputs: int = 4
    min_outputs: int = 1
    max_outputs: int = 2
    min_on_cubes: int = 1
    max_on_cubes: int = 6
    min_transitions: int = 1
    max_transitions: int = 4
    max_burst: Optional[int] = None
    solvable_bias: bool = True


DEFAULT_CONFIG = InstanceConfig()

#: the fuzz loop's scale: slightly larger than property-test defaults,
#: matching the pre-toolkit ``random_instance(3..5 inputs, 1..3 outputs)``
FUZZ_CONFIG = InstanceConfig(
    min_inputs=3,
    max_inputs=5,
    min_outputs=1,
    max_outputs=3,
    max_on_cubes=8,
    min_transitions=1,
    max_transitions=4,
)


def build_cube(
    src: DrawSource, n_inputs: int, n_outputs: int = 1, multi_output: bool = True
) -> Cube:
    """Draw one non-empty cube; output parts are drawn when multi-output."""
    lits = [src.integer(1, 3) for _ in range(n_inputs)]
    if multi_output and n_outputs > 1:
        outbits = src.integer(1, (1 << n_outputs) - 1)
    else:
        outbits = (1 << n_outputs) - 1 if multi_output else 1
    return Cube.from_literals(lits, outbits, n_outputs)


def build_cover(
    src: DrawSource,
    n_inputs: int,
    n_outputs: int = 1,
    min_cubes: int = 0,
    max_cubes: int = 5,
) -> Cover:
    """Draw a cover of ``min_cubes..max_cubes`` drawn cubes."""
    n = src.integer(min_cubes, max_cubes)
    return Cover(
        n_inputs, [build_cube(src, n_inputs, n_outputs) for _ in range(n)], n_outputs
    )


def build_transition(
    src: DrawSource, n_inputs: int, max_burst: Optional[int] = None
) -> Transition:
    """Draw a multiple-input-change transition (burst size >= 1)."""
    start = tuple(src.integer(0, 1) for _ in range(n_inputs))
    burst_cap = max_burst if max_burst is not None else n_inputs
    flips = src.subset(range(n_inputs), 1, max(1, min(burst_cap, n_inputs)))
    end = tuple(v ^ 1 if i in flips else v for i, v in enumerate(start))
    return Transition(start, end)


def build_function(
    src: DrawSource,
    n_inputs: int,
    n_outputs: int,
    min_on_cubes: int = 1,
    max_on_cubes: int = 6,
):
    """Draw a fully defined function: ON cubes + per-output complement OFF.

    Returns ``(on, off)`` multi-output covers with no don't-care points, so
    any transition cube is automatically fully defined.
    """
    on = build_cover(src, n_inputs, n_outputs, min_on_cubes, max_on_cubes)
    on = on.drop_empty().deduplicate()
    off_cubes: List[Cube] = []
    for j in range(n_outputs):
        for c in complement(on.restrict_to_output(j)):
            off_cubes.append(Cube(n_inputs, c.inbits, 1 << j, n_outputs))
    return on, Cover(n_inputs, off_cubes, n_outputs)


def repair_to_solvable(
    instance: HazardFreeInstance, max_rounds: int = 3
) -> HazardFreeInstance:
    """Theorem 4.1-aware bias: drop the transitions blamed for insolvability.

    Every required cube whose dhf-supercube is undefined records the
    transition it was derived from; removing those transitions removes the
    offending required cubes (dropping specified transitions always yields
    a valid, weaker instance).  Repeats until solvable, out of transitions,
    or ``max_rounds`` exhausted; returns the last instance either way.
    """
    for _ in range(max_rounds):
        report = existence_report(instance)
        if report.exists:
            return instance
        blamed = {q.transition for q in report.failures if q.transition is not None}
        keep = [t for t in instance.transitions if t not in blamed]
        if not keep or len(keep) == len(instance.transitions):
            return instance
        instance = HazardFreeInstance(
            instance.on,
            instance.off,
            keep,
            name=instance.name,
            validate=False,
        )
    return instance


def build_instance(
    src: DrawSource, config: InstanceConfig = DEFAULT_CONFIG, name: str = "proptest"
) -> Optional[HazardFreeInstance]:
    """Draw one :class:`HazardFreeInstance`, or ``None`` when the drawn
    function admits no function-hazard-free transitions.

    Candidate transitions are drawn and kept only when every output is
    function-hazard-free over them (the model's precondition); with
    ``config.solvable_bias`` the result is then repaired toward Theorem 4.1
    solvability by dropping blamed transitions.
    """
    n_inputs = src.integer(config.min_inputs, config.max_inputs)
    n_outputs = src.integer(config.min_outputs, config.max_outputs)
    on, off = build_function(
        src, n_inputs, n_outputs, config.min_on_cubes, config.max_on_cubes
    )
    on_by = [on.restrict_to_output(j) for j in range(n_outputs)]
    off_by = [off.restrict_to_output(j) for j in range(n_outputs)]
    target = src.integer(config.min_transitions, config.max_transitions)
    transitions: List[Transition] = []
    seen = set()
    for _ in range(4 * target):
        if len(transitions) >= target:
            break
        t = build_transition(src, n_inputs, config.max_burst)
        key = (t.start, t.end)
        if key in seen:
            continue
        seen.add(key)
        if all(
            function_hazard_free(t, on_by[j], off_by[j]) for j in range(n_outputs)
        ):
            transitions.append(t)
    if len(transitions) < config.min_transitions:
        return None
    instance = HazardFreeInstance(
        on, off, transitions, name=f"{name}-{n_inputs}x{n_outputs}"
    )
    if config.solvable_bias:
        instance = repair_to_solvable(instance)
        if not instance.transitions:
            return None
    return instance


def build_unsolvable_instance(
    src: DrawSource,
    config: InstanceConfig = DEFAULT_CONFIG,
    name: str = "unsolvable",
    max_tries: int = 12,
) -> Optional[HazardFreeInstance]:
    """Draw an instance with **no** hazard-free cover, or ``None``.

    The complement of :func:`build_instance`'s solvable bias: the Theorem
    4.1 repair is turned off and draws are rejected until one *fails* the
    existence check.  This is the corpus generator's source of deliberate
    hard-negative cases (the regime where a heuristic and an exact
    minimizer can disagree about solvability itself), so the differential
    driver can assert that both sides answer ``no_solution``.
    """
    cfg = replace(config, solvable_bias=False)
    for _ in range(max_tries):
        inst = build_instance(src, cfg, name=name)
        if inst is not None and not hazard_free_solution_exists(inst):
            return inst
    return None


def seeded_instance(
    seed: int, config: InstanceConfig = FUZZ_CONFIG, name: str = "fuzz"
) -> Optional[HazardFreeInstance]:
    """Deterministic instance for a seed (the fuzz loop's generator).

    Same builder as the Hypothesis strategies, driven by
    ``random.Random(seed)`` — one seed, one instance, forever.
    """
    src = RandomSource(random.Random(seed))
    return build_instance(src, config, name=f"{name}-s{seed}")


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------

if HAVE_HYPOTHESIS:

    def literals() -> "st.SearchStrategy[int]":
        """A non-empty input literal code (ZERO/ONE/DC)."""
        return st.integers(1, 3)

    def cubes(n_inputs: int, n_outputs: int = 1) -> "st.SearchStrategy[Cube]":
        """Non-empty cubes; with ``n_outputs > 1`` output parts are drawn too."""
        out_strategy = (
            st.integers(1, (1 << n_outputs) - 1) if n_outputs > 1 else st.just(1)
        )
        return st.builds(
            lambda lits, outbits: Cube.from_literals(lits, outbits, n_outputs),
            st.lists(literals(), min_size=n_inputs, max_size=n_inputs),
            out_strategy,
        )

    def covers(
        n_inputs: int,
        n_outputs: int = 1,
        min_cubes: int = 0,
        max_cubes: int = 5,
    ) -> "st.SearchStrategy[Cover]":
        """Multi-output covers of drawn cubes (shrinks toward fewer cubes)."""
        return st.builds(
            lambda cs: Cover(n_inputs, cs, n_outputs),
            st.lists(
                cubes(n_inputs, n_outputs), min_size=min_cubes, max_size=max_cubes
            ),
        )

    @st.composite
    def transitions(draw, n_inputs: int, max_burst: Optional[int] = None):
        """Multiple-input-change transitions (burst shrinks toward 1)."""
        return build_transition(HypothesisSource(draw), n_inputs, max_burst)

    @st.composite
    def instances(
        draw,
        config: InstanceConfig = DEFAULT_CONFIG,
        solvable: bool = False,
    ):
        """Whole :class:`HazardFreeInstance` values via the shared builder.

        With ``solvable=True`` the strategy additionally *guarantees*
        Theorem 4.1 solvability (the repair makes the residual ``assume``
        filter rare).
        """
        inst = build_instance(HypothesisSource(draw), config)
        assume(inst is not None)
        if solvable:
            from repro.hazards import hazard_free_solution_exists

            assume(hazard_free_solution_exists(inst))
        return inst

    def solvable_instances(
        config: InstanceConfig = DEFAULT_CONFIG,
    ) -> "st.SearchStrategy[HazardFreeInstance]":
        """Instances guaranteed to admit a hazard-free cover."""
        return instances(config=config, solvable=True)

    @st.composite
    def unsolvable_instances(draw, config: InstanceConfig = DEFAULT_CONFIG):
        """Instances guaranteed to admit **no** hazard-free cover."""
        inst = build_unsolvable_instance(HypothesisSource(draw), config)
        assume(inst is not None)
        return inst

else:  # pragma: no cover - exercised only without hypothesis

    def _needs_hypothesis(*_args, **_kwargs):
        raise RuntimeError(
            "repro.proptest strategies require the 'hypothesis' package; "
            "only the seeded builders (seeded_instance, build_instance) "
            "work without it"
        )

    literals = cubes = covers = transitions = _needs_hypothesis
    instances = solvable_instances = unsolvable_instances = _needs_hypothesis
