"""The Espresso-HF driver (paper Figure 2), under the guarded runtime.

::

    Espresso-HF(f, T):
        Q  = required cubes, P = privileged cubes, R = OFF-set
        Qf = { supercube_dhf(q) | q in Q }        # dhf-canonicalization
        if undefined in Qf: no solution            # Theorem 4.1
        Qf = SCC-minimize(Qf)
        F  = Qf
        (F, E) = expand_and_compute_essentials(F)
        remove required cubes covered by E; F = F - E
        F = irredundant(F)
        do: s2 = |F|
            do: s1 = |F|
                F = reduce(F); F = expand(F); F = irredundant(F)
            while |F| < s1
            F = last_gasp(F)
        while |F| < s2
        F = F ∪ E
        F = make_dhf_prime(F)

The minimizer is heuristic *only in cover cardinality*: the result is always
a hazard-free cover.  The guarded runtime (:mod:`repro.guard`) enforces that
contract operationally:

* a :class:`~repro.guard.budget.RunBudget` on the options bounds the run;
  once the canonical cover exists, budget exhaustion returns the best
  phase-boundary snapshot with ``status="budget_exceeded"`` instead of
  hanging or raising — every snapshot is a valid hazard-free cover by
  construction (the canonical cubes cover everything, and every operator
  preserves coverage and dhf-implicant validity);
* ``checked=True`` asserts the Theorem 2.11 conditions at every phase
  boundary and cross-checks the coverage-bitset engine against the scalar
  predicate, falling back to the scalar path on divergence
  (:mod:`repro.guard.invariants`);
* an outer loop that stops on ``max_outer_iterations`` without converging
  reports ``status="degraded"`` instead of posing as converged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.cubes.cube import Cube
from repro.cubes.cover import Cover
from repro.guard.budget import RunBudget
from repro.guard.errors import BudgetExceeded, NoSolutionError
from repro.guard.invariants import check_final, check_phase
from repro.hazards.instance import HazardFreeInstance
from repro.hf.context import HFContext, TaggedRequired
from repro.hf.essentials import compute_essentials
from repro.hf.expand import expand_cover
from repro.hf.irredundant import irredundant_cover
from repro.hf.lastgasp import last_gasp
from repro.hf.make_prime import make_cover_dhf_prime
from repro.hf.reduce_ import reduce_cover
from repro.hf.result import HFResult
from repro.perf import PerfCounters

#: status severity order for merging per-output results
_STATUS_RANK = {"ok": 0, "degraded": 1, "budget_exceeded": 2}


@dataclass
class EspressoHFOptions:
    """Tuning knobs for Espresso-HF.

    ``exact_irredundant`` selects MINCOV's branch-and-bound inside
    IRREDUNDANT (the paper notes either mode works; the tables are small
    because rows are required cubes, not minterms).  ``make_prime`` controls
    the final MAKE_DHF_PRIME pass.

    ``budget`` attaches a :class:`~repro.guard.budget.RunBudget`; the run
    then degrades gracefully (``HFResult.status``) instead of running
    unbounded.  ``checked`` turns on phase-boundary invariant checkpoints
    and the scalar-vs-bitset coverage cross-check — slower, but every
    intermediate cover is machine-checked.  ``coverage_fault_hook`` is a
    fault injector for the coverage engine ((inbits, outbits, mask) ->
    mask), used to validate that checked mode catches engine bugs; never
    set it in production.
    """

    use_essentials: bool = True
    use_last_gasp: bool = True
    make_prime: bool = True
    exact_irredundant: bool = True
    irredundant_node_limit: Optional[int] = 200_000
    max_outer_iterations: int = 20
    budget: Optional[RunBudget] = None
    checked: bool = False
    coverage_fault_hook: Optional[Callable[[int, int, int], int]] = None


def espresso_hf(
    instance: HazardFreeInstance, options: Optional[EspressoHFOptions] = None
) -> HFResult:
    """Minimize a hazard-free instance heuristically (the paper's algorithm).

    Raises :class:`NoSolutionError` when no hazard-free cover exists.  With
    a budget on the options, :class:`~repro.guard.errors.BudgetExceeded`
    can only escape while the canonical cover is still being computed
    (before any valid cover exists); afterwards exhaustion is reported via
    ``HFResult.status``.
    """
    options = options or EspressoHFOptions()
    t_start = time.perf_counter()
    phases = {}
    checked = options.checked
    ctx = HFContext(instance, budget=options.budget, checked=checked)
    if options.coverage_fault_hook is not None:
        ctx.coverage.fault_hook = options.coverage_fault_hook

    t0 = time.perf_counter()
    qf = ctx.canonical_required()
    phases["canonicalize"] = time.perf_counter() - t0
    if qf is None:
        raise NoSolutionError(
            f"{instance.name}: some required cube has no dhf-supercube "
            "(Theorem 4.1: no hazard-free cover exists)"
        )
    num_required = len(instance.required_cubes())
    ctx.record_phase("canonicalize", len(qf))

    if not qf:
        return HFResult(
            cover=Cover(ctx.n_inputs, (), ctx.n_outputs),
            num_required=num_required,
            num_canonical_required=0,
            runtime_s=time.perf_counter() - t_start,
            phase_seconds=phases,
            counters=ctx.perf,
            trace=list(ctx.trace),
        )

    # From here on a valid hazard-free cover always exists — the canonical
    # required cubes themselves — so budget exhaustion never raises past
    # this point: the newest phase-boundary snapshot is returned instead.
    best: List[Cube] = [ctx.cube_for(q) for q in qf]
    essentials: List[Cube] = []
    remaining: List[TaggedRequired] = list(qf)
    status = "ok"
    iterations = 0
    f: List[Cube] = []
    try:
        t0 = time.perf_counter()
        if options.use_essentials:
            essentials, remaining = compute_essentials(ctx, qf)
        phases["essentials"] = time.perf_counter() - t0
        f = [ctx.cube_for(q) for q in remaining]
        best = f + essentials
        ctx.record_phase("essentials", len(best))
        if checked:
            check_phase(ctx, "essentials", f + essentials, qf)

        t0 = time.perf_counter()
        converged = True
        if f:
            f = expand_cover(f, remaining, ctx)
            best = f + essentials
            if checked:
                check_phase(ctx, "expand", f, remaining)
            f = irredundant_cover(
                f,
                remaining,
                ctx,
                exact=options.exact_irredundant,
                node_limit=options.irredundant_node_limit,
            )
            best = f + essentials
            if checked:
                check_phase(ctx, "irredundant", f, remaining)
            ctx.record_phase("initial", len(f))
            # Convergence must be demonstrated by a non-shrinking pass; a
            # cap of 0 (or running out of passes) means it never was.
            converged = False
            for _ in range(options.max_outer_iterations):
                converged = False
                size_outer = len(f)
                while True:
                    size_inner = len(f)
                    f = reduce_cover(f, remaining, ctx)
                    if checked:
                        check_phase(ctx, "reduce", f, remaining)
                    f = expand_cover(f, remaining, ctx)
                    if checked:
                        check_phase(ctx, "expand", f, remaining)
                    f = irredundant_cover(
                        f,
                        remaining,
                        ctx,
                        exact=options.exact_irredundant,
                        node_limit=options.irredundant_node_limit,
                    )
                    best = f + essentials
                    if checked:
                        check_phase(ctx, "irredundant", f, remaining)
                    iterations += 1
                    if ctx.budget is not None:
                        ctx.budget.charge_iteration()
                    if len(f) >= size_inner:
                        break
                if options.use_last_gasp:
                    f = last_gasp(
                        f,
                        remaining,
                        ctx,
                        exact=options.exact_irredundant,
                        node_limit=options.irredundant_node_limit,
                    )
                    best = f + essentials
                    if checked:
                        check_phase(ctx, "last_gasp", f, remaining)
                if len(f) >= size_outer:
                    converged = True
                    break
            ctx.record_phase("loop", len(f))
        phases["loop"] = time.perf_counter() - t0
        if not converged:
            # Silent truncation would misreport a non-converged run as a
            # minimum; surface it so report.py and the CLI can warn.
            status = "degraded"
            ctx.trace.append(
                "outer loop stopped by max_outer_iterations="
                f"{options.max_outer_iterations} before converging"
            )

        f = f + essentials
        t0 = time.perf_counter()
        if options.make_prime:
            f = make_cover_dhf_prime(f, ctx)
            best = list(f)
            if checked:
                check_phase(ctx, "make_prime", f, qf)
            # Expansion to dhf-primes can (rarely) make another cube
            # redundant; a final required-cube IRREDUNDANT pass over the
            # full canonical set restores irredundancy and can only shrink
            # the cover.
            f = irredundant_cover(
                f,
                qf,
                ctx,
                exact=options.exact_irredundant,
                node_limit=options.irredundant_node_limit,
            )
            best = list(f)
            if checked:
                check_phase(ctx, "final_irredundant", f, qf)
        phases["make_prime"] = time.perf_counter() - t0
        ctx.record_phase("final", len(f))
    except BudgetExceeded as exc:
        status = "budget_exceeded"
        f = best
        ctx.trace.append(f"budget-exceeded:{exc.reason}@{exc.phase or '?'}")

    cover = Cover(ctx.n_inputs, (), ctx.n_outputs)
    seen = set()
    for c in f:
        key = (c.inbits, c.outbits)
        if key not in seen:
            seen.add(key)
            cover.append(c)
    if checked:
        check_final(ctx, instance, cover)
    return HFResult(
        cover=cover,
        essentials=essentials,
        num_required=num_required,
        num_canonical_required=len(qf),
        iterations=iterations,
        runtime_s=time.perf_counter() - t_start,
        phase_seconds=phases,
        counters=ctx.perf,
        status=status,
        trace=list(ctx.trace),
    )


def espresso_hf_per_output(
    instance: HazardFreeInstance, options: Optional[EspressoHFOptions] = None
) -> HFResult:
    """Single-output mode: minimize every output independently.

    The paper's algorithm is natively multi-output (one cube may serve
    several outputs); this mode runs it once per output and merges cubes
    with identical input parts afterwards.  It is the right choice when
    outputs are implemented as separate PLAs, and it serves as the baseline
    for measuring the benefit of multi-output sharing
    (``benchmarks/test_output_sharing.py``).

    A budget on the options is shared across the per-output sub-runs (one
    wall-clock deadline for the whole call); the merged result's ``status``
    is the worst of the sub-run statuses.
    """
    t_start = time.perf_counter()
    merged = {}
    essentials: List[Cube] = []
    num_required = 0
    num_canonical = 0
    iterations = 0
    phases: dict = {}
    counters = PerfCounters()
    status = "ok"
    trace: List[str] = []
    for j in range(instance.n_outputs):
        sub = instance.restrict_to_output(j)
        result = espresso_hf(sub, options)
        num_required += result.num_required
        num_canonical += result.num_canonical_required
        iterations += result.iterations
        for phase, seconds in result.phase_seconds.items():
            phases[phase] = phases.get(phase, 0.0) + seconds
        counters.merge(result.counters)
        if _STATUS_RANK[result.status] > _STATUS_RANK[status]:
            status = result.status
        trace.extend(f"out{j}/{line}" for line in result.trace)
        essentials.extend(
            Cube(instance.n_inputs, e.inbits, 1 << j, instance.n_outputs)
            for e in result.essentials
        )
        for c in result.cover:
            merged[c.inbits] = merged.get(c.inbits, 0) | (1 << j)
    cover = Cover(instance.n_inputs, (), instance.n_outputs)
    for inbits, outbits in sorted(merged.items()):
        cover.append(Cube(instance.n_inputs, inbits, outbits, instance.n_outputs))
    return HFResult(
        cover=cover,
        essentials=essentials,
        num_required=num_required,
        num_canonical_required=num_canonical,
        iterations=iterations,
        runtime_s=time.perf_counter() - t_start,
        phase_seconds=phases,
        counters=counters,
        status=status,
        trace=trace,
    )
