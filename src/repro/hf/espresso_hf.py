"""The Espresso-HF driver (paper Figure 2), as a declarative pass pipeline.

::

    Espresso-HF(f, T):
        Q  = required cubes, P = privileged cubes, R = OFF-set
        Qf = { supercube_dhf(q) | q in Q }        # dhf-canonicalization
        if undefined in Qf: no solution            # Theorem 4.1
        Qf = SCC-minimize(Qf)
        F  = Qf
        (F, E) = expand_and_compute_essentials(F)
        remove required cubes covered by E; F = F - E
        F = irredundant(F)
        do: s2 = |F|
            do: s1 = |F|
                F = reduce(F); F = expand(F); F = irredundant(F)
            while |F| < s1
            F = last_gasp(F)
        while |F| < s2
        F = F ∪ E
        F = make_dhf_prime(F)

The algorithm is expressed as a pipeline spec executed by
:class:`repro.pipeline.PassManager`::

    canonicalize → essentials → [reduce, expand, irredundant]* →
    last_gasp → make_prime → final_irredundant

Every cross-cutting concern — per-pass timing into ``phase_seconds``,
:class:`~repro.guard.budget.RunBudget` iteration charging, best-verified
snapshot capture, checked-mode :func:`~repro.guard.invariants.check_phase`
checkpoints, and trace emission — is applied by the manager's hook stack,
not hand-threaded through the driver.  :func:`build_hf_pipeline` builds the
spec from the options; ``EspressoHFOptions.passes`` (CLI ``--pipeline``)
skips or reorders the optional stages.

The minimizer is heuristic *only in cover cardinality*: the result is
always a hazard-free cover.  The guarded runtime (:mod:`repro.guard`)
enforces that contract operationally:

* a :class:`~repro.guard.budget.RunBudget` on the options bounds the run;
  once the canonical cover exists, budget exhaustion returns the best
  phase-boundary snapshot with ``status="budget_exceeded"`` instead of
  hanging or raising — every snapshot is a valid hazard-free cover by
  construction (the canonical cubes cover everything, and every pass
  preserves coverage and dhf-implicant validity);
* ``checked=True`` asserts the Theorem 2.11 conditions at every phase
  boundary and cross-checks the coverage-bitset engine against the scalar
  predicate, falling back to the scalar path on divergence
  (:mod:`repro.guard.invariants`);
* an outer loop that stops on ``max_outer_iterations`` without converging
  reports ``status="degraded"`` instead of posing as converged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.cubes.cube import Cube
from repro.cubes.cover import Cover
from repro.guard.budget import RunBudget
from repro.guard.errors import (
    InvariantViolation,
    MalformedInstance,
    NoSolutionError,
)
from repro.guard.invariants import check_final
from repro.hazards.instance import HazardFreeInstance
from repro.hf.context import HFContext, TaggedRequired
from repro.hf.essentials import EssentialsPass
from repro.hf.expand import ExpandPass
from repro.hf.irredundant import IrredundantPass
from repro.hf.lastgasp import LastGaspPass
from repro.hf.make_prime import MakePrimePass
from repro.hf.reduce_ import ReducePass
from repro.hf.result import HFResult
from repro.obs import ObsHook, current_tracer
from repro.perf import PerfCounters
from repro.pipeline import (
    FixedPoint,
    Group,
    PassManager,
    PipelineState,
    Step,
)
from repro.pipeline.manager import default_hooks

#: status severity order for merging per-output results
_STATUS_RANK = {"ok": 0, "degraded": 1, "budget_exceeded": 2}

#: stage names ``EspressoHFOptions.passes`` / CLI ``--pipeline`` accepts
HF_STAGES = ("essentials", "loop", "last_gasp", "make_prime")

#: the paper's Figure 2 stage order
DEFAULT_HF_STAGES = ("essentials", "loop", "make_prime")


@dataclass
class EspressoHFOptions:
    """Tuning knobs for Espresso-HF.

    ``exact_irredundant`` selects MINCOV's branch-and-bound inside
    IRREDUNDANT (the paper notes either mode works; the tables are small
    because rows are required cubes, not minterms).  ``make_prime`` controls
    the final MAKE_DHF_PRIME pass.

    ``passes`` overrides the default pipeline stage sequence (see
    :data:`HF_STAGES`; ``None`` = the paper's default).  Stages may be
    omitted or reordered; ``make_prime``, when present, must come last.

    ``jobs`` sets the worker-process count for
    :func:`espresso_hf_per_output`: with ``jobs > 1`` the independent
    per-output sub-runs execute in parallel on the guard runner's worker
    pool.  Plain :func:`espresso_hf` is natively multi-output and ignores
    it.

    ``budget`` attaches a :class:`~repro.guard.budget.RunBudget`; the run
    then degrades gracefully (``HFResult.status``) instead of running
    unbounded.  ``checked`` turns on phase-boundary invariant checkpoints
    and the scalar-vs-bitset coverage cross-check — slower, but every
    intermediate cover is machine-checked.  ``coverage_fault_hook`` is a
    fault injector for the coverage engine ((inbits, outbits, mask) ->
    mask), used to validate that checked mode catches engine bugs; never
    set it in production.

    ``pass_decorator`` routes every pipeline pass through a wrapper
    (``Pass -> Pass``, applied via :func:`repro.pipeline.map_passes`).
    It exists for the property-based testing toolkit — the
    :mod:`repro.proptest.faults` defect injector substitutes deliberately
    broken phase operators through it to prove the oracles catch them —
    and, like ``coverage_fault_hook``, must never be set in production.
    """

    use_essentials: bool = True
    use_last_gasp: bool = True
    make_prime: bool = True
    exact_irredundant: bool = True
    irredundant_node_limit: Optional[int] = 200_000
    max_outer_iterations: int = 20
    jobs: int = 1
    passes: Optional[Tuple[str, ...]] = None
    budget: Optional[RunBudget] = None
    checked: bool = False
    coverage_fault_hook: Optional[Callable[[int, int, int], int]] = None
    pass_decorator: Optional[Callable] = None


# ----------------------------------------------------------------------
# Pipeline state and the driver-level passes
# ----------------------------------------------------------------------


class HFState(PipelineState):
    """Pipeline state of one Espresso-HF run.

    ``f`` is the working cover, ``essentials`` the pending essential-class
    representatives not yet merged back into ``f`` (the merge is itself a
    pass), ``essential_classes`` the computed classes as reported on
    :class:`~repro.hf.result.HFResult` regardless of later degradation.
    ``trace`` aliases ``HFContext.trace`` so pass-boundary lines and guard
    events (scalar fallback, budget exhaustion) interleave in execution
    order.
    """

    def __init__(
        self,
        instance: HazardFreeInstance,
        options: EspressoHFOptions,
        ctx: HFContext,
    ):
        super().__init__()
        self.instance = instance
        self.options = options
        self.ctx = ctx
        self.trace = ctx.trace
        self.qf: List[TaggedRequired] = []
        self.remaining: List[TaggedRequired] = []
        self.f: List[Cube] = []
        self.essentials: List[Cube] = []
        self.essential_classes: List[Cube] = []
        self.num_required = 0

    def snapshot_cubes(self) -> List[Cube]:
        return list(self.f) + list(self.essentials)

    def cover_size(self) -> int:
        return len(self.f) + len(self.essentials)

    def measure(self) -> int:
        return len(self.f)

    def on_budget_exceeded(self, exc) -> None:
        self.f = list(self.best)
        self.essentials = []


class CanonicalizePass:
    """dhf-canonicalization (paper §3.2): build ``Q_f`` and the seed cover.

    Raises :class:`NoSolutionError` when some required cube has no
    dhf-supercube (Theorem 4.1).  An instance with no required cubes stops
    the pipeline with an empty cover.  On success the canonical cubes form
    the first valid hazard-free cover, so the snapshot hook arms budget
    degradation from here on.
    """

    name = "canonicalize"

    def run(self, state: HFState):
        ctx = state.ctx
        instance = state.instance
        state.num_required = len(instance.required_cubes())
        qf = ctx.canonical_required()
        if qf is None:
            raise NoSolutionError(
                f"{instance.name}: some required cube has no dhf-supercube "
                "(Theorem 4.1: no hazard-free cover exists)"
            )
        state.qf = qf
        state.remaining = list(qf)
        state.f = [ctx.cube_for(q) for q in qf]
        if not qf:
            state.stop = True
            state.stopped_early = True
        return state


class MergeEssentialsPass:
    """``F = F ∪ E``: fold the pending essentials back into the cover."""

    name = "merge_essentials"

    def run(self, state: HFState):
        state.f = list(state.f) + list(state.essentials)
        state.essentials = []
        return state


# ----------------------------------------------------------------------
# The declarative pipeline spec
# ----------------------------------------------------------------------


def _remaining(state: HFState) -> Sequence[TaggedRequired]:
    return state.remaining


def _qf(state: HFState) -> Sequence[TaggedRequired]:
    return state.qf


def _have_cover(state: HFState) -> bool:
    return bool(state.f)


def validate_stages(stages: Sequence[str]) -> Tuple[str, ...]:
    """Check a ``--pipeline`` stage sequence; returns it as a tuple.

    Stage names must come from :data:`HF_STAGES`, appear at most once, and
    ``make_prime`` (which re-establishes dhf-primeness over the *full*
    canonical required set) must be last when present.
    """
    stages = tuple(stages)
    unknown = [s for s in stages if s not in HF_STAGES]
    if unknown:
        raise ValueError(
            f"unknown pipeline stage(s) {', '.join(unknown)}; "
            f"valid stages: {', '.join(HF_STAGES)}"
        )
    if len(set(stages)) != len(stages):
        raise ValueError("pipeline stages may appear at most once")
    if "make_prime" in stages and stages[-1] != "make_prime":
        raise ValueError("the make_prime stage must be last")
    return stages


def _loop_stage(options: EspressoHFOptions) -> Group:
    """The minimization loop: initial EXPAND/IRREDUNDANT, then the nested
    fixed points — ``[reduce, expand, irredundant]*`` charged per round,
    LAST_GASP per outer round, outer convergence tracked for the
    ``degraded`` status."""
    inner = FixedPoint(
        "loop",
        body=(
            Step(ReducePass(), check_reqs=_remaining),
            Step(ExpandPass(), check_reqs=_remaining),
            Step(IrredundantPass(), check_reqs=_remaining),
        ),
        charge=True,
    )
    outer = FixedPoint(
        "outer",
        body=(
            inner,
            Step(
                LastGaspPass(),
                check_reqs=_remaining,
                enabled=lambda s: s.options.use_last_gasp,
            ),
        ),
        max_rounds=options.max_outer_iterations,
        track_convergence=True,
        exhausted_message=(
            "outer loop stopped by max_outer_iterations="
            f"{options.max_outer_iterations} before converging"
        ),
    )
    return Group(
        "minimize",
        enabled=_have_cover,
        body=(
            Step(ExpandPass(), check_reqs=_remaining),
            Step(IrredundantPass(), check_reqs=_remaining),
            outer,
        ),
    )


def build_hf_pipeline(options: EspressoHFOptions) -> Tuple:
    """Build the Espresso-HF pipeline spec from the options.

    The default is the paper's Figure 2 sequence; ``options.passes``
    substitutes an explicit stage order (see :func:`validate_stages`).
    Canonicalization always runs first and the pending essentials are
    always merged back before MAKE_DHF_PRIME / the end of the pipeline,
    whatever the stage selection.
    """
    if options.passes is not None:
        stages = validate_stages(options.passes)
    else:
        stages = tuple(
            s
            for s in DEFAULT_HF_STAGES
            if s != "make_prime" or options.make_prime
        )
    steps: List = [Step(CanonicalizePass(), check=False)]
    for stage in stages:
        if stage == "essentials":
            steps.append(
                Step(
                    EssentialsPass(),
                    check_cubes=lambda s: list(s.f) + list(s.essentials),
                    check_reqs=_qf,
                )
            )
        elif stage == "loop":
            steps.append(_loop_stage(options))
        elif stage == "last_gasp":
            steps.append(
                Step(LastGaspPass(), check_reqs=_remaining, enabled=_have_cover)
            )
    steps.append(Step(MergeEssentialsPass(), record=False, check=False))
    if "make_prime" in stages:
        # Expansion to dhf-primes can (rarely) make another cube redundant;
        # the final required-cube IRREDUNDANT pass over the full canonical
        # set restores irredundancy and can only shrink the cover.
        steps.append(Step(MakePrimePass(), check_reqs=_qf))
        steps.append(Step(IrredundantPass(final=True), check_reqs=_qf))
    if options.pass_decorator is not None:
        from repro.pipeline import map_passes

        return map_passes(steps, options.pass_decorator)
    return tuple(steps)


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------


def espresso_hf(
    instance: HazardFreeInstance,
    options: Optional[EspressoHFOptions] = None,
    warm_start=None,
    capture_session: bool = False,
    warm_assume_identical: bool = False,
) -> HFResult:
    """Minimize a hazard-free instance heuristically (the paper's algorithm).

    Raises :class:`NoSolutionError` when no hazard-free cover exists.  With
    a budget on the options, :class:`~repro.guard.errors.BudgetExceeded`
    can only escape while the canonical cover is still being computed
    (before any valid cover exists); afterwards exhaustion is reported via
    ``HFResult.status``.

    ``warm_start`` takes a :class:`repro.session.MinimizationSession`
    captured from an earlier run of (an edit-predecessor of) the same
    instance.  The planner (:func:`repro.session.plan_warm_start`) picks
    one of three modes, reported on ``HFResult.warm`` and in the trace:
    *identical* returns the session cover directly after the Theorem 2.11
    verifier re-accepts it; *warm* imports the memo entries still valid
    under the edit (the cover stays byte-identical to a cold run — only
    values a cold run would recompute identically are adopted) and seeds
    the budget-degradation floor from the re-verified prior cover;
    *cold* ignores the session.  A bad session can only ever cost the
    planning time, never correctness.

    ``capture_session=True`` attaches a freshly captured session to
    ``HFResult.session`` on ``status == "ok"`` runs.

    ``warm_assume_identical=True`` forwards the caller's external proof
    that ``instance`` is the very instance the session came from (e.g.
    byte-identical source text) to the planner, which then skips the
    signature derivation; the defensive Theorem 2.11 re-verification is
    never skipped.
    """
    options = options or EspressoHFOptions()
    t_start = time.perf_counter()

    # Warm planning runs *before* HFContext construction: the identical
    # short-circuit never touches the context (coverage index, OFF
    # reductions, privileged-bit tables), so building one first would tax
    # the fastest path with work it provably discards.
    warm_mode: Optional[str] = None
    warm_plan_seconds = 0.0
    warm_reason = ""
    start_from: Optional[List[Cube]] = None
    plan = None
    if warm_start is not None:
        from repro.session.warm import plan_warm_start

        t_plan = time.perf_counter()
        plan = plan_warm_start(
            warm_start, instance, assume_identical=warm_assume_identical
        )
        warm_mode = plan.mode
        warm_reason = f":{plan.reasons[0]}" if plan.reasons else ""
        warm_plan_seconds = time.perf_counter() - t_plan
        if plan.mode == "identical":
            return _warm_identical_result(
                instance,
                warm_start,
                plan,
                warm_reason,
                t_start,
                warm_plan_seconds,
                capture_session,
            )

    ctx = HFContext(instance, budget=options.budget, checked=options.checked)
    if options.coverage_fault_hook is not None:
        ctx.coverage.fault_hook = options.coverage_fault_hook
    if plan is not None:
        ctx.perf.warm_cubes_reverified += plan.cubes_reverified
        ctx.trace.append(f"warm:{plan.mode}{warm_reason}")
        if plan.mode == "warm":
            ctx.import_caches(warm_start.caches, plan.valid_outputs)
            start_from = plan.seed

    state = HFState(instance, options, ctx)
    tracer = current_tracer()
    if tracer is None:
        PassManager().run(build_hf_pipeline(options), state, start_from=start_from)
    else:
        # Span tracing is active: the ObsHook leads the stack so pass
        # spans close before the (potentially slow) checked-mode
        # invariant hook runs, and a root span brackets the whole run.
        manager = PassManager([ObsHook(tracer)] + default_hooks())
        attrs = dict(n_inputs=instance.n_inputs, n_outputs=instance.n_outputs)
        if warm_mode is not None:
            attrs["warm"] = warm_mode
        root = tracer.start(f"run:{instance.name}", **attrs)
        try:
            manager.run(build_hf_pipeline(options), state, start_from=start_from)
        finally:
            tracer.unwind(
                root, status=state.status, cover_size=state.cover_size()
            )

    cover = Cover(ctx.n_inputs, (), ctx.n_outputs)
    seen = set()
    for c in list(state.f) + list(state.essentials):
        key = (c.inbits, c.outbits)
        if key not in seen:
            seen.add(key)
            cover.append(c)
    if options.checked and not state.stopped_early:
        check_final(ctx, instance, cover)
    if warm_plan_seconds:
        state.phase_seconds["warm_plan"] = (
            state.phase_seconds.get("warm_plan", 0.0) + warm_plan_seconds
        )
    result = HFResult(
        cover=cover,
        essentials=state.essential_classes,
        num_required=state.num_required,
        num_canonical_required=len(state.qf),
        iterations=state.iterations,
        runtime_s=time.perf_counter() - t_start,
        phase_seconds=state.phase_seconds,
        counters=ctx.perf,
        status=state.status,
        trace=list(state.trace),
        warm=warm_mode,
    )
    if capture_session:
        if result.status == "ok":
            from repro.session import capture_session as _capture

            result.session = _capture(
                instance,
                result.cover,
                ctx,
                essentials=state.essential_classes,
                best=state.best,
                iterations=state.iterations,
                num_canonical_required=len(state.qf),
            )
        else:
            # Sessions only ever seed from converged runs; a degraded
            # cover would poison the identical-mode short-circuit.
            ctx.trace.append(f"session-capture-skipped:{result.status}")
            result.trace.append(f"session-capture-skipped:{result.status}")
    return result


def _warm_identical_result(
    instance: HazardFreeInstance,
    session,
    plan,
    warm_reason: str,
    t_start: float,
    warm_plan_seconds: float,
    capture_session: bool,
) -> HFResult:
    """Identical-mode short-circuit: the session cover *is* the cold cover.

    The planner already re-verified it hazard-free against the live
    instance (Theorem 2.11) — the derived-set signatures are equal, so a
    cold run would be handed bit-for-bit identical inputs and, being
    deterministic, return this very cover.  Runs without an
    :class:`~repro.hf.context.HFContext`: none of its precomputation is
    consumed on this path.
    """
    perf = PerfCounters()
    perf.warm_cubes_reverified += plan.cubes_reverified
    cover = Cover(instance.n_inputs, (), instance.n_outputs)
    seen = set()
    for c in plan.seed:
        key = (c.inbits, c.outbits)
        if key not in seen:
            seen.add(key)
            cover.append(c)
    tracer = current_tracer()
    if tracer is not None:
        root = tracer.start(
            f"run:{instance.name}",
            n_inputs=instance.n_inputs,
            n_outputs=instance.n_outputs,
            warm="identical",
        )
        tracer.unwind(root, status="ok", cover_size=len(cover))
    result = HFResult(
        cover=cover,
        essentials=session.essential_cubes(),
        num_required=len(instance.required_cubes()),
        num_canonical_required=session.num_canonical_required,
        iterations=session.iterations,
        runtime_s=time.perf_counter() - t_start,
        phase_seconds={"warm_plan": warm_plan_seconds},
        counters=perf,
        status="ok",
        trace=[f"warm:identical{warm_reason}"],
        warm="identical",
    )
    if capture_session:
        # The incoming session is exactly what a fresh capture would
        # produce for this instance (its caches are a superset), so it is
        # reused as-is and chains keep working.
        result.session = session
    return result


def espresso_hf_per_output(
    instance: HazardFreeInstance, options: Optional[EspressoHFOptions] = None
) -> HFResult:
    """Single-output mode: minimize every output independently.

    The paper's algorithm is natively multi-output (one cube may serve
    several outputs); this mode runs it once per output and merges cubes
    with identical input parts afterwards.  It is the right choice when
    outputs are implemented as separate PLAs, and it serves as the baseline
    for measuring the benefit of multi-output sharing
    (``benchmarks/test_output_sharing.py``).

    With ``options.jobs > 1`` the independent sub-runs execute in parallel
    worker processes on the guard runner
    (:func:`repro.guard.runner.run_pool`); results merge identically to
    the serial sweep.  A budget then applies *per worker* (each process
    rebuilds the budget from its configuration; a wall-clock cap bounds
    each concurrently-running sub-run).  In serial mode a budget on the
    options is shared statefully across the per-output sub-runs — one
    deadline for the whole call.  Either way the merged result's
    ``status`` is the worst of the sub-run statuses.
    """
    options = options or EspressoHFOptions()
    t_start = time.perf_counter()
    jobs = max(1, int(options.jobs or 1))
    tracer = current_tracer()
    root = None
    if tracer is not None:
        # One sweep-level span; serial sub-runs nest their own run spans
        # under it, parallel workers' spans are adopted under it below.
        root = tracer.start(
            f"per_output:{instance.name}",
            n_outputs=instance.n_outputs,
            jobs=jobs,
        )
    try:
        if jobs > 1 and instance.n_outputs > 1:
            results = _per_output_results_parallel(instance, options, jobs)
        else:
            results = [
                espresso_hf(instance.restrict_to_output(j), options)
                for j in range(instance.n_outputs)
            ]
    finally:
        if tracer is not None:
            tracer.unwind(root)
    return merge_output_results(instance, results, t_start=t_start)


def merge_output_results(
    instance: HazardFreeInstance,
    results: Sequence[HFResult],
    t_start: Optional[float] = None,
) -> HFResult:
    """Merge per-output sub-run results into one multi-output result.

    Cubes with identical input parts are merged across outputs; statuses
    merge worst-of (``ok`` < ``degraded`` < ``budget_exceeded``); counters,
    phase timings, iteration counts, and problem sizes are summed; trace
    lines are prefixed with their output index.  Used by both the serial
    and the parallel per-output sweep, so the two modes are
    merge-identical by construction.
    """
    merged = {}
    essentials: List[Cube] = []
    num_required = 0
    num_canonical = 0
    iterations = 0
    phases: dict = {}
    counters = PerfCounters()
    status = "ok"
    trace: List[str] = []
    for j, result in enumerate(results):
        num_required += result.num_required
        num_canonical += result.num_canonical_required
        iterations += result.iterations
        for phase, seconds in result.phase_seconds.items():
            phases[phase] = phases.get(phase, 0.0) + seconds
        counters.merge(result.counters)
        if _STATUS_RANK[result.status] > _STATUS_RANK[status]:
            status = result.status
        trace.extend(f"out{j}/{line}" for line in result.trace)
        essentials.extend(
            Cube(instance.n_inputs, e.inbits, 1 << j, instance.n_outputs)
            for e in result.essentials
        )
        for c in result.cover:
            merged[c.inbits] = merged.get(c.inbits, 0) | (1 << j)
    cover = Cover(instance.n_inputs, (), instance.n_outputs)
    for inbits, outbits in sorted(merged.items()):
        cover.append(Cube(instance.n_inputs, inbits, outbits, instance.n_outputs))
    runtime = time.perf_counter() - t_start if t_start is not None else 0.0
    return HFResult(
        cover=cover,
        essentials=essentials,
        num_required=num_required,
        num_canonical_required=num_canonical,
        iterations=iterations,
        runtime_s=runtime,
        phase_seconds=phases,
        counters=counters,
        status=status,
        trace=trace,
    )


def _per_output_results_parallel(
    instance: HazardFreeInstance, options: EspressoHFOptions, jobs: int
) -> List[HFResult]:
    """Run the per-output sub-runs on the guard runner's worker pool.

    With a tracer active, each worker collects its own spans and ships
    them back on its row; they are adopted into the parent trace here —
    exactly once per worker, laned by output index (``tid``).
    """
    from repro.guard.runner import per_output_payload, run_pool
    from repro.pla.writer import format_pla

    tracer = current_tracer()
    pla_text = format_pla(instance)
    payloads = [
        per_output_payload(
            pla_text,
            instance.name,
            j,
            options,
            collect_spans=tracer is not None,
        )
        for j in range(instance.n_outputs)
    ]
    rows = run_pool(payloads, jobs=jobs)
    if tracer is not None:
        for j, row in enumerate(rows):
            tracer.adopt(row.get("spans") or [], tid=j + 1)
    return [_result_from_row(instance, row) for row in rows]


def _result_from_row(instance: HazardFreeInstance, row: dict) -> HFResult:
    """Rebuild one per-output sub-run's :class:`HFResult` from a runner row.

    Failure rows re-raise the same exception the serial sweep would have
    propagated, so the two modes are behaviour-identical at the call site.
    """
    status = row["status"]
    if status == "no_solution":
        raise NoSolutionError(row.get("error") or row.get("name", "per-output"))
    if status == "malformed":
        raise MalformedInstance(row.get("error") or row.get("name", "per-output"))
    if status == "invariant_violation":
        raise InvariantViolation(
            "final", [row.get("error") or row.get("name", "per-output")]
        )
    if status not in _STATUS_RANK:
        raise RuntimeError(
            f"per-output worker failed ({status}): {row.get('error')}"
        )
    n = instance.n_inputs
    cover = Cover(n, (), 1)
    for inbits, outbits in row["cover_cubes"]:
        cover.append(Cube(n, inbits, outbits, 1))
    return HFResult(
        cover=cover,
        essentials=[Cube(n, b, 1, 1) for b in row["essentials_inbits"]],
        num_required=row["num_required"],
        num_canonical_required=row["num_canonical_required"],
        iterations=row["iterations"],
        runtime_s=row.get("time_s", 0.0),
        phase_seconds=dict(row.get("phase_seconds", {})),
        counters=PerfCounters.from_dict(row.get("counters", {})),
        status=status,
        trace=list(row.get("trace", [])),
    )
