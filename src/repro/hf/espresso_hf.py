"""The Espresso-HF driver (paper Figure 2).

::

    Espresso-HF(f, T):
        Q  = required cubes, P = privileged cubes, R = OFF-set
        Qf = { supercube_dhf(q) | q in Q }        # dhf-canonicalization
        if undefined in Qf: no solution            # Theorem 4.1
        Qf = SCC-minimize(Qf)
        F  = Qf
        (F, E) = expand_and_compute_essentials(F)
        remove required cubes covered by E; F = F - E
        F = irredundant(F)
        do: s2 = |F|
            do: s1 = |F|
                F = reduce(F); F = expand(F); F = irredundant(F)
            while |F| < s1
            F = last_gasp(F)
        while |F| < s2
        F = F ∪ E
        F = make_dhf_prime(F)

The minimizer is heuristic *only in cover cardinality*: the result is always
a hazard-free cover (checked by the Theorem 2.11 verifier in the tests).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from repro.cubes.cube import Cube
from repro.cubes.cover import Cover
from repro.hazards.instance import HazardFreeInstance
from repro.hf.context import HFContext, TaggedRequired
from repro.hf.essentials import compute_essentials
from repro.hf.expand import expand_cover
from repro.hf.irredundant import irredundant_cover
from repro.hf.lastgasp import last_gasp
from repro.hf.make_prime import make_cover_dhf_prime
from repro.hf.reduce_ import reduce_cover
from repro.hf.result import HFResult
from repro.perf import PerfCounters


class NoSolutionError(RuntimeError):
    """Raised when the instance admits no hazard-free cover (Theorem 4.1)."""


@dataclass
class EspressoHFOptions:
    """Tuning knobs for Espresso-HF.

    ``exact_irredundant`` selects MINCOV's branch-and-bound inside
    IRREDUNDANT (the paper notes either mode works; the tables are small
    because rows are required cubes, not minterms).  ``make_prime`` controls
    the final MAKE_DHF_PRIME pass.
    """

    use_essentials: bool = True
    use_last_gasp: bool = True
    make_prime: bool = True
    exact_irredundant: bool = True
    irredundant_node_limit: Optional[int] = 200_000
    max_outer_iterations: int = 20


def espresso_hf(
    instance: HazardFreeInstance, options: Optional[EspressoHFOptions] = None
) -> HFResult:
    """Minimize a hazard-free instance heuristically (the paper's algorithm).

    Raises :class:`NoSolutionError` when no hazard-free cover exists.
    """
    options = options or EspressoHFOptions()
    t_start = time.perf_counter()
    phases = {}
    ctx = HFContext(instance)

    t0 = time.perf_counter()
    qf = ctx.canonical_required()
    phases["canonicalize"] = time.perf_counter() - t0
    if qf is None:
        raise NoSolutionError(
            f"{instance.name}: some required cube has no dhf-supercube "
            "(Theorem 4.1: no hazard-free cover exists)"
        )
    num_required = len(instance.required_cubes())

    if not qf:
        return HFResult(
            cover=Cover(ctx.n_inputs, (), ctx.n_outputs),
            num_required=num_required,
            num_canonical_required=0,
            runtime_s=time.perf_counter() - t_start,
            phase_seconds=phases,
            counters=ctx.perf,
        )

    t0 = time.perf_counter()
    essentials: List[Cube] = []
    remaining: List[TaggedRequired] = list(qf)
    if options.use_essentials:
        essentials, remaining = compute_essentials(ctx, qf)
    phases["essentials"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    iterations = 0
    f: List[Cube] = [ctx.cube_for(q) for q in remaining]
    if f:
        f = expand_cover(f, remaining, ctx)
        f = irredundant_cover(
            f,
            remaining,
            ctx,
            exact=options.exact_irredundant,
            node_limit=options.irredundant_node_limit,
        )
        for _ in range(options.max_outer_iterations):
            size_outer = len(f)
            while True:
                size_inner = len(f)
                f = reduce_cover(f, remaining, ctx)
                f = expand_cover(f, remaining, ctx)
                f = irredundant_cover(
                    f,
                    remaining,
                    ctx,
                    exact=options.exact_irredundant,
                    node_limit=options.irredundant_node_limit,
                )
                iterations += 1
                if len(f) >= size_inner:
                    break
            if options.use_last_gasp:
                f = last_gasp(
                    f,
                    remaining,
                    ctx,
                    exact=options.exact_irredundant,
                    node_limit=options.irredundant_node_limit,
                )
            if len(f) >= size_outer:
                break
    phases["loop"] = time.perf_counter() - t0

    f = f + essentials
    t0 = time.perf_counter()
    if options.make_prime:
        f = make_cover_dhf_prime(f, ctx)
        # Expansion to dhf-primes can (rarely) make another cube redundant;
        # a final required-cube IRREDUNDANT pass over the full canonical set
        # restores irredundancy and can only shrink the cover.
        f = irredundant_cover(
            f,
            qf,
            ctx,
            exact=options.exact_irredundant,
            node_limit=options.irredundant_node_limit,
        )
    phases["make_prime"] = time.perf_counter() - t0

    cover = Cover(ctx.n_inputs, (), ctx.n_outputs)
    seen = set()
    for c in f:
        key = (c.inbits, c.outbits)
        if key not in seen:
            seen.add(key)
            cover.append(c)
    return HFResult(
        cover=cover,
        essentials=essentials,
        num_required=num_required,
        num_canonical_required=len(qf),
        iterations=iterations,
        runtime_s=time.perf_counter() - t_start,
        phase_seconds=phases,
        counters=ctx.perf,
    )


def espresso_hf_per_output(
    instance: HazardFreeInstance, options: Optional[EspressoHFOptions] = None
) -> HFResult:
    """Single-output mode: minimize every output independently.

    The paper's algorithm is natively multi-output (one cube may serve
    several outputs); this mode runs it once per output and merges cubes
    with identical input parts afterwards.  It is the right choice when
    outputs are implemented as separate PLAs, and it serves as the baseline
    for measuring the benefit of multi-output sharing
    (``benchmarks/test_output_sharing.py``).
    """
    t_start = time.perf_counter()
    merged = {}
    essentials: List[Cube] = []
    num_required = 0
    num_canonical = 0
    iterations = 0
    phases: dict = {}
    counters = PerfCounters()
    for j in range(instance.n_outputs):
        sub = instance.restrict_to_output(j)
        result = espresso_hf(sub, options)
        num_required += result.num_required
        num_canonical += result.num_canonical_required
        iterations += result.iterations
        for phase, seconds in result.phase_seconds.items():
            phases[phase] = phases.get(phase, 0.0) + seconds
        counters.merge(result.counters)
        essentials.extend(
            Cube(instance.n_inputs, e.inbits, 1 << j, instance.n_outputs)
            for e in result.essentials
        )
        for c in result.cover:
            merged[c.inbits] = merged.get(c.inbits, 0) | (1 << j)
    cover = Cover(instance.n_inputs, (), instance.n_outputs)
    for inbits, outbits in sorted(merged.items()):
        cover.append(Cube(instance.n_inputs, inbits, outbits, instance.n_outputs))
    return HFResult(
        cover=cover,
        essentials=essentials,
        num_required=num_required,
        num_canonical_required=num_canonical,
        iterations=iterations,
        runtime_s=time.perf_counter() - t_start,
        phase_seconds=phases,
        counters=counters,
    )
