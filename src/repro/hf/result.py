"""Result object returned by :func:`repro.hf.espresso_hf`."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.cubes.cube import Cube
from repro.cubes.cover import Cover
from repro.perf import PerfCounters


@dataclass
class HFResult:
    """Outcome of one Espresso-HF run.

    Attributes
    ----------
    cover:
        The hazard-free cover (multi-output; cubes carry output sets).
    essentials:
        Representative cubes of the essential equivalence classes found.
    num_required / num_canonical_required:
        Sizes of ``Q`` and ``Q_f`` (after SCC minimization) — the paper's
        problem-size measures.
    iterations:
        Number of inner REDUCE/EXPAND/IRREDUNDANT iterations executed.
    runtime_s:
        Wall-clock seconds of the whole run.
    phase_seconds:
        Wall-clock breakdown per phase (canonicalize / essentials / loop /
        make_prime).
    counters:
        Operator-level performance counters collected by the run's
        :class:`~repro.hf.context.HFContext` — supercube memo hit rates,
        expansion probes, MINCOV problem sizes, and per-operator wall time
        (see :class:`repro.perf.PerfCounters`).
    """

    cover: Cover
    essentials: List[Cube] = field(default_factory=list)
    num_required: int = 0
    num_canonical_required: int = 0
    iterations: int = 0
    runtime_s: float = 0.0
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    counters: PerfCounters = field(default_factory=PerfCounters)

    @property
    def num_cubes(self) -> int:
        """Cover cardinality (the paper's cost function)."""
        return len(self.cover)

    @property
    def num_literals(self) -> int:
        """Total input literals (secondary cost; MAKE_DHF_PRIME reduces it)."""
        return self.cover.num_literals()

    @property
    def num_essential_classes(self) -> int:
        return len(self.essentials)

    def summary(self) -> str:
        """One-line human-readable result summary."""
        return (
            f"{self.num_cubes} cubes ({self.num_essential_classes} essential "
            f"classes, {self.num_canonical_required} canonical required cubes, "
            f"{self.runtime_s:.2f}s)"
        )
