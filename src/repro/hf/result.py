"""Result object returned by :func:`repro.hf.espresso_hf`."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cubes.cube import Cube
from repro.cubes.cover import Cover
from repro.perf import PerfCounters


@dataclass
class HFResult:
    """Outcome of one Espresso-HF run.

    Attributes
    ----------
    cover:
        The hazard-free cover (multi-output; cubes carry output sets).
    essentials:
        Representative cubes of the essential equivalence classes found.
    num_required / num_canonical_required:
        Sizes of ``Q`` and ``Q_f`` (after SCC minimization) — the paper's
        problem-size measures.
    iterations:
        Number of inner REDUCE/EXPAND/IRREDUNDANT iterations executed.
    runtime_s:
        Wall-clock seconds of the whole run.
    phase_seconds:
        Wall-clock breakdown per phase (canonicalize / essentials / loop /
        make_prime).
    counters:
        Operator-level performance counters collected by the run's
        :class:`~repro.hf.context.HFContext` — supercube memo hit rates,
        expansion probes, MINCOV problem sizes, and per-operator wall time
        (see :class:`repro.perf.PerfCounters`).
    status:
        Outcome classification of the run:

        ``"ok"``
            the loop converged normally;
        ``"degraded"``
            the outer loop hit ``max_outer_iterations`` before converging —
            the cover is valid and verified-equivalent to any other result,
            but may be larger than a converged run would produce;
        ``"budget_exceeded"``
            a :class:`~repro.guard.budget.RunBudget` ran out mid-run and
            the best phase-boundary snapshot was returned.

        Every status yields a *valid hazard-free cover* (Theorem 2.11);
        status is about optimality, never about correctness.
    trace:
        Phase trace: one line per phase boundary (``"expand:|F|=12"``) and
        per guard event (budget exhaustion, scalar fallback), in execution
        order.  Serialized into repro bundles on failure.
    warm:
        Warm-start mode of the run when ``espresso_hf(warm_start=...)``
        was used: ``"identical"`` (session cover returned after
        re-verification), ``"warm"`` (memo-seeded run), or ``"cold"``
        (fallback — the session was unusable).  ``None`` on runs that
        never saw a session.
    session:
        The captured :class:`repro.session.MinimizationSession` when the
        caller asked for one (``capture_session=True``); ``None``
        otherwise.  Typed loosely to keep this module free of a session
        dependency.
    """

    cover: Cover
    essentials: List[Cube] = field(default_factory=list)
    num_required: int = 0
    num_canonical_required: int = 0
    iterations: int = 0
    runtime_s: float = 0.0
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    counters: PerfCounters = field(default_factory=PerfCounters)
    status: str = "ok"
    trace: List[str] = field(default_factory=list)
    warm: Optional[str] = None
    session: Optional[object] = None

    @property
    def num_cubes(self) -> int:
        """Cover cardinality (the paper's cost function)."""
        return len(self.cover)

    @property
    def num_literals(self) -> int:
        """Total input literals (secondary cost; MAKE_DHF_PRIME reduces it)."""
        return self.cover.num_literals()

    @property
    def num_essential_classes(self) -> int:
        return len(self.essentials)

    @property
    def converged(self) -> bool:
        """True iff the run completed without degradation."""
        return self.status == "ok"

    def summary(self) -> str:
        """One-line human-readable result summary."""
        tag = "" if self.status == "ok" else f", {self.status.upper()}"
        return (
            f"{self.num_cubes} cubes ({self.num_essential_classes} essential "
            f"classes, {self.num_canonical_required} canonical required cubes, "
            f"{self.runtime_s:.2f}s{tag})"
        )
