"""Required-cube based LAST_GASP (paper §3.7).

After the inner loop converges, each cube is *independently* reduced to the
smallest dhf-implicant containing the required cubes no other cube covers;
if the dhf-supercube of two such reductions is defined it is a candidate
replacement covering both, and IRREDUNDANT decides whether the enlarged
cube pool admits a smaller cover.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cubes.cube import Cube
from repro.hf.context import HFContext, TaggedRequired
from repro.hf.irredundant import irredundant_cover
from repro.hf.reduce_ import _coverage_counts


def last_gasp(
    cubes: List[Cube],
    reqs: Sequence[TaggedRequired],
    ctx: HFContext,
    exact: bool = True,
    node_limit: Optional[int] = None,
) -> List[Cube]:
    """One attempt to escape a local minimum; returns a cover no larger."""
    counts = _coverage_counts(cubes, reqs, ctx)
    reduced: List[Cube] = []
    for cube in cubes:
        unique = [
            q for q in reqs if ctx.covers(cube, q) and counts[q.key()] == 1
        ]
        if not unique:
            continue
        outbits = 0
        for q in unique:
            outbits |= 1 << q.output
        sup_in = ctx.supercube_dhf([q.canonical for q in unique], outbits)
        assert sup_in is not None
        reduced.append(Cube(ctx.n_inputs, sup_in.inbits, outbits, ctx.n_outputs))
    candidates: List[Cube] = []
    for i in range(len(reduced)):
        for j in range(i + 1, len(reduced)):
            outbits = reduced[i].outbits | reduced[j].outbits
            sup_in = ctx.supercube_dhf([reduced[i], reduced[j]], outbits)
            if sup_in is not None:
                candidates.append(
                    Cube(ctx.n_inputs, sup_in.inbits, outbits, ctx.n_outputs)
                )
    if not candidates:
        return cubes
    pool = list(cubes)
    seen = {(c.inbits, c.outbits) for c in pool}
    for c in candidates:
        key = (c.inbits, c.outbits)
        if key not in seen:
            seen.add(key)
            pool.append(c)
    trial = irredundant_cover(pool, reqs, ctx, exact=exact, node_limit=node_limit)
    return trial if len(trial) < len(cubes) else cubes
