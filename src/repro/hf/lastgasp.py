"""Required-cube based LAST_GASP (paper §3.7).

After the inner loop converges, each cube is *independently* reduced to the
smallest dhf-implicant containing the required cubes no other cube covers;
if the dhf-supercube of two such reductions is defined it is a candidate
replacement covering both, and IRREDUNDANT decides whether the enlarged
cube pool admits a smaller cover.

Uniqueness bookkeeping uses the coverage-bitset engine (per-cube
``covered_bits`` masks and universe-index counts) like REDUCE does.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cubes.cube import Cube
from repro.hf.context import HFContext, TaggedRequired
from repro.hf.irredundant import irredundant_cover
from repro.hf.reduce_ import _coverage_counts


def last_gasp(
    cubes: List[Cube],
    reqs: Sequence[TaggedRequired],
    ctx: HFContext,
    exact: bool = True,
    node_limit: Optional[int] = None,
) -> List[Cube]:
    """One attempt to escape a local minimum; returns a cover no larger."""
    with ctx.perf.op_timer("last_gasp"):
        cov = ctx.coverage
        positions = cov.positions(reqs)
        sel = cov.selection_mask(reqs)
        req_at = {pos: q for pos, q in zip(positions, reqs)}
        masks = [cov.covered_bits(c.inbits, c.outbits) & sel for c in cubes]
        counts = _coverage_counts(masks, positions)
        reduced: List[Cube] = []
        for mask in masks:
            r_bits = 0
            outbits = 0
            m = mask
            while m:
                low = m & -m
                pos = low.bit_length() - 1
                if counts[pos] == 1:
                    q = req_at[pos]
                    r_bits |= q.canonical.inbits
                    outbits |= 1 << q.output
                m ^= low
            if not outbits:
                continue
            sup_in = ctx.supercube_dhf_bits(r_bits, outbits)
            assert sup_in is not None
            reduced.append(Cube(ctx.n_inputs, sup_in, outbits, ctx.n_outputs))
        candidates: List[Cube] = []
        for i in range(len(reduced)):
            ctx.checkpoint("last_gasp")
            for j in range(i + 1, len(reduced)):
                outbits = reduced[i].outbits | reduced[j].outbits
                sup_in = ctx.supercube_dhf_bits(
                    reduced[i].inbits | reduced[j].inbits, outbits
                )
                if sup_in is not None:
                    candidates.append(
                        Cube(ctx.n_inputs, sup_in, outbits, ctx.n_outputs)
                    )
        if not candidates:
            return cubes
        pool = list(cubes)
        seen = {(c.inbits, c.outbits) for c in pool}
        for c in candidates:
            key = (c.inbits, c.outbits)
            if key not in seen:
                seen.add(key)
                pool.append(c)
        trial = irredundant_cover(
            pool, reqs, ctx, exact=exact, node_limit=node_limit
        )
        return trial if len(trial) < len(cubes) else cubes


class LastGaspPass:
    """LAST_GASP as a pipeline pass (see :mod:`repro.pipeline`)."""

    name = "last_gasp"

    def run(self, state):
        options = state.options
        state.f = last_gasp(
            state.f,
            state.remaining,
            state.ctx,
            exact=options.exact_irredundant,
            node_limit=options.irredundant_node_limit,
        )
        return state
