"""Reference essentials computation (pre-batched-engine algorithm).

This is the straightforward scan-everything fixpoint that
:mod:`repro.hf.essentials` replaced with the batched escape-row engine.
It is kept verbatim as a differential oracle: the batched engine must
produce identical ``(essentials, remaining)`` on every instance
(``tests/test_essentials_batched.py`` pins this on the golden suite and
on random instances).  Nothing in the pipeline imports this module — it
exists only for tests, and for bisecting should the engines ever
diverge.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.cubes.cube import Cube
from repro.hf.context import _MISSING, HFContext, TaggedRequired
from repro.hf.expand import expand_toward_required, required_candidates


def compute_essentials_reference(
    ctx: HFContext, reqs: Sequence[TaggedRequired]
) -> Tuple[List[Cube], List[TaggedRequired]]:
    """Identify essential equivalence classes (reference oracle).

    Same contract as :func:`repro.hf.essentials.compute_essentials`:
    returns ``(essential_cubes, remaining_required)``.
    """
    with ctx.perf.op_timer("essentials"):
        cov = ctx.coverage
        cov.register(reqs)
        positions = cov.positions(reqs)
        req_at = {pos: q for pos, q in zip(positions, reqs)}
        pair_at = {
            pos: (q.canonical.inbits, 1 << q.output)
            for pos, q in zip(positions, reqs)
        }
        # Universe positions per output bit: same-output partners are
        # probed first below (their pair shares one OFF set, so escapes
        # are found cheaply and cross-output fixpoint environments are
        # often never built at all).
        out_pos = {}
        for pos, q in zip(positions, reqs):
            ob = 1 << q.output
            out_pos[ob] = out_pos.get(ob, 0) | (1 << pos)
        sel = cov.selection_mask(reqs)
        candidates = required_candidates(reqs, ctx)
        essentials: List[Cube] = []
        # A seed's greedy expansion depends only on (seed, remaining set),
        # identified by (universe position, selection mask).  The memo makes
        # the fixpoint's final no-progress pass (which re-expands every
        # seed) free.
        expand_memo = {}
        esc_known = {}  # universe pos -> partner bits already probed
        esc_pair = {}  # universe pos -> probed partners with a defined pair
        scache = ctx._supercube_cache
        supercube = ctx.supercube_dhf_bits
        perf = ctx.perf
        progress = True
        while progress:
            progress = False
            snapshot = sel
            m = snapshot
            while m:
                low = m & -m
                m ^= low
                if not (sel & low):
                    continue  # covered by an essential earlier this pass
                ctx.checkpoint("essentials")
                pos = low.bit_length() - 1
                memo_key = (pos, sel)
                p = expand_memo.get(memo_key)
                if p is None:
                    p = expand_toward_required(
                        ctx.cube_for(req_at[pos]), reqs, ctx, sel, candidates
                    )
                    expand_memo[memo_key] = p
                covered_mask = cov.covered_bits(p.inbits, p.outbits) & sel
                outside = sel & ~covered_mask
                distinguished = False
                cm = covered_mask
                while cm:
                    lowc = cm & -cm
                    cm ^= lowc
                    posc = lowc.bit_length() - 1
                    pairable = esc_pair.get(posc, 0)
                    if pairable & outside:
                        continue  # q escapes via an already-known partner
                    # Probe the not-yet-probed partners in the outside set,
                    # stopping at the first escape; verdicts accumulate
                    # across passes (they depend only on the instance).
                    known = esc_known.get(posc, 0)
                    unknown = outside & ~known
                    escaped = False
                    if unknown:
                        q = req_at[posc]
                        q_in = q.canonical.inbits
                        q_ob = 1 << q.output
                        sc_hits = 0
                        same = unknown & out_pos.get(q_ob, 0)
                        for group in (same, unknown ^ same):
                            while group:
                                lows = group & -group
                                group ^= lows
                                s_in, s_ob = pair_at[lows.bit_length() - 1]
                                r_bits = q_in | s_in
                                outbits = q_ob | s_ob
                                sup = scache.get((r_bits, outbits), _MISSING)
                                if sup is _MISSING:
                                    sup = supercube(r_bits, outbits)
                                else:
                                    sc_hits += 1
                                known |= lows
                                if sup is not None:
                                    pairable |= lows
                                    escaped = True
                                    break
                            if escaped:
                                break
                        perf.supercube_calls += sc_hits
                        perf.supercube_cache_hits += sc_hits
                        esc_known[posc] = known
                        esc_pair[posc] = pairable
                    if not escaped:
                        distinguished = True
                        break
                if distinguished:
                    essentials.append(p)
                    sel = outside
                    progress = True
        remaining = cov.covered_subset(sel, reqs)
        return essentials, remaining
