"""Required-cube based REDUCE (paper §3.5).

Espresso's REDUCE maximally shrinks each cube with the unate recursive
paradigm; that paradigm does not transfer to hazard-free covers, but the
required-cube formulation gives an efficient enumerative alternative: a
cube's reduction is the dhf-supercube of the required cubes it *uniquely*
covers.  The result is still a valid hazard-free cover after every step
(required cubes covered elsewhere may be abandoned; uniquely covered ones
are kept by construction, and the reduction of a dhf-implicant through
``supercube_dhf`` stays inside it, hence stays OFF-free and legal).

Coverage bookkeeping runs on the bitset engine: per-cube ``covered_bits``
masks and per-required-cube multiplicity counts, updated in place as cubes
shrink, instead of re-scanning all (cube, required-cube) pairs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.cubes.cube import Cube
from repro.hf.context import HFContext, TaggedRequired


def _coverage_counts(
    masks: Sequence[int], positions: Sequence[int]
) -> Dict[int, int]:
    """How many cover cubes cover each required cube (by universe index)."""
    counts: Dict[int, int] = {pos: 0 for pos in positions}
    for mask in masks:
        while mask:
            low = mask & -mask
            counts[low.bit_length() - 1] += 1
            mask ^= low
    return counts


def reduce_cover(
    cubes: List[Cube], reqs: Sequence[TaggedRequired], ctx: HFContext
) -> List[Cube]:
    """Maximally reduce each cube in turn (largest first).

    Cubes that uniquely cover nothing are dropped outright (they are
    redundant).  Coverage counts are updated after each reduction so later
    cubes see the already-reduced cover, as in Espresso.
    """
    with ctx.perf.op_timer("reduce"):
        cov = ctx.coverage
        positions = cov.positions(reqs)
        sel = cov.selection_mask(reqs)
        req_at = {pos: q for pos, q in zip(positions, reqs)}
        masks = [cov.covered_bits(c.inbits, c.outbits) & sel for c in cubes]
        counts = _coverage_counts(masks, positions)
        order = sorted(
            range(len(cubes)),
            key=lambda i: (-cubes[i].num_dc(), cubes[i].inbits, cubes[i].outbits),
        )
        slots: List[Cube] = list(cubes)
        kept: List[bool] = [True] * len(cubes)
        for idx in order:
            ctx.checkpoint("reduce")
            covered = masks[idx]
            unique: List[TaggedRequired] = []
            outbits = 0
            m = covered
            while m:
                low = m & -m
                pos = low.bit_length() - 1
                if counts[pos] == 1:
                    q = req_at[pos]
                    unique.append(q)
                    outbits |= 1 << q.output
                m ^= low
            if not unique:
                kept[idx] = False
                m = covered
                while m:
                    low = m & -m
                    counts[low.bit_length() - 1] -= 1
                    m ^= low
                continue
            r_bits = 0
            for q in unique:
                r_bits |= q.canonical.inbits
            sup_in = ctx.supercube_dhf_bits(r_bits, outbits)
            assert sup_in is not None, "reduction inside a dhf-implicant must exist"
            reduced = Cube(ctx.n_inputs, sup_in, outbits, ctx.n_outputs)
            slots[idx] = reduced
            reduced_mask = cov.covered_bits(sup_in, outbits) & sel
            masks[idx] = reduced_mask
            dropped = covered & ~reduced_mask
            while dropped:
                low = dropped & -dropped
                counts[low.bit_length() - 1] -= 1
                dropped ^= low
        return [c for i, c in enumerate(slots) if kept[i]]


class ReducePass:
    """REDUCE as a pipeline pass (see :mod:`repro.pipeline`)."""

    name = "reduce"

    def run(self, state):
        state.f = reduce_cover(state.f, state.remaining, state.ctx)
        return state
