"""Required-cube based REDUCE (paper §3.5).

Espresso's REDUCE maximally shrinks each cube with the unate recursive
paradigm; that paradigm does not transfer to hazard-free covers, but the
required-cube formulation gives an efficient enumerative alternative: a
cube's reduction is the dhf-supercube of the required cubes it *uniquely*
covers.  The result is still a valid hazard-free cover after every step
(required cubes covered elsewhere may be abandoned; uniquely covered ones
are kept by construction, and the reduction of a dhf-implicant through
``supercube_dhf`` stays inside it, hence stays OFF-free and legal).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.cubes.cube import Cube
from repro.hf.context import HFContext, TaggedRequired


def _coverage_counts(
    cubes: Sequence[Cube], reqs: Sequence[TaggedRequired], ctx: HFContext
) -> Dict[Tuple[int, int], int]:
    counts: Dict[Tuple[int, int], int] = {q.key(): 0 for q in reqs}
    for c in cubes:
        for q in reqs:
            if ctx.covers(c, q):
                counts[q.key()] += 1
    return counts


def reduce_cover(
    cubes: List[Cube], reqs: Sequence[TaggedRequired], ctx: HFContext
) -> List[Cube]:
    """Maximally reduce each cube in turn (largest first).

    Cubes that uniquely cover nothing are dropped outright (they are
    redundant).  Coverage counts are updated after each reduction so later
    cubes see the already-reduced cover, as in Espresso.
    """
    counts = _coverage_counts(cubes, reqs, ctx)
    order = sorted(
        range(len(cubes)),
        key=lambda i: (-cubes[i].num_dc(), cubes[i].inbits, cubes[i].outbits),
    )
    slots: List[Cube] = list(cubes)
    kept: List[bool] = [True] * len(cubes)
    for idx in order:
        cube = slots[idx]
        covered = [q for q in reqs if ctx.covers(cube, q)]
        unique = [q for q in covered if counts[q.key()] == 1]
        if not unique:
            kept[idx] = False
            for q in covered:
                counts[q.key()] -= 1
            continue
        outbits = 0
        for q in unique:
            outbits |= 1 << q.output
        sup_in = ctx.supercube_dhf([q.canonical for q in unique], outbits)
        assert sup_in is not None, "reduction inside a dhf-implicant must exist"
        reduced = Cube(ctx.n_inputs, sup_in.inbits, outbits, ctx.n_outputs)
        slots[idx] = reduced
        for q in covered:
            if not ctx.covers(reduced, q):
                counts[q.key()] -= 1
    return [c for i, c in enumerate(slots) if kept[i]]
