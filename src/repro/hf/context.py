"""Shared state for one Espresso-HF run.

The :class:`HFContext` precomputes, from a :class:`HazardFreeInstance`, the
objects every operator needs — per-output privileged cubes and OFF covers —
and provides the multi-output generalization of ``supercube_dhf``: a cover
cube participating in output set ``O`` must be a dhf-implicant with respect
to *every* output in ``O``, so forced expansions chain across the privileged
cubes of all of them and the result must clear every OFF-set in ``O``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cubes.cube import Cube
from repro.cubes.cover import Cover
from repro.guard.budget import RunBudget
from repro.hazards.instance import HazardFreeInstance, PrivilegedCube
from repro.hf.coverage import CoverageIndex, SwarBlockMap
from repro.perf import PerfCounters
from repro._compat import popcount

#: cache sentinel distinguishing "not computed" from a computed ``None``
_MISSING = object()


def _maximal_off_bits(bits: List[int]) -> List[int]:
    """Drop OFF cubes contained in another cube of the same list.

    In the 2-bits-per-variable encoding ``o1 ⊆ o2`` iff
    ``o1 & o2 == o1``; a contained cube intersects ``r`` only when its
    container does, so it never decides an intersects-OFF test.  Exact
    duplicates keep their first occurrence.  Scanning widest-first means
    a kept cube can never be contained in a later one, so one pass
    against the kept list suffices.
    """
    order = sorted(range(len(bits)), key=lambda i: -popcount(bits[i]))
    kept_ranks: List[int] = []
    kept: List[int] = []
    for i in order:
        o = bits[i]
        if any(o & k == o for k in kept):
            continue
        kept_ranks.append(i)
        kept.append(o)
    kept_ranks.sort()
    return [bits[i] for i in kept_ranks]


@dataclass(frozen=True)
class TaggedRequired:
    """A canonical required cube: input part plus the output it belongs to.

    ``canonical`` is ``supercube_dhf({original})`` — the unique smallest
    dhf-implicant containing the original required cube (paper §3.2).  A
    dhf-implicant contains the original iff it contains the canonical cube,
    so all covering bookkeeping uses ``canonical``.
    """

    canonical: Cube  # input part, single-output encoding
    output: int
    original: Cube

    def key(self) -> Tuple[int, int]:
        return (self.canonical.inbits, self.output)

    def __str__(self) -> str:
        return f"{self.canonical.input_string()}@out{self.output}"


class HFContext:
    """Precomputed per-run state: privileged cubes, OFF covers, helpers.

    ``supercube_dhf`` is the inner loop of every operator, so it works on
    raw bitmasks and is memoized: for a fixed instance the result depends
    only on the supercube's input bits and the output set.
    """

    def __init__(
        self,
        instance: HazardFreeInstance,
        perf: Optional[PerfCounters] = None,
        budget: Optional[RunBudget] = None,
        checked: bool = False,
    ):
        self.instance = instance
        self.n_inputs = instance.n_inputs
        self.n_outputs = instance.n_outputs
        self.perf = perf if perf is not None else PerfCounters()
        #: cooperative run budget (None = uncapped); see repro.guard.budget
        self.budget = budget
        #: checked mode: phase-boundary invariant checkpoints are active
        self.checked = checked
        #: phase trace: one line per phase boundary / guard event, in order
        self.trace: List[str] = []
        self.coverage = CoverageIndex(self.n_outputs, self.perf)
        self.priv_by_output: List[List[PrivilegedCube]] = [
            instance.privileged_for_output(j) for j in range(self.n_outputs)
        ]
        self.off_by_output: List[Cover] = [
            instance.off_for_output(j) for j in range(self.n_outputs)
        ]
        from repro.cubes.cube import mask01

        self._mask01 = mask01(self.n_inputs)
        # Raw (cube bits, start bits) pairs per output, and OFF bits.
        self._priv_bits_by_output = [
            [(p.cube.inbits, p.start.inbits) for p in privs]
            for privs in self.priv_by_output
        ]
        m01 = self._mask01
        # Per-output OFF bits, degenerate cubes dropped, then reduced to
        # the maximal cubes: every consumer only ever asks "does r
        # intersect the OFF union", and a cube contained in another
        # (o1 & o2 == o1) cannot flip that test on its own — dropping it
        # leaves the union (hence every verdict) unchanged while
        # shrinking every SWAR concatenation and scalar scan.  10-36%
        # of OFF cubes are redundant on the benchmark suite.
        self._off_bits_by_output = [
            _maximal_off_bits(
                [
                    o.inbits
                    for o in off
                    if not (~(o.inbits | (o.inbits >> 1)) & m01)
                ]
            )
            for off in self.off_by_output
        ]
        self._priv_bits_cache: Dict[int, List[Tuple[int, int]]] = {}
        self._off_bits_cache: Dict[int, List[int]] = {}
        self._rep_env_cache: Dict[int, tuple] = {}
        #: escape rows (universe pos -> partner mask) built by
        #: :meth:`escape_filter_rows`; instance-lifetime, like the
        #: supercube memo — EXPAND reuses them to skip pair-infeasible
        #: probes long after ESSENTIALS built them
        self._escape_rows: Dict[int, int] = {}
        #: selection mask of the positions covered by ``_escape_rows``
        self._escape_rows_sel = 0
        self._supercube_cache: Dict[Tuple[int, int], Optional[int]] = {}
        #: outbits -> SWAR environment for the supercube fixpoint loop
        self._outbits_env_cache: Dict[int, tuple] = {}
        self._output_swar_cache: Dict[int, tuple] = {}
        self._output_unions: Dict[int, Tuple[int, int]] = {}
        self._rep_cache: Dict[int, int] = {}
        #: SWAR block width: the input part plus one always-zero spare bit,
        #: so per-block values stay below the high (zero-flag) bit.
        self._block_width = 2 * self.n_inputs + 1

    # ------------------------------------------------------------------
    # Guarded execution hooks
    # ------------------------------------------------------------------

    def checkpoint(self, phase: str = "") -> None:
        """Cooperative budget checkpoint, called by the operators per cube.

        A no-op without a budget; with one, raises
        :class:`~repro.guard.errors.BudgetExceeded` once a cap is blown.
        The driver catches it at the phase boundary and degrades to the
        best cover built so far.
        """
        if self.budget is not None:
            self.budget.checkpoint(phase)

    def record_phase(self, name: str, cover_size: int) -> None:
        """Append one phase-boundary line to the run trace."""
        self.trace.append(f"{name}:|F|={cover_size}")

    def activate_scalar_fallback(self, phase: str = "") -> None:
        """Degrade coverage queries to the scalar path (checked mode).

        Called by :func:`repro.guard.invariants.check_phase` when the
        scalar-vs-bitset cross-check diverges; idempotent.
        """
        if not self.coverage.scalar_mode:
            self.coverage.enter_scalar_mode()
            self.perf.scalar_fallbacks += 1
            self.trace.append(f"scalar-fallback@{phase or 'unknown'}")

    # ------------------------------------------------------------------
    # supercube_dhf over an output set
    # ------------------------------------------------------------------

    def supercube_dhf(
        self, cubes: Iterable[Cube], outbits: int
    ) -> Optional[Cube]:
        """Smallest input cube that is a dhf-implicant for every output in
        ``outbits`` and contains all of ``cubes`` — or ``None``.

        Input cubes may use any output encoding; only input parts are read.
        The result is a single-output-encoded input cube.
        """
        r_bits = 0
        for c in cubes:
            r_bits |= c.inbits
        result = self.supercube_dhf_bits(r_bits, outbits)
        if result is None:
            return None
        return Cube(self.n_inputs, result, 1, 1)

    def supercube_dhf_bits(self, r: int, outbits: int) -> Optional[int]:
        """Bitmask core of ``supercube_dhf`` (memoized).

        The fixpoint loop is SWAR-batched: all privileged cubes of the
        output set are concatenated into one big int (one block of
        ``2n + 1`` bits per cube — the spare top bit keeps the zero-block
        detector carry-free), so a whole forced-expansion pass is a handful
        of big-int operations instead of a Python scan.  Per pass:
        replicate ``r`` across blocks, AND with the concatenated cubes,
        flag the blocks whose intersection is non-empty with the carry-free
        zero-block trick ``hi & ~(t + low)``, expand those flags to block
        masks selecting the start points, and OR-fold the selected start
        bits into ``r`` in one shot.  Start points already contained in
        ``r`` are no-ops under OR, so the batch pass reaches the same
        (confluent) fixpoint as the sequential scan.  The OFF-set
        intersection check is the same one-shot pattern.

        Two further accelerations on top of the memo table:

        * a variable-support prefilter: once ``r`` is don't-care on every
          variable any privileged cube constrains, it intersects all of
          them and their start points are absorbed in one OR;
        * the forced-expansion chain is confluent, so *every* intermediate
          cube along it is cached to the same fixpoint, not just the
          endpoints.

        Two-output probes (the essentials engine's pair seeds — thousands
        of distinct pairs, each probed a handful of times) alternate the
        *per-output* closures until neither output forces growth — the
        same least fixpoint as a joint pass (the forced-expansion
        operators are monotone, so their interleaved closure is
        confluent), but only one cached environment per single output
        ever exists instead of one per distinct pair.  Wider output sets
        (growing expansion cubes, cover cubes in MAKE_DHF_PRIME) keep the
        joint environment: alternating many small closures costs more
        rounds than one wide pass, and those sets recur enough to
        amortize the build.
        """
        perf = self.perf
        perf.supercube_calls += 1
        key = (r, outbits)
        cache = self._supercube_cache
        cached = cache.get(key, _MISSING)
        if cached is not _MISSING:
            perf.supercube_cache_hits += 1
            return cached
        m01 = self._mask01
        if ~(r | (r >> 1)) & m01:
            raise ValueError("supercube_dhf of an empty cube collection")
        env_cache = self._outbits_env_cache
        low_bit = outbits & -outbits
        rest = outbits ^ low_bit
        if rest and rest & (rest - 1) == 0:
            # Exactly two outputs: per-output environments, alternated.
            envs = []
            for b in (low_bit, rest):
                env = env_cache.get(b)
                if env is None:
                    env = self._build_env(b)
                    env_cache[b] = env
                envs.append(env)
        else:
            env = env_cache.get(outbits)
            if env is None:
                env = self._build_env(outbits)
                env_cache[outbits] = env
            envs = [env]
        # Early infeasibility: the fixpoint only ever raises ``r``, so an
        # OFF-set intersection of the seed can never be repaired by growth
        # — skip the whole forced-expansion loop for such probes.
        for env in envs:
            if self._off_hit(r, env, m01):
                cache[key] = None
                return None
        chain: Optional[List[int]] = None
        if len(envs) == 1:
            r, chain = self._force_fix(r, envs[0], chain, m01)
        else:
            changed = True
            while changed:
                changed = False
                for env in envs:
                    r2, chain = self._force_fix(r, env, chain, m01)
                    if r2 != r:
                        r = r2
                        changed = True
        result: Optional[int] = r
        if chain:
            # The cube grew, so the seed's clean OFF check must be redone.
            for env in envs:
                if self._off_hit(r, env, m01):
                    result = None
                    break
        cache[key] = result
        if chain:
            for c in chain:
                chain_key = (c, outbits)
                if chain_key not in cache:
                    cache[chain_key] = result
                    perf.supercube_chain_cached += 1
        return result

    @staticmethod
    def _off_hit(r: int, env: tuple, m01: int) -> bool:
        """True iff ``r`` intersects an OFF cube of the environment."""
        swar_o = env[5]
        if swar_o is None:
            for obits in env[3]:
                meet = r & obits
                if not (~(meet | (meet >> 1)) & m01):
                    return True
            return False
        off_cat, rep_o, low_o, hi_o, m01cat_o = swar_o
        meet = r * rep_o & off_cat
        t = ~(meet | (meet >> 1)) & m01cat_o
        return bool(hi_o & ~(t + low_o))

    def _force_fix(
        self, r: int, env: tuple, chain: Optional[List[int]], m01: int
    ) -> Tuple[int, Optional[List[int]]]:
        """Forced-expansion closure of ``r`` under one environment."""
        start_union, support_union, privs, _offs, swar_p, _swar_o = env
        if swar_p is None:
            # Few privileged cubes: the plain scan beats SWAR setup costs.
            changed = True
            while changed and start_union & r != start_union:
                if support_union & ~(r & (r >> 1)) & m01 == 0:
                    r |= start_union
                    if chain is None:
                        chain = []
                    chain.append(r)
                    break
                changed = False
                for pin, sbits in privs:
                    if sbits & r == sbits:
                        continue  # start point contained: legal
                    meet = r & pin
                    if ~(meet | (meet >> 1)) & m01:
                        continue  # no intersection with the privileged cube
                    r |= sbits
                    if chain is None:
                        chain = []
                    chain.append(r)
                    changed = True
        else:
            pin_cat, sb_cat, rep_p, low_p, hi_p, m01cat_p, total_p = swar_p
            W = self._block_width
            blk0 = (1 << (W - 1)) - 1
            while start_union & r != start_union:
                if support_union & ~(r & (r >> 1)) & m01 == 0:
                    # r is DC on every constrained variable: it intersects
                    # every privileged cube, so all start points are forced.
                    r |= start_union
                    if chain is None:
                        chain = []
                    chain.append(r)
                    break
                meet = r * rep_p & pin_cat
                t = ~(meet | (meet >> 1)) & m01cat_p
                flags = hi_p & ~(t + low_p)  # high bit per intersecting block
                # Expand flags to block masks and pick those start points.
                s = sb_cat & (flags - (flags >> (W - 1)))
                sh = W
                while sh < total_p:
                    s |= s >> sh
                    sh <<= 1
                forced = s & blk0 & ~r
                if forced == 0:
                    break
                r |= forced
                if chain is None:
                    chain = []
                chain.append(r)
        return r, chain

    def supercube_dhf_many(
        self, pairs: Sequence[Tuple[int, int]]
    ) -> List[Optional[int]]:
        """Batch entry point for :meth:`supercube_dhf_bits`.

        ``pairs`` is a sequence of ``(r bits, outbits)`` probes — typically
        the outstanding partners of one escape row.  Memoized probes are
        answered immediately (counted at probe time, not lump-summed);
        the rest are grouped by output set so each group shares one
        concatenated seed-level OFF-set check.  The fixpoint only ever
        raises ``r``, so a seed that already meets an OFF cube of its
        output set can never be repaired — those probes are answered
        ``None`` (and memoized) by the SWAR pass alone, without building a
        fixpoint environment.  Only the survivors run the real
        forced-expansion fixpoint, which populates the chain cache per
        block as usual.  Results align with ``pairs``.
        """
        perf = self.perf
        cache = self._supercube_cache
        results: List[Optional[int]] = [None] * len(pairs)
        groups: Dict[int, List[int]] = {}
        for i, (r, ob) in enumerate(pairs):
            cached = cache.get((r, ob), _MISSING)
            if cached is not _MISSING:
                perf.supercube_calls += 1
                perf.supercube_cache_hits += 1
                perf.escape_probe_hits += 1
                results[i] = cached
            else:
                groups.setdefault(ob, []).append(i)
        for ob, idxs in groups.items():
            if len(idxs) > 1:
                infeasible = self._seed_infeasible_batch(
                    [pairs[i][0] for i in idxs], ob
                )
                survivors = []
                for k, i in enumerate(idxs):
                    if (infeasible >> k) & 1:
                        cache[(pairs[i][0], ob)] = None
                        perf.escape_swar_filtered += 1
                    else:
                        survivors.append(i)
            else:
                survivors = idxs
            for i in survivors:
                results[i] = self.supercube_dhf_bits(pairs[i][0], ob)
        return results

    def _seed_infeasible_batch(self, rs: Sequence[int], outbits: int) -> int:
        """Bit ``k`` set iff seed ``rs[k]`` meets an OFF cube of ``outbits``.

        One SWAR pass per OFF cube over all seeds at once: the seeds are
        concatenated block-wise, the OFF cube replicated with one multiply,
        and non-empty meets flagged carry-free.  A flagged seed's
        ``supercube_dhf_bits`` is provably ``None`` (growth never repairs
        an OFF meet), so callers can memoize without running the fixpoint.
        """
        W = self._block_width
        cat = 0
        for i, r in enumerate(rs):
            cat |= r << (W * i)
        rep, low, hi, m01cat = self._rep_env(len(rs))
        flags = 0
        for obits in self._off_bits(outbits):
            meet = cat & obits * rep
            t = ~(meet | (meet >> 1)) & m01cat
            flags |= hi & ~(t + low)
            if flags == hi:
                break
        mask = 0
        while flags:
            b = flags & -flags
            flags ^= b
            mask |= 1 << ((b.bit_length() - 1) // W)
        return mask

    def escape_filter_rows(
        self, entries: Sequence[Tuple[int, int, int]]
    ) -> Dict[int, int]:
        """Escape-row prefilter: a sound superset of pairability, in bulk.

        ``entries`` lists the required-cube universe as ``(universe
        position, canonical input bits, output index)`` triples.  The
        returned row for position ``q`` has partner bit ``s`` set iff the
        pair seed ``q ∪ s`` survives the seed-level OFF-set check of
        *both* members' outputs.  ``supercube_dhf`` of the pair is
        ``None`` whenever the seed already meets an OFF cube (the fixpoint
        only raises bits), so a cleared bit proves the pair infeasible
        without running any fixpoint; a set bit merely licenses one.

        Construction exploits that the seed-level check depends only on
        *input* parts: universe positions sharing a canonical input part
        are identical as partners, so the SWAR concatenation holds one
        block per **distinct input part** (typically 4-5x fewer blocks
        than positions), and a surviving block fans back out to its whole
        position group with one precomputed OR.  Each pass replicates the
        row cube's input bits across the group blocks with a single
        multiply and flags non-empty OFF meets carry-free; OFF cubes are
        pre-replicated once per output.  One-sided rows are further
        memoized on ``(input part, OFF-list identity)`` — outputs often
        share OFF covers, so duplicate rows are free.  The two-sided
        verdict is the row AND its transpose.  Rows depend only on the
        instance — never on the shrinking selection — so one build serves
        the whole essentials fixpoint, and they stay on the context
        afterwards for EXPAND's anchor prefilter.
        """
        perf = self.perf
        rows: Dict[int, int] = {}
        if not entries:
            return rows
        entries = sorted(entries)
        W = self._block_width
        # Partner blocks, deduped by canonical input part.
        group_of: Dict[int, int] = {}  # inbits -> block index
        group_in: List[int] = []  # block index -> inbits
        group_mask: List[int] = []  # block index -> universe-position mask
        for pos, q_in, _j in entries:
            gi = group_of.get(q_in)
            if gi is None:
                gi = len(group_in)
                group_of[q_in] = gi
                group_in.append(q_in)
                group_mask.append(0)
            group_mask[gi] |= 1 << pos
        u = len(group_in)
        rep, low, hi, m01cat = self._rep_env(u)
        cat0 = 0
        for gi, v in enumerate(group_in):
            cat0 |= v << (W * gi)
        #: output j -> ([o*rep, ...], OFF-list identity)
        off_env: Dict[int, Tuple[List[int], int]] = {}
        off_ids: Dict[Tuple[int, ...], int] = {}
        #: (inbits, OFF-list identity) -> (survivor groups, one-sided row)
        row_cache: Dict[Tuple[int, int], Tuple[int, int]] = {}
        #: (inbits, OFF-list identity) -> universe positions with that key
        key_pos: Dict[Tuple[int, int], int] = {}
        for pos, q_in, j in entries:
            env = off_env.get(j)
            if env is None:
                offs = self._off_bits_by_output[j]
                oid = off_ids.setdefault(tuple(sorted(offs)), len(off_ids))
                env = ([o * rep for o in offs], oid)
                off_env[j] = env
            reps, oid = env
            ck = (q_in, oid)
            cached = row_cache.get(ck)
            if cached is None:
                cat = cat0 | q_in * rep
                # The row's own group can never be flagged (its seed is
                # the row cube itself, an implicant of output j), so
                # "everything else flagged" is the fixpoint — stop there.
                dead = hi & ~(
                    1 << (W * group_of[q_in] + W - 1)
                )
                flags = 0
                for o_cat in reps:
                    meet = cat & o_cat
                    z = ~(meet | (meet >> 1)) & m01cat
                    flags |= hi & ~(z + low)
                    if flags == dead:
                        break
                gset = rowmask = 0
                m = hi & ~flags
                while m:
                    b = m & -m
                    m ^= b
                    gi = (b.bit_length() - 1) // W
                    gset |= 1 << gi
                    rowmask |= group_mask[gi]
                cached = (gset, rowmask)
                row_cache[ck] = cached
            key_pos[ck] = key_pos.get(ck, 0) | (1 << pos)
            rows[pos] = cached[1]
            self._escape_rows_sel |= 1 << pos
        # Two-sided refinement: the pair must also clear the partner's OFF
        # set, which is exactly "q survives in s's row".  Whether a
        # position survives in a row depends only on its *group*, so the
        # transpose collapses to one column mask per group — the union of
        # the key position masks whose survivor set contains that group —
        # and the refinement is a single AND per position.
        cols_g = [0] * u
        for ck, pmask in key_pos.items():
            gset = row_cache[ck][0]
            while gset:
                b = gset & -gset
                gset ^= b
                cols_g[b.bit_length() - 1] |= pmask
        for pos, q_in, _j in entries:
            rows[pos] &= cols_g[group_of[q_in]]
        self._escape_rows.update(rows)
        perf.escape_rows_built += len(entries)
        return rows

    #: below these list sizes a plain Python scan beats the SWAR batch
    #: (the scalar OFF check also early-exits, so its break-even is higher)
    _SWAR_MIN_PRIV = 16
    _SWAR_MIN_OFF = 16
    def _build_env(self, outbits: int) -> tuple:
        """Fixpoint environment for one output set (see supercube_dhf_bits).

        ``(start_union, support_union, privs, offs, swar_p, swar_o)``.
        Thousands of distinct output sets show up in one run, so the
        per-output concatenations are cached and an output set's
        environment is assembled with one shift-OR per *output* rather
        than per cube.  The SWAR pieces are only materialized above a size
        threshold; small lists keep ``None`` and use the scalar scan,
        whose environment is just the cached flat lists and unions.
        """
        n_priv = n_off = 0
        start_union = support_union = 0
        unions = self._output_unions
        ob = outbits
        while ob:
            b = ob & -ob
            ob ^= b
            j = b.bit_length() - 1
            n_priv += len(self._priv_bits_by_output[j])
            n_off += len(self._off_bits_by_output[j])
            cached = unions.get(j)
            if cached is None:
                m01 = self._mask01
                su = vu = 0
                for pin, sbits in self._priv_bits_by_output[j]:
                    su |= sbits
                    vu |= ~(pin & (pin >> 1)) & m01
                cached = (su, vu)
                unions[j] = cached
            start_union |= cached[0]
            support_union |= cached[1]
        swar_p = swar_o = None
        if n_priv >= self._SWAR_MIN_PRIV:
            swar_p = self._materialize_swar_priv(outbits)
        if n_off >= self._SWAR_MIN_OFF:
            swar_o = self._materialize_swar_off(outbits)
        return (
            start_union,
            support_union,
            None if swar_p is not None else self._privs_bits(outbits),
            None if swar_o is not None else self._off_bits(outbits),
            swar_p,
            swar_o,
        )

    def _materialize_swar_priv(self, outbits: int) -> tuple:
        """Concatenate the output set's privileged cubes for SWAR passes."""
        W = self._block_width
        pin_cat = sb_cat = 0
        k = 0
        for j in self._outputs(outbits):
            pc, sc, kp, _oc, _ko = self._output_swar(j)
            pin_cat |= pc << (W * k)
            sb_cat |= sc << (W * k)
            k += kp
        rep_p, low_p, hi_p, m01cat_p = self._rep_env(k)
        return (pin_cat, sb_cat, rep_p, low_p, hi_p, m01cat_p, W * k)

    def _materialize_swar_off(self, outbits: int) -> tuple:
        """Concatenate the output set's OFF cubes for the SWAR check."""
        W = self._block_width
        off_cat = 0
        k = 0
        for j in self._outputs(outbits):
            _pc, _sc, _kp, oc, ko = self._output_swar(j)
            off_cat |= oc << (W * k)
            k += ko
        rep_o, low_o, hi_o, m01cat_o = self._rep_env(k)
        return (off_cat, rep_o, low_o, hi_o, m01cat_o)

    def _rep(self, k: int) -> int:
        """``k`` one-bits spaced a block apart (bit 0 of each block).

        Built by doubling — O(log k) shift-ORs — instead of the closed-form
        big-int division, which costs quadratically in the concatenation
        width and showed up in environment builds (a fresh block count
        appears for almost every distinct output set).
        """
        cached = self._rep_cache.get(k)
        if cached is None:
            W = self._block_width
            cached = 1 if k else 0
            have = 1
            while have < k:
                take = min(have, k - have)
                cached |= (cached & ((1 << (W * take)) - 1)) << (W * have)
                have += take
            self._rep_cache[k] = cached
        return cached

    def _rep_env(self, k: int) -> tuple:
        """``(rep, low, hi, m01cat)`` for ``k`` blocks, memoized.

        The replications derived from ``rep`` are multiplies over the full
        concatenation width; thousands of distinct output sets reuse the
        same handful of block counts, so caching them takes the constant
        setup out of every environment materialization.
        """
        cached = self._rep_env_cache.get(k)
        if cached is None:
            W = self._block_width
            rep = self._rep(k)
            cached = (
                rep,
                rep * ((1 << (W - 1)) - 1),
                rep << (W - 1),
                rep * self._mask01,
            )
            self._rep_env_cache[k] = cached
        return cached

    def _output_swar(self, j: int) -> tuple:
        """Per-output SWAR concatenations of privileged and OFF cubes."""
        cached = self._output_swar_cache.get(j)
        if cached is None:
            W = self._block_width
            pin_cat = sb_cat = 0
            privs = self._priv_bits_by_output[j]
            for i, (pin, sbits) in enumerate(privs):
                pin_cat |= pin << (W * i)
                sb_cat |= sbits << (W * i)
            off_cat = 0
            offs = self._off_bits_by_output[j]
            for i, obits in enumerate(offs):
                off_cat |= obits << (W * i)
            cached = (pin_cat, sb_cat, len(privs), off_cat, len(offs))
            self._output_swar_cache[j] = cached
        return cached

    def is_dhf_implicant(self, cube: Cube, outbits: int) -> bool:
        """dhf-implicant test for an input cube over an output set."""
        m01 = self._mask01
        r = cube.inbits
        for obits in self._off_bits(outbits):
            meet = r & obits
            if not (~(meet | (meet >> 1)) & m01):
                return False
        for pin, sbits in self._privs_bits(outbits):
            meet = r & pin
            if ~(meet | (meet >> 1)) & m01:
                continue
            if sbits & r != sbits:
                return False
        return True

    def _outputs(self, outbits: int):
        while outbits:
            b = outbits & -outbits
            outbits ^= b
            yield b.bit_length() - 1

    def _privs_bits(self, outbits: int) -> List[Tuple[int, int]]:
        cached = self._priv_bits_cache.get(outbits)
        if cached is None:
            cached = []
            for j in self._outputs(outbits):
                cached.extend(self._priv_bits_by_output[j])
            self._priv_bits_cache[outbits] = cached
        return cached

    def _off_bits(self, outbits: int) -> List[int]:
        cached = self._off_bits_cache.get(outbits)
        if cached is None:
            cached = []
            for j in self._outputs(outbits):
                cached.extend(self._off_bits_by_output[j])
            self._off_bits_cache[outbits] = cached
        return cached

    def _privs_for(self, outbits: int) -> List[PrivilegedCube]:
        privs: List[PrivilegedCube] = []
        for j in self._outputs(outbits):
            privs.extend(self.priv_by_output[j])
        return privs

    # ------------------------------------------------------------------
    # Canonical required cubes (dhf-canonicalization, §3.2)
    # ------------------------------------------------------------------

    def canonical_required(self) -> Optional[List[TaggedRequired]]:
        """``Q_f``: the canonical required cubes, SCC-minimized per output.

        Returns ``None`` when some required cube has no dhf-supercube — by
        Theorem 4.1 the instance then has no hazard-free cover.
        """
        tagged: List[TaggedRequired] = []
        n = self.n_inputs
        for q in self.instance.required_cubes():
            sup_in = self.supercube_dhf_bits(q.cube.inbits, 1 << q.output)
            if sup_in is None:
                return None
            tagged.append(
                TaggedRequired(Cube(n, sup_in, 1, 1), q.output, q.cube)
            )
        return self._scc_minimize(tagged)

    @staticmethod
    def _scc_minimize(tagged: List[TaggedRequired]) -> List[TaggedRequired]:
        """Drop canonical cubes contained in another of the same output."""
        by_output: Dict[int, List[TaggedRequired]] = {}
        for t in tagged:
            by_output.setdefault(t.output, []).append(t)
        kept: List[TaggedRequired] = []
        for j, group in sorted(by_output.items()):
            group = sorted(
                group, key=lambda t: (-t.canonical.num_dc(), t.canonical.inbits)
            )
            chosen: List[TaggedRequired] = []
            for t in group:
                if not any(k.canonical.contains_input(t.canonical) for k in chosen):
                    chosen.append(t)
            kept.extend(chosen)
        return kept

    # ------------------------------------------------------------------
    # Covering helpers
    # ------------------------------------------------------------------

    def covers(self, cover_cube: Cube, req: TaggedRequired) -> bool:
        """True iff a multi-output cover cube covers a tagged required cube.

        Scalar reference predicate; the operators use the bit-parallel
        :meth:`covered_bits` instead.
        """
        return cover_cube.has_output(req.output) and cover_cube.contains_input(
            req.canonical
        )

    def covered_set(
        self, cover_cube: Cube, reqs: Sequence[TaggedRequired]
    ) -> List[TaggedRequired]:
        """All tagged required cubes covered by ``cover_cube`` (scalar path)."""
        return [q for q in reqs if self.covers(cover_cube, q)]

    def covered_bits(self, inbits: int, outbits: int) -> int:
        """Coverage bitmask over the registered required-cube universe.

        Bit ``i`` is set iff universe required cube ``i`` is covered by a
        cover cube with this input part and output set.  The universe is
        populated by :meth:`CoverageIndex.register` — the operators register
        the canonical required cubes they work on, so within one minimizer
        run the mask is |Q_f|-wide.  Memoized per (inbits, output).
        """
        return self.coverage.covered_bits(inbits, outbits)

    def cube_for(self, req: TaggedRequired) -> Cube:
        """The multi-output cover cube representing one canonical required cube."""
        return Cube(
            self.n_inputs, req.canonical.inbits, 1 << req.output, self.n_outputs
        )

    # ------------------------------------------------------------------
    # Warm-start cache export / import (docs/WARMSTART.md)
    # ------------------------------------------------------------------

    #: total pair-infeasibility proofs recovered from imported escape rows;
    #: bounds the O(universe^2) fan-out of a dense row set
    _ESCAPE_IMPORT_CAP = 2_048

    def export_caches(
        self,
        max_supercube_entries: int = 50_000,
        max_escape_rows: int = 4_096,
    ) -> Dict[str, object]:
        """Portable snapshot of the memo tables, for a session capture.

        The supercube memo exports as raw ``[r, outbits, result]`` rows —
        already position-independent.  The escape rows are keyed by
        universe *position*, so the coverage export rides along as the
        position → ``(canonical inbits, output)`` translation table.
        Bounds keep sessions shippable; export order is dict insertion
        order, i.e. probe order, which is deterministic.
        """
        memo = []
        for (r, ob), val in self._supercube_cache.items():
            if len(memo) >= max_supercube_entries:
                break
            memo.append([r, ob, val])
        rows = []
        for pos, rowmask in self._escape_rows.items():
            if len(rows) >= max_escape_rows:
                break
            rows.append([pos, rowmask])
        return {
            "n_inputs": self.n_inputs,
            "n_outputs": self.n_outputs,
            "supercube": memo,
            "escape": {"rows": rows, "sel": self._escape_rows_sel},
            "coverage": self.coverage.export_state(),
        }

    def import_caches(
        self, caches: Dict[str, object], valid_outputs: int
    ) -> int:
        """Adopt a prior session's memo tables; returns entries imported.

        ``valid_outputs`` is the diff layer's mask of outputs whose
        privileged and OFF sets are unchanged — the exact data every
        ``supercube_dhf`` verdict is a function of, so an entry whose
        output set is confined to the mask is value-identical to what
        this run would recompute and can be adopted outright.  Escape
        rows contribute differently: a *cleared* partner bit is a proof
        that the pair seed meets an OFF cube of one of the two outputs,
        so when both outputs are valid the pair's fixpoint is seeded as
        infeasible (``None``).  Set bits only ever licensed a probe and
        carry nothing.  Malformed or out-of-range entries are skipped,
        never fatal — a session must not be able to crash a run.
        """
        if not isinstance(caches, dict):
            return 0
        if caches.get("n_inputs") != self.n_inputs:
            return 0
        if caches.get("n_outputs") != self.n_outputs:
            return 0
        full_in = (1 << (2 * self.n_inputs)) - 1
        out_mask = (1 << self.n_outputs) - 1
        cache = self._supercube_cache
        imported = 0
        for entry in caches.get("supercube") or []:
            try:
                r, ob, val = int(entry[0]), int(entry[1]), entry[2]
            except (TypeError, ValueError, IndexError):
                continue
            if not 0 < ob <= out_mask or ob & ~valid_outputs:
                continue
            if not 0 <= r <= full_in:
                continue
            if val is not None:
                val = int(val)
                if not 0 <= val <= full_in:
                    continue
            if (r, ob) not in cache:
                cache[(r, ob)] = val
                imported += 1
        self.perf.warm_memo_imported += imported
        seeded = self._seed_escape_proofs(caches, valid_outputs)
        self.perf.warm_escape_imported += seeded
        coverage_state = caches.get("coverage")
        if isinstance(coverage_state, dict):
            self.coverage.offer_warm_state(coverage_state)
        return imported + seeded

    def _seed_escape_proofs(
        self, caches: Dict[str, object], valid_outputs: int
    ) -> int:
        escape = caches.get("escape")
        coverage_state = caches.get("coverage")
        if not isinstance(escape, dict) or not isinstance(
            coverage_state, dict
        ):
            return 0
        universe = coverage_state.get("universe") or []
        if not universe:
            return 0
        n_universe = len(universe)
        cache = self._supercube_cache
        out_mask = (1 << self.n_outputs) - 1
        full_in = (1 << (2 * self.n_inputs)) - 1
        seeded = 0
        try:
            # A cleared bit is only a verdict for partners the row build
            # actually considered — the exported selection mask.
            sel = int(escape.get("sel") or 0) & ((1 << n_universe) - 1)
            for pos, rowmask in escape.get("rows") or []:
                pos, rowmask = int(pos), int(rowmask)
                if not 0 <= pos < n_universe or not (sel >> pos) & 1:
                    continue
                q_in, j = (int(v) for v in universe[pos])
                if not (valid_outputs >> j) & 1 or not 0 <= q_in <= full_in:
                    continue
                cleared = ~rowmask & sel
                while cleared and seeded < self._ESCAPE_IMPORT_CAP:
                    b = cleared & -cleared
                    cleared ^= b
                    pos2 = b.bit_length() - 1
                    s_in, j2 = (int(v) for v in universe[pos2])
                    ob = (1 << j) | (1 << j2)
                    if (
                        not (valid_outputs >> j2) & 1
                        or not 0 <= s_in <= full_in
                        or ob & ~out_mask
                    ):
                        continue
                    key = (q_in | s_in, ob)
                    if key not in cache:
                        cache[key] = None
                        seeded += 1
                if seeded >= self._ESCAPE_IMPORT_CAP:
                    break
        except (TypeError, ValueError):
            return seeded
        return seeded
