"""Shared state for one Espresso-HF run.

The :class:`HFContext` precomputes, from a :class:`HazardFreeInstance`, the
objects every operator needs — per-output privileged cubes and OFF covers —
and provides the multi-output generalization of ``supercube_dhf``: a cover
cube participating in output set ``O`` must be a dhf-implicant with respect
to *every* output in ``O``, so forced expansions chain across the privileged
cubes of all of them and the result must clear every OFF-set in ``O``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cubes.cube import Cube
from repro.cubes.cover import Cover
from repro.hazards.instance import HazardFreeInstance, PrivilegedCube

#: cache sentinel distinguishing "not computed" from a computed ``None``
_MISSING = object()


@dataclass(frozen=True)
class TaggedRequired:
    """A canonical required cube: input part plus the output it belongs to.

    ``canonical`` is ``supercube_dhf({original})`` — the unique smallest
    dhf-implicant containing the original required cube (paper §3.2).  A
    dhf-implicant contains the original iff it contains the canonical cube,
    so all covering bookkeeping uses ``canonical``.
    """

    canonical: Cube  # input part, single-output encoding
    output: int
    original: Cube

    def key(self) -> Tuple[int, int]:
        return (self.canonical.inbits, self.output)

    def __str__(self) -> str:
        return f"{self.canonical.input_string()}@out{self.output}"


class HFContext:
    """Precomputed per-run state: privileged cubes, OFF covers, helpers.

    ``supercube_dhf`` is the inner loop of every operator, so it works on
    raw bitmasks and is memoized: for a fixed instance the result depends
    only on the supercube's input bits and the output set.
    """

    def __init__(self, instance: HazardFreeInstance):
        self.instance = instance
        self.n_inputs = instance.n_inputs
        self.n_outputs = instance.n_outputs
        self.priv_by_output: List[List[PrivilegedCube]] = [
            instance.privileged_for_output(j) for j in range(self.n_outputs)
        ]
        self.off_by_output: List[Cover] = [
            instance.off_for_output(j) for j in range(self.n_outputs)
        ]
        from repro.cubes.cube import mask01

        self._mask01 = mask01(self.n_inputs)
        # Raw (cube bits, start bits) pairs per output, and OFF bits.
        self._priv_bits_by_output = [
            [(p.cube.inbits, p.start.inbits) for p in privs]
            for privs in self.priv_by_output
        ]
        self._off_bits_by_output = [
            [o.inbits for o in off if not o.is_empty] for off in self.off_by_output
        ]
        self._priv_bits_cache: Dict[int, List[Tuple[int, int]]] = {}
        self._off_bits_cache: Dict[int, List[int]] = {}
        self._supercube_cache: Dict[Tuple[int, int], Optional[int]] = {}

    # ------------------------------------------------------------------
    # supercube_dhf over an output set
    # ------------------------------------------------------------------

    def supercube_dhf(
        self, cubes: Iterable[Cube], outbits: int
    ) -> Optional[Cube]:
        """Smallest input cube that is a dhf-implicant for every output in
        ``outbits`` and contains all of ``cubes`` — or ``None``.

        Input cubes may use any output encoding; only input parts are read.
        The result is a single-output-encoded input cube.
        """
        r_bits = 0
        for c in cubes:
            r_bits |= c.inbits
        result = self.supercube_dhf_bits(r_bits, outbits)
        if result is None:
            return None
        return Cube(self.n_inputs, result, 1, 1)

    def supercube_dhf_bits(self, r: int, outbits: int) -> Optional[int]:
        """Bitmask core of ``supercube_dhf`` (memoized)."""
        m01 = self._mask01
        if ~(r | (r >> 1)) & m01:
            raise ValueError("supercube_dhf of an empty cube collection")
        key = (r, outbits)
        cached = self._supercube_cache.get(key, _MISSING)
        if cached is not _MISSING:
            return cached
        privs = self._privs_bits(outbits)
        changed = True
        while changed:
            changed = False
            for pin, sbits in privs:
                meet = r & pin
                if ~(meet | (meet >> 1)) & m01:
                    continue  # no intersection with the privileged cube
                if sbits & r == sbits:
                    continue  # start point already contained: legal
                r |= sbits
                changed = True
        result: Optional[int] = r
        for obits in self._off_bits(outbits):
            meet = r & obits
            if not (~(meet | (meet >> 1)) & m01):
                result = None
                break
        self._supercube_cache[key] = result
        if result is not None and result != key[0]:
            # The expansion chain is confluent: the grown cube maps to itself.
            self._supercube_cache[(result, outbits)] = result
        return result

    def is_dhf_implicant(self, cube: Cube, outbits: int) -> bool:
        """dhf-implicant test for an input cube over an output set."""
        m01 = self._mask01
        r = cube.inbits
        for obits in self._off_bits(outbits):
            meet = r & obits
            if not (~(meet | (meet >> 1)) & m01):
                return False
        for pin, sbits in self._privs_bits(outbits):
            meet = r & pin
            if ~(meet | (meet >> 1)) & m01:
                continue
            if sbits & r != sbits:
                return False
        return True

    def _outputs(self, outbits: int):
        j = 0
        while outbits:
            if outbits & 1:
                yield j
            outbits >>= 1
            j += 1

    def _privs_bits(self, outbits: int) -> List[Tuple[int, int]]:
        cached = self._priv_bits_cache.get(outbits)
        if cached is None:
            cached = []
            for j in self._outputs(outbits):
                cached.extend(self._priv_bits_by_output[j])
            self._priv_bits_cache[outbits] = cached
        return cached

    def _off_bits(self, outbits: int) -> List[int]:
        cached = self._off_bits_cache.get(outbits)
        if cached is None:
            cached = []
            for j in self._outputs(outbits):
                cached.extend(self._off_bits_by_output[j])
            self._off_bits_cache[outbits] = cached
        return cached

    def _privs_for(self, outbits: int) -> List[PrivilegedCube]:
        privs: List[PrivilegedCube] = []
        for j in self._outputs(outbits):
            privs.extend(self.priv_by_output[j])
        return privs

    # ------------------------------------------------------------------
    # Canonical required cubes (dhf-canonicalization, §3.2)
    # ------------------------------------------------------------------

    def canonical_required(self) -> Optional[List[TaggedRequired]]:
        """``Q_f``: the canonical required cubes, SCC-minimized per output.

        Returns ``None`` when some required cube has no dhf-supercube — by
        Theorem 4.1 the instance then has no hazard-free cover.
        """
        tagged: List[TaggedRequired] = []
        for q in self.instance.required_cubes():
            sup = self.supercube_dhf([q.cube], 1 << q.output)
            if sup is None:
                return None
            tagged.append(TaggedRequired(sup, q.output, q.cube))
        return self._scc_minimize(tagged)

    @staticmethod
    def _scc_minimize(tagged: List[TaggedRequired]) -> List[TaggedRequired]:
        """Drop canonical cubes contained in another of the same output."""
        by_output: Dict[int, List[TaggedRequired]] = {}
        for t in tagged:
            by_output.setdefault(t.output, []).append(t)
        kept: List[TaggedRequired] = []
        for j, group in sorted(by_output.items()):
            group = sorted(
                group, key=lambda t: (-t.canonical.num_dc(), t.canonical.inbits)
            )
            chosen: List[TaggedRequired] = []
            for t in group:
                if not any(k.canonical.contains_input(t.canonical) for k in chosen):
                    chosen.append(t)
            kept.extend(chosen)
        return kept

    # ------------------------------------------------------------------
    # Covering helpers
    # ------------------------------------------------------------------

    def covers(self, cover_cube: Cube, req: TaggedRequired) -> bool:
        """True iff a multi-output cover cube covers a tagged required cube."""
        return cover_cube.has_output(req.output) and cover_cube.contains_input(
            req.canonical
        )

    def covered_set(
        self, cover_cube: Cube, reqs: Sequence[TaggedRequired]
    ) -> List[TaggedRequired]:
        """All tagged required cubes covered by ``cover_cube``."""
        return [q for q in reqs if self.covers(cover_cube, q)]

    def cube_for(self, req: TaggedRequired) -> Cube:
        """The multi-output cover cube representing one canonical required cube."""
        return Cube(
            self.n_inputs, req.canonical.inbits, 1 << req.output, self.n_outputs
        )
