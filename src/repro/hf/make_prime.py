"""MAKE_DHF_PRIME: final expansion of every cube to a dhf-prime (paper §3.8).

The main loop deliberately stops expanding once no further required cube can
be absorbed — by the Hazard-Free Covering theorem nothing else is gained.
For literal count and testability it is still desirable to deliver
dhf-primes, so this post-processing greedily raises entries: a raise is
dhf-feasible when the canonicalized (``supercube_dhf``) result exists, and a
cube none of whose single-entry raises are feasible is a dhf-prime (any
strictly larger dhf-implicant would have to contain one of those raises).
"""

from __future__ import annotations

from typing import List

from repro.cubes.cube import Cube
from repro.hf.context import _MISSING, HFContext


def make_dhf_prime(cube: Cube, ctx: HFContext) -> Cube:
    """Expand one cube into a dhf-prime (input part; outputs unchanged).

    Works on raw input bits: raising variable ``i`` to don't-care is
    ``inbits | (0b11 << 2i)``, probed directly through the memoized
    ``supercube_dhf_bits`` — no intermediate Cube objects on this loop.
    """
    inbits = cube.inbits
    outbits = cube.outbits
    supercube = ctx.supercube_dhf_bits
    scache = ctx._supercube_cache
    sc_hits = 0
    changed = True
    while changed:
        changed = False
        for i in range(ctx.n_inputs):
            pair = 0b11 << (2 * i)
            if inbits & pair == pair:
                continue  # already don't-care
            raised = inbits | pair
            sup_in = scache.get((raised, outbits), _MISSING)
            if sup_in is _MISSING:
                sup_in = supercube(raised, outbits)
            else:
                sc_hits += 1
            if sup_in is not None:
                inbits = sup_in
                changed = True
    ctx.perf.supercube_calls += sc_hits
    ctx.perf.supercube_cache_hits += sc_hits
    if inbits == cube.inbits:
        return cube
    return Cube(ctx.n_inputs, inbits, outbits, ctx.n_outputs)


def make_cover_dhf_prime(cubes: List[Cube], ctx: HFContext) -> List[Cube]:
    """Apply :func:`make_dhf_prime` to a whole cover, deduplicating."""
    with ctx.perf.op_timer("make_prime"):
        seen = set()
        out: List[Cube] = []
        for c in cubes:
            ctx.checkpoint("make_prime")
            p = make_dhf_prime(c, ctx)
            key = (p.inbits, p.outbits)
            if key not in seen:
                seen.add(key)
                out.append(p)
        return out


class MakePrimePass:
    """MAKE_DHF_PRIME as a pipeline pass (see :mod:`repro.pipeline`)."""

    name = "make_prime"

    def run(self, state):
        state.f = make_cover_dhf_prime(state.f, state.ctx)
        return state
