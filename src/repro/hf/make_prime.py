"""MAKE_DHF_PRIME: final expansion of every cube to a dhf-prime (paper §3.8).

The main loop deliberately stops expanding once no further required cube can
be absorbed — by the Hazard-Free Covering theorem nothing else is gained.
For literal count and testability it is still desirable to deliver
dhf-primes, so this post-processing greedily raises entries: a raise is
dhf-feasible when the canonicalized (``supercube_dhf``) result exists, and a
cube none of whose single-entry raises are feasible is a dhf-prime (any
strictly larger dhf-implicant would have to contain one of those raises).
"""

from __future__ import annotations

from typing import List

from repro.cubes.cube import Cube, LITERAL_DC
from repro.hf.context import HFContext


def make_dhf_prime(cube: Cube, ctx: HFContext) -> Cube:
    """Expand one cube into a dhf-prime (input part; outputs unchanged)."""
    changed = True
    while changed:
        changed = False
        for i in range(ctx.n_inputs):
            if cube.literal(i) == LITERAL_DC:
                continue
            raised = cube.with_literal(i, LITERAL_DC)
            sup_in = ctx.supercube_dhf([raised], cube.outbits)
            if sup_in is not None:
                cube = Cube(ctx.n_inputs, sup_in.inbits, cube.outbits, ctx.n_outputs)
                changed = True
    return cube


def make_cover_dhf_prime(cubes: List[Cube], ctx: HFContext) -> List[Cube]:
    """Apply :func:`make_dhf_prime` to a whole cover, deduplicating."""
    seen = set()
    out: List[Cube] = []
    for c in cubes:
        p = make_dhf_prime(c, ctx)
        key = (p.inbits, p.outbits)
        if key not in seen:
            seen.add(key)
            out.append(p)
    return out
