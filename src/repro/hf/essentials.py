"""Essential dhf-prime *equivalence classes* (paper §3.4).

A required cube covered by several equal-cost dhf-primes — none of them
essential individually — still forces one of them into every cover.
Espresso-HF exploits the required-cube granularity: expand a seed required
cube greedily; if some required cube it covers can pair with *no* required
cube outside the class (``supercube_dhf`` of the pair is undefined), that
cube is *distinguished* and the expanded implicant is an essential
equivalence class.  Removing its required cubes can expose secondary
essentials, so the process iterates to a fixpoint.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.cubes.cube import Cube
from repro.hf.context import HFContext, TaggedRequired
from repro.hf.expand import expand_toward_required


def compute_essentials(
    ctx: HFContext, reqs: Sequence[TaggedRequired]
) -> Tuple[List[Cube], List[TaggedRequired]]:
    """Identify essential equivalence classes.

    Returns ``(essential_cubes, remaining_required)``: the chosen
    representative cube of each essential class, and the required cubes
    still to be covered by the main loop.
    """
    remaining: List[TaggedRequired] = list(reqs)
    essentials: List[Cube] = []
    progress = True
    while progress:
        progress = False
        for seed in list(remaining):
            if seed not in remaining:
                continue
            p = expand_toward_required(ctx.cube_for(seed), remaining, ctx)
            covered = ctx.covered_set(p, remaining)
            if _has_distinguished(ctx, covered, remaining):
                essentials.append(p)
                covered_keys = {q.key() for q in covered}
                remaining = [q for q in remaining if q.key() not in covered_keys]
                progress = True
    return essentials, remaining


def _has_distinguished(
    ctx: HFContext,
    covered: Sequence[TaggedRequired],
    remaining: Sequence[TaggedRequired],
) -> bool:
    """True iff some covered required cube can escape to no other class.

    ``q`` is distinguished when for every required cube ``s`` outside the
    class, ``supercube_dhf({q, s})`` is undefined — no dhf-implicant covers
    both, so any dhf-prime covering ``q`` is confined to this class.
    """
    covered_keys = {q.key() for q in covered}
    outside = [s for s in remaining if s.key() not in covered_keys]
    for q in covered:
        escapes = False
        for s in outside:
            outbits = (1 << q.output) | (1 << s.output)
            if ctx.supercube_dhf([q.canonical, s.canonical], outbits) is not None:
                escapes = True
                break
        if not escapes:
            return True
    return False
