"""Essential dhf-prime *equivalence classes* (paper §3.4), batched engine.

A required cube covered by several equal-cost dhf-primes — none of them
essential individually — still forces one of them into every cover.
Espresso-HF exploits the required-cube granularity: expand a seed required
cube greedily; if some required cube it covers can pair with *no* required
cube outside the class (``supercube_dhf`` of the pair is undefined), that
cube is *distinguished* and the expanded implicant is an essential
equivalence class.  Removing its required cubes can expose secondary
essentials, so the process iterates to a fixpoint.

The fixpoint runs on the coverage-bitset universe and is organized around
*escape rows* built in bulk up front
(:meth:`repro.hf.context.HFContext.escape_filter_rows`): ``pp[q]`` has
partner bit ``s`` set iff the pair seed ``q ∪ s`` survives the seed-level
OFF-set check of both outputs.  The rows are a sound superset of true
pairability — a cleared bit proves ``supercube_dhf({q, s}) = None``
without running a fixpoint — and they are *exact* as a probe filter by the
containment lemma: any required cube a dhf-implicant covers is pairable
with every other cube it covers, so a candidate outside the seed's row can
never be absorbed by its expansion nor serve as an escape witness.  That
one relation therefore drives all three hot paths:

* greedy expansion probes only ``uncovered & pp[seed]`` (the ``allowed``
  parameter of :func:`~repro.hf.expand.expand_toward_required`);
* the distinguished test probes only ``outside & pp[q]``, batched through
  :meth:`~repro.hf.context.HFContext.supercube_dhf_many` so each escape
  row shares one concatenated OFF-set check;
* the fixpoint is *incremental*: an examination's verdict can only change
  if a later essential removed a required cube intersecting its trigger
  set (the union of the seed's and its covered cubes' rows), so clean
  seeds are skipped (``essentials_rescans_avoided``) and memoized
  expansions are invalidated by the same intersection test.

All per-instance memo tables (escape rows, expansion memo, escape
verdicts) are cleared before returning; their peak size is surfaced as
``essentials_memo_peak`` so service-style runs can watch for state
accumulation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.cubes.cube import Cube
from repro.hf.context import HFContext, TaggedRequired
from repro.hf.expand import expand_toward_required, required_candidates


def compute_essentials(
    ctx: HFContext, reqs: Sequence[TaggedRequired]
) -> Tuple[List[Cube], List[TaggedRequired]]:
    """Identify essential equivalence classes.

    Returns ``(essential_cubes, remaining_required)``: the chosen
    representative cube of each essential class, and the required cubes
    still to be covered by the main loop.  Produces results identical to
    :func:`repro.hf.essentials_ref.compute_essentials_reference` — the
    escape-row filter is exact and the incremental skips are proven
    verdict-preserving, so only the amount of work differs.
    """
    with ctx.perf.op_timer("essentials"):
        cov = ctx.coverage
        cov.register(reqs)
        positions = cov.positions(reqs)
        req_at = {pos: q for pos, q in zip(positions, reqs)}
        pair_at = {
            pos: (q.canonical.inbits, 1 << q.output)
            for pos, q in zip(positions, reqs)
        }
        # Universe positions per output bit: same-output partners are
        # probed first below (their pair shares one OFF set, so escapes
        # are found cheaply and cross-output fixpoint environments are
        # often never built at all).
        out_pos: Dict[int, int] = {}
        for pos, q in zip(positions, reqs):
            ob = 1 << q.output
            out_pos[ob] = out_pos.get(ob, 0) | (1 << pos)
        sel = cov.selection_mask(reqs)
        candidates = required_candidates(reqs, ctx)
        perf = ctx.perf
        # Escape rows, one SWAR build for the whole instance.  The rows
        # depend only on the instance, never on the shrinking selection.
        pp = ctx.escape_filter_rows(
            [
                (pos, q.canonical.inbits, q.output)
                for pos, q in zip(positions, reqs)
            ]
        )
        essentials: List[Cube] = []
        #: pos -> expansion of that seed; valid until an essential removes
        #: a bit of its *gain support* (below) — removals outside it
        #: provably leave the greedy trace unchanged
        expand_memo: Dict[int, Cube] = {}
        #: pos -> gain support of the memoized expansion: the union of
        #: covered sets of every feasible probed supercube (plus the
        #: result's own).  The trace reads the selection only through
        #: these masks, so this is a far tighter invalidation key than
        #: the seed's escape row (which also contains every pairable-but-
        #: never-probed position)
        expand_support: Dict[int, int] = {}
        esc_known: Dict[int, int] = {}  # pos -> row partners already probed
        esc_pair: Dict[int, int] = {}  # pos -> partners with a defined pair
        #: pos -> trigger set of the last "not distinguished" verdict:
        #: the expansion's gain support | the known pairable partners of
        #: every covered cube.  A removal disjoint from it leaves the
        #: expansion, the covered set, and at least one escape witness
        #: per covered cube intact, so the verdict stands.
        vtrigger: Dict[int, int] = {}
        vclean = 0  # positions whose last verdict is still valid
        memo_peak = len(pp)
        supercube_many = ctx.supercube_dhf_many
        try:
            progress = True
            while progress:
                progress = False
                m = sel  # pass snapshot; discoveries shrink sel mid-pass
                while m:
                    low = m & -m
                    m ^= low
                    if not (sel & low):
                        continue  # covered by an essential earlier this pass
                    if vclean & low:
                        perf.essentials_rescans_avoided += 1
                        continue
                    ctx.checkpoint("essentials")
                    pos = low.bit_length() - 1
                    row = pp[pos]
                    p = expand_memo.get(pos)
                    if p is None:
                        holder = [0]
                        p = expand_toward_required(
                            ctx.cube_for(req_at[pos]),
                            reqs,
                            ctx,
                            sel,
                            candidates,
                            allowed=row,
                            support_out=holder,
                        )
                        expand_memo[pos] = p
                        expand_support[pos] = holder[0] | cov.covered_bits(
                            p.inbits, p.outbits
                        )
                    covered_mask = cov.covered_bits(p.inbits, p.outbits) & sel
                    outside = sel & ~covered_mask
                    distinguished = False
                    trig = expand_support[pos]
                    cm = covered_mask
                    while cm:
                        lowc = cm & -cm
                        cm ^= lowc
                        posc = lowc.bit_length() - 1
                        rowc = pp[posc]
                        pairable = esc_pair.get(posc, 0)
                        if pairable & outside:
                            trig |= pairable
                            continue  # escapes via an already-known partner
                        # Probe the unprobed row partners in the outside
                        # set, same-output group first, one batched call
                        # per group; verdicts accumulate across passes
                        # (they depend only on the instance).
                        known = esc_known.get(posc, 0)
                        unknown = outside & rowc & ~known
                        escaped = False
                        if unknown:
                            q_in, q_ob = pair_at[posc]
                            same = unknown & out_pos.get(q_ob, 0)
                            for group in (same, unknown ^ same):
                                if not group:
                                    continue
                                members: List[int] = []
                                probes: List[Tuple[int, int]] = []
                                gm = group
                                while gm:
                                    lows = gm & -gm
                                    gm ^= lows
                                    s_in, s_ob = pair_at[
                                        lows.bit_length() - 1
                                    ]
                                    members.append(lows)
                                    probes.append(
                                        (q_in | s_in, q_ob | s_ob)
                                    )
                                for lows, sup in zip(
                                    members, supercube_many(probes)
                                ):
                                    known |= lows
                                    if sup is not None:
                                        pairable |= lows
                                        escaped = True
                                if escaped:
                                    break
                            esc_known[posc] = known
                            esc_pair[posc] = pairable
                        trig |= pairable
                        if not escaped:
                            distinguished = True
                            break
                    if distinguished:
                        essentials.append(p)
                        sel = outside
                        progress = True
                        removed = covered_mask
                        # Every memo's support contains its own covered
                        # set (the diagonal included), so the support-
                        # intersection test also retires entries whose
                        # seed was just covered.
                        for stale in [
                            k
                            for k, s in expand_support.items()
                            if s & removed
                        ]:
                            del expand_memo[stale]
                            del expand_support[stale]
                        if vclean:
                            mm = vclean & sel
                            vclean = 0
                            while mm:
                                b = mm & -mm
                                mm ^= b
                                if not (
                                    vtrigger[b.bit_length() - 1] & removed
                                ):
                                    vclean |= b
                    else:
                        vclean |= low
                        vtrigger[pos] = trig
                size = (
                    len(expand_memo)
                    + len(expand_support)
                    + len(esc_known)
                    + len(esc_pair)
                    + len(pp)
                )
                if size > memo_peak:
                    memo_peak = size
        finally:
            # Bound per-instance state: service-style runs reuse contexts
            # and must not accumulate memo tables across instances.  The
            # escape rows themselves stay on the context (EXPAND reuses
            # them); they die with it, like the supercube memo.
            if memo_peak > perf.essentials_memo_peak:
                perf.essentials_memo_peak = memo_peak
            expand_memo.clear()
            expand_support.clear()
            esc_known.clear()
            esc_pair.clear()
            vtrigger.clear()
        remaining = cov.covered_subset(sel, reqs)
        return essentials, remaining


class EssentialsPass:
    """Essential-class detection as a pipeline pass.

    Always present in the default spec so phase timing and the trace keep
    one uniform shape; with ``use_essentials=False`` it degenerates to
    rebuilding the working cover from the full canonical required set.
    """

    name = "essentials"

    def run(self, state):
        ctx = state.ctx
        if state.options.use_essentials:
            essentials, state.remaining = compute_essentials(ctx, state.qf)
            state.essentials = essentials
            state.essential_classes = list(essentials)
        state.f = [ctx.cube_for(q) for q in state.remaining]
        return state
