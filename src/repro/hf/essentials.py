"""Essential dhf-prime *equivalence classes* (paper §3.4).

A required cube covered by several equal-cost dhf-primes — none of them
essential individually — still forces one of them into every cover.
Espresso-HF exploits the required-cube granularity: expand a seed required
cube greedily; if some required cube it covers can pair with *no* required
cube outside the class (``supercube_dhf`` of the pair is undefined), that
cube is *distinguished* and the expanded implicant is an essential
equivalence class.  Removing its required cubes can expose secondary
essentials, so the process iterates to a fixpoint.

The fixpoint runs on the coverage-bitset universe.  The remaining set is a
selection mask, and the distinguished test uses a lazily-built *escape row*
per required cube: bit ``s`` of ``esc[q]`` is set iff ``supercube_dhf({q,
s})`` is defined, i.e. ``q`` could be covered together with ``s``.  A
covered cube ``q`` is then distinguished exactly when ``esc[q] & outside ==
0`` — one AND per cube instead of a pairwise rescan on every pass (the rows
depend only on the instance, never on the shrinking remaining set).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.cubes.cube import Cube
from repro.hf.context import _MISSING, HFContext, TaggedRequired
from repro.hf.expand import expand_toward_required, required_candidates


def compute_essentials(
    ctx: HFContext, reqs: Sequence[TaggedRequired]
) -> Tuple[List[Cube], List[TaggedRequired]]:
    """Identify essential equivalence classes.

    Returns ``(essential_cubes, remaining_required)``: the chosen
    representative cube of each essential class, and the required cubes
    still to be covered by the main loop.
    """
    with ctx.perf.op_timer("essentials"):
        cov = ctx.coverage
        cov.register(reqs)
        positions = cov.positions(reqs)
        req_at = {pos: q for pos, q in zip(positions, reqs)}
        pair_at = {
            pos: (q.canonical.inbits, 1 << q.output)
            for pos, q in zip(positions, reqs)
        }
        # Universe positions per output bit: same-output partners are
        # probed first below (their pair shares one OFF set, so escapes
        # are found cheaply and cross-output fixpoint environments are
        # often never built at all).
        out_pos = {}
        for pos, q in zip(positions, reqs):
            ob = 1 << q.output
            out_pos[ob] = out_pos.get(ob, 0) | (1 << pos)
        sel = cov.selection_mask(reqs)
        candidates = required_candidates(reqs, ctx)
        essentials: List[Cube] = []
        # A seed's greedy expansion depends only on (seed, remaining set),
        # identified by (universe position, selection mask).  The memo makes
        # the fixpoint's final no-progress pass (which re-expands every
        # seed) free.
        expand_memo = {}
        esc_known = {}  # universe pos -> partner bits already probed
        esc_pair = {}  # universe pos -> probed partners with a defined pair
        scache = ctx._supercube_cache
        supercube = ctx.supercube_dhf_bits
        perf = ctx.perf
        progress = True
        while progress:
            progress = False
            snapshot = sel
            m = snapshot
            while m:
                low = m & -m
                m ^= low
                if not (sel & low):
                    continue  # covered by an essential earlier this pass
                ctx.checkpoint("essentials")
                pos = low.bit_length() - 1
                memo_key = (pos, sel)
                p = expand_memo.get(memo_key)
                if p is None:
                    p = expand_toward_required(
                        ctx.cube_for(req_at[pos]), reqs, ctx, sel, candidates
                    )
                    expand_memo[memo_key] = p
                covered_mask = cov.covered_bits(p.inbits, p.outbits) & sel
                outside = sel & ~covered_mask
                distinguished = False
                cm = covered_mask
                while cm:
                    lowc = cm & -cm
                    cm ^= lowc
                    posc = lowc.bit_length() - 1
                    pairable = esc_pair.get(posc, 0)
                    if pairable & outside:
                        continue  # q escapes via an already-known partner
                    # Probe the not-yet-probed partners in the outside set,
                    # stopping at the first escape; verdicts accumulate
                    # across passes (they depend only on the instance).
                    known = esc_known.get(posc, 0)
                    unknown = outside & ~known
                    escaped = False
                    if unknown:
                        q = req_at[posc]
                        q_in = q.canonical.inbits
                        q_ob = 1 << q.output
                        sc_hits = 0
                        same = unknown & out_pos.get(q_ob, 0)
                        for group in (same, unknown ^ same):
                            while group:
                                lows = group & -group
                                group ^= lows
                                s_in, s_ob = pair_at[lows.bit_length() - 1]
                                r_bits = q_in | s_in
                                outbits = q_ob | s_ob
                                sup = scache.get((r_bits, outbits), _MISSING)
                                if sup is _MISSING:
                                    sup = supercube(r_bits, outbits)
                                else:
                                    sc_hits += 1
                                known |= lows
                                if sup is not None:
                                    pairable |= lows
                                    escaped = True
                                    break
                            if escaped:
                                break
                        perf.supercube_calls += sc_hits
                        perf.supercube_cache_hits += sc_hits
                        esc_known[posc] = known
                        esc_pair[posc] = pairable
                    if not escaped:
                        distinguished = True
                        break
                if distinguished:
                    essentials.append(p)
                    sel = outside
                    progress = True
        remaining = cov.covered_subset(sel, reqs)
        return essentials, remaining


class EssentialsPass:
    """Essential-class detection as a pipeline pass.

    Always present in the default spec so phase timing and the trace keep
    one uniform shape; with ``use_essentials=False`` it degenerates to
    rebuilding the working cover from the full canonical required set.
    """

    name = "essentials"

    def run(self, state):
        ctx = state.ctx
        if state.options.use_essentials:
            essentials, state.remaining = compute_essentials(ctx, state.qf)
            state.essentials = essentials
            state.essential_classes = list(essentials)
        state.f = [ctx.cube_for(q) for q in state.remaining]
        return state
