"""Coverage-bitset engine: required-cube covering as big-int bitmasks.

Every operator of Espresso-HF asks the same question over and over: *which
canonical required cubes does this cover cube cover?*  The scalar answer
(:meth:`repro.hf.context.HFContext.covers` per pair) costs two Python method
calls per (cube, required-cube) pair and dominated the profile.  This module
collapses the question to one memoized big-int per (input bits, output) —
bit ``i`` of the mask is set iff required cube ``i`` is covered — so the
EXPAND gain function, the REDUCE/LAST_GASP uniqueness counts, and the
IRREDUNDANT covering rows all become AND/OR/popcount operations.  Python
big ints are the vector unit, the same trick as the 2-bits-per-variable
cube encoding.

The index assigns each distinct required cube (keyed on canonical input
bits + output) a stable *universe index* in registration order.  Operators
work on arbitrary subsequences of the canonical set, so they first
``register`` their sequence, take a ``selection_mask``, and intersect
engine masks with it.  Registration is idempotent and the per-``(inbits,
output)`` mask cache extends incrementally if the universe grows after a
mask was computed (only relevant for ad-hoc test universes; one minimizer
run registers everything up front).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.perf import PerfCounters

# Deliberately untyped import target: TaggedRequired lives in context.py,
# which imports this module; only duck-typed attributes are used here.


class CoverageIndex:
    """Memoized |Q|-wide coverage bitmasks over the required-cube universe.

    The index runs in one of two modes.  The default *engine* mode serves
    masks from the per-output and combined caches.  *Scalar* mode
    (:meth:`enter_scalar_mode`) recomputes every mask from the per-pair
    containment predicate on each call, bypassing all caches — it is the
    fallback path checked mode switches to when the scalar-vs-bitset
    cross-check (:mod:`repro.guard.invariants`) catches a divergence, so a
    wrong cache entry degrades the run to the slow path instead of a wrong
    cover.  ``fault_hook`` is the injection point those cross-check tests
    use: it perturbs engine-mode masks only (a fault model for cache
    corruption), never the scalar path.
    """

    def __init__(self, n_outputs: int, perf: Optional[PerfCounters] = None):
        self.n_outputs = n_outputs
        self.perf = perf if perf is not None else PerfCounters()
        #: scalar fallback switch (see class docstring)
        self.scalar_mode = False
        #: optional (inbits, outbits, mask) -> mask fault injector
        self.fault_hook = None
        #: (canonical inbits, output) -> universe index
        self._index: Dict[Tuple[int, int], int] = {}
        #: per output j: [(universe index, canonical inbits), ...]
        self._by_output: List[List[Tuple[int, int]]] = [
            [] for _ in range(n_outputs)
        ]
        #: (inbits, output j) -> (bucket length at computation, mask)
        self._mask_cache: Dict[Tuple[int, int], Tuple[int, int]] = {}
        #: (inbits, outbits) -> (universe size at computation, combined mask)
        self._combined_cache: Dict[Tuple[int, int], Tuple[int, int]] = {}
        #: warm-start mask snapshot offered by
        #: :meth:`offer_warm_state`, adopted by :meth:`register` only if
        #: the registered universe reproduces the snapshot's exactly
        self._warm_pending: Optional[Dict] = None

    # ------------------------------------------------------------------
    # Universe registration
    # ------------------------------------------------------------------

    def register(self, reqs: Sequence) -> None:
        """Ensure every tagged required cube has a universe index."""
        index = self._index
        for q in reqs:
            key = (q.canonical.inbits, q.output)
            if key not in index:
                index[key] = len(index)
                self._by_output[q.output].append((index[key], key[0]))
        if self._warm_pending is not None:
            self._try_adopt_warm()

    def index_of(self, req) -> int:
        """Universe index of one tagged required cube (must be registered)."""
        return self._index[(req.canonical.inbits, req.output)]

    def positions(self, reqs: Sequence) -> List[int]:
        """Universe indices aligned with ``reqs`` (registers as needed)."""
        self.register(reqs)
        index = self._index
        return [index[(q.canonical.inbits, q.output)] for q in reqs]

    def selection_mask(self, reqs: Sequence) -> int:
        """Bitmask selecting exactly the universe indices of ``reqs``."""
        mask = 0
        for pos in self.positions(reqs):
            mask |= 1 << pos
        return mask

    def __len__(self) -> int:
        return len(self._index)

    # ------------------------------------------------------------------
    # Coverage masks
    # ------------------------------------------------------------------

    def covered_bits(self, inbits: int, outbits: int) -> int:
        """Mask of registered required cubes covered by a cover cube.

        Bit ``i`` is set iff universe cube ``i`` belongs to an output in
        ``outbits`` and its canonical input part is contained in ``inbits``.
        The combined (input bits, output set) result is memoized on top of
        the per-output masks, so the hot-path cost is one dictionary probe.
        """
        if self.scalar_mode:
            return self._scalar_covered_bits(inbits, outbits)
        key = (inbits, outbits)
        cached = self._combined_cache.get(key)
        if cached is not None and cached[0] == len(self._index):
            self.perf.coverage_mask_hits += 1
            return cached[1]
        mask = 0
        ob = outbits
        while ob:
            b = ob & -ob
            ob ^= b
            mask |= self._output_mask(inbits, b.bit_length() - 1)
        if self.fault_hook is not None:
            mask = self.fault_hook(inbits, outbits, mask)
        self._combined_cache[key] = (len(self._index), mask)
        return mask

    def _scalar_covered_bits(self, inbits: int, outbits: int) -> int:
        """Uncached per-pair containment scan (the fallback oracle path)."""
        mask = 0
        ob = outbits
        while ob:
            b = ob & -ob
            ob ^= b
            for pos, q_in in self._by_output[b.bit_length() - 1]:
                if q_in & inbits == q_in:
                    mask |= 1 << pos
        return mask

    def enter_scalar_mode(self) -> None:
        """Switch to the scalar fallback path and drop every cached mask."""
        self.scalar_mode = True
        self._warm_pending = None
        self._mask_cache.clear()
        self._combined_cache.clear()

    def _output_mask(self, inbits: int, j: int) -> int:
        bucket = self._by_output[j]
        key = (inbits, j)
        cached = self._mask_cache.get(key)
        if cached is not None:
            known, mask = cached
            if known == len(bucket):
                self.perf.coverage_mask_hits += 1
                return mask
            # The universe grew since this mask was computed: extend it by
            # scanning only the new bucket entries.
            start = known
        else:
            mask = 0
            start = 0
        for pos, q_in in bucket[start:]:
            if q_in & inbits == q_in:
                mask |= 1 << pos
        self.perf.coverage_masks_built += 1
        self._mask_cache[key] = (len(bucket), mask)
        return mask

    # ------------------------------------------------------------------
    # Warm-start export / import (docs/WARMSTART.md)
    # ------------------------------------------------------------------

    def export_state(self, max_masks: int = 10_000) -> Dict[str, object]:
        """Portable snapshot: universe key order plus the mask caches.

        Masks are universe-*position* bitmasks, so they are only valid
        against the exact same universe in the exact same registration
        order — the import side enforces that (:meth:`offer_warm_state`).
        The universe key list itself is position-independent data and
        doubles as the translation table for the context's escape rows.
        """
        universe: List[List[int]] = [
            [inbits, j] for (inbits, j) in self._index
        ]
        masks = []
        for (inbits, j), (known, mask) in self._mask_cache.items():
            if len(masks) >= max_masks:
                break
            masks.append([inbits, j, known, mask])
        combined = []
        for (inbits, ob), (size, mask) in self._combined_cache.items():
            if len(combined) >= max_masks:
                break
            combined.append([inbits, ob, size, mask])
        return {"universe": universe, "masks": masks, "combined": combined}

    def offer_warm_state(self, state: Dict[str, object]) -> None:
        """Stage an :meth:`export_state` snapshot for adoption.

        Adoption happens inside :meth:`register`, the moment the live
        universe is known — and only if it matches the snapshot's key
        order exactly (positions, hence masks, then coincide).  Any
        mismatch silently drops the offer: coverage masks are cheap to
        rebuild, so a stale snapshot must never risk a wrong mask.
        """
        if not self.scalar_mode and self.fault_hook is None:
            self._warm_pending = state

    def _try_adopt_warm(self) -> None:
        state = self._warm_pending
        universe = state.get("universe") or []
        if len(universe) < len(self._index):
            # The live universe has outgrown the snapshot: give up.
            self._warm_pending = None
            return
        if len(universe) > len(self._index):
            return  # not fully registered yet; keep the offer staged
        self._warm_pending = None
        live = [[inbits, j] for (inbits, j) in self._index]
        if [[int(a), int(b)] for a, b in universe] != live:
            return
        try:
            for inbits, j, known, mask in state.get("masks") or []:
                j = int(j)
                if 0 <= j < self.n_outputs and int(known) <= len(
                    self._by_output[j]
                ):
                    self._mask_cache.setdefault(
                        (int(inbits), j), (int(known), int(mask))
                    )
            for inbits, ob, size, mask in state.get("combined") or []:
                if int(size) == len(self._index):
                    self._combined_cache.setdefault(
                        (int(inbits), int(ob)), (int(size), int(mask))
                    )
        except (TypeError, ValueError):
            return

    # ------------------------------------------------------------------
    # Convenience views for the operators
    # ------------------------------------------------------------------

    def cover_masks(self, cubes: Sequence, reqs: Sequence) -> List[int]:
        """Per-cube coverage masks restricted to the ``reqs`` selection."""
        sel = self.selection_mask(reqs)
        return [self.covered_bits(c.inbits, c.outbits) & sel for c in cubes]

    def covered_subset(self, mask: int, reqs: Sequence) -> List:
        """The members of ``reqs`` selected by ``mask``, in ``reqs`` order."""
        index = self._index
        return [
            q
            for q in reqs
            if (mask >> index[(q.canonical.inbits, q.output)]) & 1
        ]


class SwarBlockMap:
    """Fixed block layout for SWAR passes over a set of universe positions.

    One ``width``-bit block per position, in ascending-position order,
    concatenated into a single big int (:attr:`cat`).  ``width`` leaves a
    spare top bit per block so the carry-free zero-block test
    (``hi & ~(t + low)``) never overflows into a neighbour.  The layout
    depends only on the registered positions and their packed values —
    never on the shrinking selection mask — so callers build it once per
    instance and reuse it across an entire fixpoint.

    :attr:`rep` replicates a ``width``-bit value into every block with one
    multiply; :attr:`hi` / :attr:`low` are the per-block high-bit and
    low-bits replications the zero-block test needs.
    :meth:`positions_mask` collapses per-block verdict flags (high bit of
    each block) back into a universe-position bitmask.
    """

    def __init__(
        self, width: int, positions: Sequence[int], values: Sequence[int]
    ):
        self.width = width
        self.positions = list(positions)
        k = len(self.positions)
        self.n_blocks = k
        cat = 0
        for i, v in enumerate(values):
            cat |= v << (width * i)
        self.cat = cat
        if k:
            self.rep = ((1 << (width * k)) - 1) // ((1 << width) - 1)
        else:
            self.rep = 0
        self.hi = self.rep << (width - 1)
        self.low = self.rep * ((1 << (width - 1)) - 1)

    #: blocks consumed per chunk in :meth:`positions_mask`; keeps the
    #: per-bit arithmetic on small ints instead of the full concatenation
    _CHUNK_BLOCKS = 32

    def positions_mask(self, flags: int) -> int:
        """Universe-position bitmask from per-block high-bit flags.

        Processed in chunks of :attr:`_CHUNK_BLOCKS` blocks: isolating a
        set bit costs O(chunk) instead of O(total concatenation width),
        which matters when most blocks are flagged.
        """
        mask = 0
        width = self.width
        positions = self.positions
        chunk_bits = width * self._CHUNK_BLOCKS
        chunk_mask = (1 << chunk_bits) - 1
        base = 0
        while flags:
            chunk = flags & chunk_mask
            flags >>= chunk_bits
            while chunk:
                b = chunk & -chunk
                chunk ^= b
                mask |= 1 << positions[base + (b.bit_length() - 1) // width]
            base += self._CHUNK_BLOCKS
        return mask
