"""Required-cube based IRREDUNDANT (paper §3.6).

A cover redundant with respect to minterms may be irredundant with respect
to required cubes, so the unate-recursive IRREDUNDANT does not apply.
Instead the problem *is* a covering problem — rows are the required cubes,
columns the cover cubes — solved with MINCOV exactly or heuristically.

The covering table is built from the coverage-bitset engine: one memoized
``covered_bits`` mask per cover cube, transposed into rows by iterating set
bits, instead of O(|Q|·|F|) per-pair ``ctx.covers`` calls on every
invocation inside the reduce/expand/irredundant loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cubes.cube import Cube
from repro.hf.context import HFContext, TaggedRequired
from repro.mincov import solve_mincov


def irredundant_cover(
    cubes: List[Cube],
    reqs: Sequence[TaggedRequired],
    ctx: HFContext,
    exact: bool = True,
    node_limit: Optional[int] = None,
) -> List[Cube]:
    """A minimum (or greedily small) subset of ``cubes`` covering ``reqs``.

    ``exact`` selects MINCOV's branch-and-bound; the heuristic mode mirrors
    Espresso's ``mincov`` heuristic option.  The incoming cover must cover
    every required cube (an internal invariant of the algorithm).
    """
    if not reqs:
        return []
    with ctx.perf.op_timer("irredundant"):
        ctx.checkpoint("irredundant")
        cov = ctx.coverage
        positions = cov.positions(reqs)
        sel = cov.selection_mask(reqs)
        # Transpose cube coverage masks into covering rows: row ``pos`` lists
        # the cover cubes (columns) whose mask has bit ``pos`` set.  Column
        # indices come out ascending because the outer loop is ascending.
        cols_by_pos: Dict[int, List[int]] = {}
        for j, c in enumerate(cubes):
            mask = cov.covered_bits(c.inbits, c.outbits) & sel
            while mask:
                low = mask & -mask
                cols_by_pos.setdefault(low.bit_length() - 1, []).append(j)
                mask ^= low
        rows = []
        for q, pos in zip(reqs, positions):
            cols = cols_by_pos.get(pos)
            if not cols:
                raise AssertionError(
                    f"cover invariant broken: required cube {q} uncovered"
                )
            rows.append(cols)
        perf = ctx.perf
        perf.mincov_problems += 1
        perf.mincov_rows += len(rows)
        # Fast path: columns demanded by a singleton row are in every
        # feasible solution; if they alone cover all rows, they are the
        # unique minimum and MINCOV has nothing to decide.
        forced = {cols[0] for cols in rows if len(cols) == 1}
        if forced and all(forced.intersection(cols) for cols in rows):
            return [cubes[j] for j in sorted(forced)]
        stats: Dict[str, int] = {}
        chosen = solve_mincov(
            rows,
            len(cubes),
            heuristic=not exact,
            node_limit=node_limit,
            stats=stats,
        )
        perf.mincov_nodes += stats.get("nodes", 0)
        assert chosen is not None
        return [cubes[j] for j in sorted(chosen)]


class IrredundantPass:
    """IRREDUNDANT as a pipeline pass (see :mod:`repro.pipeline`).

    ``final=True`` is the post-MAKE_DHF_PRIME pass: it restores
    irredundancy over the *full* canonical required set (``state.qf``),
    essentials included, instead of the still-uncovered ``state.remaining``.
    """

    name = "irredundant"

    def __init__(self, final: bool = False):
        self.final = final
        if final:
            self.name = "final_irredundant"

    def run(self, state):
        options = state.options
        state.f = irredundant_cover(
            state.f,
            state.qf if self.final else state.remaining,
            state.ctx,
            exact=options.exact_irredundant,
            node_limit=options.irredundant_node_limit,
        )
        return state
