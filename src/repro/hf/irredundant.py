"""Required-cube based IRREDUNDANT (paper §3.6).

A cover redundant with respect to minterms may be irredundant with respect
to required cubes, so the unate-recursive IRREDUNDANT does not apply.
Instead the problem *is* a covering problem — rows are the required cubes,
columns the cover cubes — solved with MINCOV exactly or heuristically.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cubes.cube import Cube
from repro.hf.context import HFContext, TaggedRequired
from repro.mincov import solve_mincov


def irredundant_cover(
    cubes: List[Cube],
    reqs: Sequence[TaggedRequired],
    ctx: HFContext,
    exact: bool = True,
    node_limit: Optional[int] = None,
) -> List[Cube]:
    """A minimum (or greedily small) subset of ``cubes`` covering ``reqs``.

    ``exact`` selects MINCOV's branch-and-bound; the heuristic mode mirrors
    Espresso's ``mincov`` heuristic option.  The incoming cover must cover
    every required cube (an internal invariant of the algorithm).
    """
    if not reqs:
        return []
    rows = []
    for q in reqs:
        cols = [j for j, c in enumerate(cubes) if ctx.covers(c, q)]
        if not cols:
            raise AssertionError(
                f"cover invariant broken: required cube {q} uncovered"
            )
        rows.append(cols)
    chosen = solve_mincov(
        rows, len(cubes), heuristic=not exact, node_limit=node_limit
    )
    assert chosen is not None
    return [cubes[j] for j in sorted(chosen)]
