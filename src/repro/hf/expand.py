"""Hazard-free EXPAND (paper §3.3, Figure 7) on the coverage-bitset engine.

Expansion differs from Espresso-II in two ways.  First, raising an entry may
*force* other entries to be raised: growing a cube across a privileged cube
obliges it to absorb the start point, so every candidate expansion goes
through ``supercube_dhf`` (raising is a binate problem).  Second, the
secondary goal is to contain as many *required cubes* as possible — by the
Hazard-Free Covering theorem nothing else can ever be gained by growing
further, so expansion stops there instead of pushing on to a prime
(dhf-primeness is restored by a final MAKE_DHF_PRIME pass).

A note on the paper's §3.3.1 accelerations (free lists, the overexpanded
cube, and the local sets ``F_a``/``Q_a``/``P_a``/``R_a``): those exist to
avoid re-scanning privileged and OFF cubes on every feasibility probe.
This implementation gets the same effect from
:meth:`repro.hf.context.HFContext.supercube_dhf_bits` — a bitmask inner
loop memoized on ``(input bits, output set)``, so repeated probes against
the same local configuration are O(1) dictionary hits.  Filters (1)-(3) of
the paper (dropping privileged cubes whose start point is already covered,
or that can never be legally reached) are exactly the cases the memoized
chain resolves without growth, so they are not duplicated here.

The gain functions are bit-parallel.  Phase 1 ranks candidates by how many
other cover cubes they absorb: the cover is transposed once into per-bit
masks over cube slots, so a candidate's absorbed set is an AND/OR chain
over its *missing* bits plus one popcount — O(|F|) big-int words per
candidate instead of an O(|F|) Python scan with per-pair method calls.
Phase 2 ranks candidates by newly covered required cubes:
``covered_bits(candidate) & uncovered`` replaces the per-pair
``ctx.covers`` scan.  Both phases preserve the scalar tie-breaking exactly
(first strictly-better candidate in scan order wins).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cubes.cube import Cube, full_input_mask
from repro.hf.context import _MISSING, HFContext, TaggedRequired
from repro._compat import popcount


def expand_cover(
    cubes: List[Cube], reqs: Sequence[TaggedRequired], ctx: HFContext
) -> List[Cube]:
    """Expand every cube of the cover; absorbed cubes are removed.

    ``reqs`` is the set of (canonical) required cubes the cover must keep
    covering; it is used for the secondary expansion goal.  The returned
    list is never larger than the input and always covers at least the same
    required cubes.
    """
    with ctx.perf.op_timer("expand"):
        cov = ctx.coverage
        cov.register(reqs)
        sel = cov.selection_mask(reqs)
        candidates = required_candidates(reqs, ctx)
        slots: List[Optional[Cube]] = list(cubes)
        order = sorted(
            range(len(slots)),
            key=lambda i: (slots[i].num_dc(), slots[i].inbits, slots[i].outbits),
        )
        for idx in order:
            if slots[idx] is None:
                continue
            ctx.checkpoint("expand")
            slots[idx] = expand_one(
                slots[idx], idx, slots, reqs, ctx, sel, candidates
            )
        return [c for c in slots if c is not None]


def _transpose_slots(slots: Sequence[Optional[Cube]], ctx: HFContext):
    """Per-bit slot masks: which live slots have input/output bit ``b`` set.

    With these, "slots NOT contained in a candidate" is the OR of the masks
    of the candidate's missing bits — the containment test for all |F|
    cubes at once.
    """
    in_by_bit = [0] * (2 * ctx.n_inputs)
    out_by_bit = [0] * ctx.n_outputs
    alive = 0
    for k, d in enumerate(slots):
        if d is None:
            continue
        bit = 1 << k
        alive |= bit
        b = d.inbits
        while b:
            low = b & -b
            in_by_bit[low.bit_length() - 1] |= bit
            b ^= low
        ob = d.outbits
        while ob:
            low = ob & -ob
            out_by_bit[low.bit_length() - 1] |= bit
            ob ^= low
    return alive, in_by_bit, out_by_bit


def expand_one(
    cube: Cube,
    idx: int,
    slots: List[Optional[Cube]],
    reqs: Sequence[TaggedRequired],
    ctx: HFContext,
    sel: Optional[int] = None,
    candidates: Optional[dict] = None,
) -> Cube:
    """Expand a single cube: absorb cover cubes first, then required cubes."""
    perf = ctx.perf
    full_in = full_input_mask(ctx.n_inputs)
    full_out = (1 << ctx.n_outputs) - 1
    alive, in_by_bit, out_by_bit = _transpose_slots(slots, ctx)
    others = alive & ~(1 << idx)

    def contained_mask(cand_in: int, cand_out: int) -> int:
        """Live slots (except ``idx``) wholly contained in the candidate."""
        m = others
        missing = full_in & ~cand_in
        while m and missing:
            low = missing & -missing
            m &= ~in_by_bit[low.bit_length() - 1]
            missing ^= low
        missing = full_out & ~cand_out
        while m and missing:
            low = missing & -missing
            m &= ~out_by_bit[low.bit_length() - 1]
            missing ^= low
        return m

    scache = ctx._supercube_cache
    supercube = ctx.supercube_dhf_bits
    probes = sc_hits = 0
    # Phase 1: dhf-feasibly covered cubes of F (primary goal).
    while True:
        best: Optional[Cube] = None
        best_gain = 0
        best_mask = 0
        for j, other in enumerate(slots):
            if other is None or j == idx or cube.contains(other):
                continue
            outbits = cube.outbits | other.outbits
            probes += 1
            r_bits = cube.inbits | other.inbits
            sup_in = scache.get((r_bits, outbits), _MISSING)
            if sup_in is _MISSING:
                sup_in = supercube(r_bits, outbits)
            else:
                sc_hits += 1
            if sup_in is None:
                continue
            absorbed = contained_mask(sup_in, outbits)
            gain = popcount(absorbed)
            if gain > best_gain:
                best_gain = gain
                best = Cube(ctx.n_inputs, sup_in, outbits, ctx.n_outputs)
                best_mask = absorbed
        if best is None:
            break
        cube = best
        m = best_mask
        while m:
            low = m & -m
            slots[low.bit_length() - 1] = None
            m ^= low
        alive &= ~best_mask
        others &= ~best_mask
    perf.expand_probes += probes
    perf.supercube_calls += sc_hits
    perf.supercube_cache_hits += sc_hits
    # Phase 2: dhf-feasibly covered required cubes (secondary goal).
    cube = expand_toward_required(cube, reqs, ctx, sel, candidates)
    return cube


def required_candidates(
    reqs: Sequence[TaggedRequired], ctx: HFContext
) -> dict:
    """Universe position -> ``(input bits, output bit)`` for each required.

    Callers that expand many seeds against the same required set build
    this once and pass it to :func:`expand_toward_required`.
    """
    return {
        pos: (q.canonical.inbits, 1 << q.output)
        for pos, q in zip(ctx.coverage.positions(reqs), reqs)
    }


def expand_toward_required(
    cube: Cube,
    reqs: Sequence[TaggedRequired],
    ctx: HFContext,
    sel: Optional[int] = None,
    candidates: Optional[dict] = None,
) -> Cube:
    """Greedily absorb required cubes while any absorption is dhf-feasible."""
    cov = ctx.coverage
    if sel is None:
        sel = cov.selection_mask(reqs)
    if not sel:
        return cube
    perf = ctx.perf
    covered_bits = cov.covered_bits
    scache = ctx._supercube_cache
    supercube = ctx.supercube_dhf_bits
    probes = sc_hits = 0
    if candidates is None:
        candidates = required_candidates(reqs, ctx)
    cin, cout = cube.inbits, cube.outbits
    # Scanning set bits of ``uncovered`` visits candidates in ascending
    # universe position — the same order as the required list (positions
    # are assigned in registration order), so tie-breaking is unchanged.
    while True:
        ctx.checkpoint("expand")
        uncovered = sel & ~covered_bits(cin, cout)
        if not uncovered:
            break
        best = None
        best_gain = 0
        m = uncovered
        while m:
            low = m & -m
            m ^= low
            q_in, q_out = candidates[low.bit_length() - 1]
            outbits = cout | q_out
            probes += 1
            r_bits = cin | q_in
            sup_in = scache.get((r_bits, outbits), _MISSING)
            if sup_in is _MISSING:
                sup_in = supercube(r_bits, outbits)
            else:
                sc_hits += 1
            if sup_in is None:
                continue
            gain = popcount(covered_bits(sup_in, outbits) & uncovered)
            if gain > best_gain:
                best_gain = gain
                best = (sup_in, outbits)
        if best is None:
            break
        cin, cout = best
    perf.expand_probes += probes
    perf.supercube_calls += sc_hits
    perf.supercube_cache_hits += sc_hits
    if cin == cube.inbits and cout == cube.outbits:
        return cube
    return Cube(ctx.n_inputs, cin, cout, ctx.n_outputs)


class ExpandPass:
    """EXPAND as a pipeline pass (see :mod:`repro.pipeline`)."""

    name = "expand"

    def run(self, state):
        state.f = expand_cover(state.f, state.remaining, state.ctx)
        return state
