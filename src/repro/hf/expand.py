"""Hazard-free EXPAND (paper §3.3, Figure 7).

Expansion differs from Espresso-II in two ways.  First, raising an entry may
*force* other entries to be raised: growing a cube across a privileged cube
obliges it to absorb the start point, so every candidate expansion goes
through ``supercube_dhf`` (raising is a binate problem).  Second, the
secondary goal is to contain as many *required cubes* as possible — by the
Hazard-Free Covering theorem nothing else can ever be gained by growing
further, so expansion stops there instead of pushing on to a prime
(dhf-primeness is restored by a final MAKE_DHF_PRIME pass).

A note on the paper's §3.3.1 accelerations (free lists, the overexpanded
cube, and the local sets ``F_a``/``Q_a``/``P_a``/``R_a``): those exist to
avoid re-scanning privileged and OFF cubes on every feasibility probe.
This implementation gets the same effect from
:meth:`repro.hf.context.HFContext.supercube_dhf_bits` — a bitmask inner
loop memoized on ``(input bits, output set)``, so repeated probes against
the same local configuration are O(1) dictionary hits.  Filters (1)-(3) of
the paper (dropping privileged cubes whose start point is already covered,
or that can never be legally reached) are exactly the cases the memoized
chain resolves without growth, so they are not duplicated here.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cubes.cube import Cube
from repro.hf.context import HFContext, TaggedRequired


def expand_cover(
    cubes: List[Cube], reqs: Sequence[TaggedRequired], ctx: HFContext
) -> List[Cube]:
    """Expand every cube of the cover; absorbed cubes are removed.

    ``reqs`` is the set of (canonical) required cubes the cover must keep
    covering; it is used for the secondary expansion goal.  The returned
    list is never larger than the input and always covers at least the same
    required cubes.
    """
    slots: List[Optional[Cube]] = list(cubes)
    order = sorted(
        range(len(slots)),
        key=lambda i: (slots[i].num_dc(), slots[i].inbits, slots[i].outbits),
    )
    for idx in order:
        if slots[idx] is None:
            continue
        slots[idx] = expand_one(slots[idx], idx, slots, reqs, ctx)
    return [c for c in slots if c is not None]


def expand_one(
    cube: Cube,
    idx: int,
    slots: List[Optional[Cube]],
    reqs: Sequence[TaggedRequired],
    ctx: HFContext,
) -> Cube:
    """Expand a single cube: absorb cover cubes first, then required cubes."""
    # Phase 1: dhf-feasibly covered cubes of F (primary goal).
    while True:
        best = None
        best_gain = 0
        for j, other in enumerate(slots):
            if other is None or j == idx or cube.contains(other):
                continue
            sup_in = ctx.supercube_dhf([cube, other], cube.outbits | other.outbits)
            if sup_in is None:
                continue
            candidate = Cube(
                ctx.n_inputs, sup_in.inbits, cube.outbits | other.outbits, ctx.n_outputs
            )
            gain = sum(
                1
                for k, d in enumerate(slots)
                if d is not None and k != idx and candidate.contains(d)
            )
            if gain > best_gain:
                best_gain, best = gain, candidate
        if best is None:
            break
        cube = best
        for k in range(len(slots)):
            if k != idx and slots[k] is not None and cube.contains(slots[k]):
                slots[k] = None
    # Phase 2: dhf-feasibly covered required cubes (secondary goal).
    cube = expand_toward_required(cube, reqs, ctx)
    return cube


def expand_toward_required(
    cube: Cube, reqs: Sequence[TaggedRequired], ctx: HFContext
) -> Cube:
    """Greedily absorb required cubes while any absorption is dhf-feasible."""
    while True:
        uncovered = [q for q in reqs if not ctx.covers(cube, q)]
        if not uncovered:
            break
        best = None
        best_gain = 0
        for q in uncovered:
            outbits = cube.outbits | (1 << q.output)
            sup_in = ctx.supercube_dhf([cube, q.canonical], outbits)
            if sup_in is None:
                continue
            candidate = Cube(ctx.n_inputs, sup_in.inbits, outbits, ctx.n_outputs)
            gain = sum(1 for s in uncovered if ctx.covers(candidate, s))
            if gain > best_gain:
                best_gain, best = gain, candidate
        if best is None:
            break
        cube = best
    return cube
