"""Hazard-free EXPAND (paper §3.3, Figure 7) on the coverage-bitset engine.

Expansion differs from Espresso-II in two ways.  First, raising an entry may
*force* other entries to be raised: growing a cube across a privileged cube
obliges it to absorb the start point, so every candidate expansion goes
through ``supercube_dhf`` (raising is a binate problem).  Second, the
secondary goal is to contain as many *required cubes* as possible — by the
Hazard-Free Covering theorem nothing else can ever be gained by growing
further, so expansion stops there instead of pushing on to a prime
(dhf-primeness is restored by a final MAKE_DHF_PRIME pass).

A note on the paper's §3.3.1 accelerations (free lists, the overexpanded
cube, and the local sets ``F_a``/``Q_a``/``P_a``/``R_a``): those exist to
avoid re-scanning privileged and OFF cubes on every feasibility probe.
This implementation gets the same effect from
:meth:`repro.hf.context.HFContext.supercube_dhf_bits` — a bitmask inner
loop memoized on ``(input bits, output set)``, so repeated probes against
the same local configuration are O(1) dictionary hits.  Filters (1)-(3) of
the paper (dropping privileged cubes whose start point is already covered,
or that can never be legally reached) are exactly the cases the memoized
chain resolves without growth, so they are not duplicated here.

The gain functions are bit-parallel.  Phase 1 ranks candidates by how many
other cover cubes they absorb: the cover is transposed once into per-bit
masks over cube slots, so a candidate's absorbed set is an AND/OR chain
over its *missing* bits plus one popcount — O(|F|) big-int words per
candidate instead of an O(|F|) Python scan with per-pair method calls.
Phase 2 ranks candidates by newly covered required cubes:
``covered_bits(candidate) & uncovered`` replaces the per-pair
``ctx.covers`` scan.  Both phases preserve the scalar tie-breaking exactly
(first strictly-better candidate in scan order wins).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cubes.cube import Cube, full_input_mask
from repro.hf.context import _MISSING, HFContext, TaggedRequired
from repro._compat import popcount


def expand_cover(
    cubes: List[Cube], reqs: Sequence[TaggedRequired], ctx: HFContext
) -> List[Cube]:
    """Expand every cube of the cover; absorbed cubes are removed.

    ``reqs`` is the set of (canonical) required cubes the cover must keep
    covering; it is used for the secondary expansion goal.  The returned
    list is never larger than the input and always covers at least the same
    required cubes.
    """
    with ctx.perf.op_timer("expand"):
        cov = ctx.coverage
        cov.register(reqs)
        sel = cov.selection_mask(reqs)
        candidates = required_candidates(reqs, ctx)
        slots: List[Optional[Cube]] = list(cubes)
        order = sorted(
            range(len(slots)),
            key=lambda i: (slots[i].num_dc(), slots[i].inbits, slots[i].outbits),
        )
        for idx in order:
            if slots[idx] is None:
                continue
            ctx.checkpoint("expand")
            slots[idx] = expand_one(
                slots[idx], idx, slots, reqs, ctx, sel, candidates
            )
        return [c for c in slots if c is not None]


def _transpose_slots(slots: Sequence[Optional[Cube]], ctx: HFContext):
    """Per-bit slot masks: which live slots have input/output bit ``b`` set.

    With these, "slots NOT contained in a candidate" is the OR of the masks
    of the candidate's missing bits — the containment test for all |F|
    cubes at once.
    """
    in_by_bit = [0] * (2 * ctx.n_inputs)
    out_by_bit = [0] * ctx.n_outputs
    alive = 0
    for k, d in enumerate(slots):
        if d is None:
            continue
        bit = 1 << k
        alive |= bit
        b = d.inbits
        while b:
            low = b & -b
            in_by_bit[low.bit_length() - 1] |= bit
            b ^= low
        ob = d.outbits
        while ob:
            low = ob & -ob
            out_by_bit[low.bit_length() - 1] |= bit
            ob ^= low
    return alive, in_by_bit, out_by_bit


def expand_one(
    cube: Cube,
    idx: int,
    slots: List[Optional[Cube]],
    reqs: Sequence[TaggedRequired],
    ctx: HFContext,
    sel: Optional[int] = None,
    candidates: Optional[dict] = None,
) -> Cube:
    """Expand a single cube: absorb cover cubes first, then required cubes."""
    perf = ctx.perf
    full_in = full_input_mask(ctx.n_inputs)
    full_out = (1 << ctx.n_outputs) - 1
    alive, in_by_bit, out_by_bit = _transpose_slots(slots, ctx)
    others = alive & ~(1 << idx)

    def contained_mask(cand_in: int, cand_out: int) -> int:
        """Live slots (except ``idx``) wholly contained in the candidate."""
        m = others
        missing = full_in & ~cand_in
        while m and missing:
            low = missing & -missing
            m &= ~in_by_bit[low.bit_length() - 1]
            missing ^= low
        missing = full_out & ~cand_out
        while m and missing:
            low = missing & -missing
            m &= ~out_by_bit[low.bit_length() - 1]
            missing ^= low
        return m

    scache = ctx._supercube_cache
    supercube = ctx.supercube_dhf_bits
    probes = sc_hits = 0
    # Anchor-based pair prefilter on the escape rows (if ESSENTIALS built
    # them): a probe X ∪ Y can only be dhf-feasible if the required cubes
    # the two sides cover are pairwise dhf-pairable, so a cleared
    # escape-row bit between one anchor of each side proves the probe
    # returns None — skip it without touching the supercube memo.
    rows_sel = ctx._escape_rows_sel
    anchor_row = None
    slot_anchor: List[Optional[int]] = []
    if rows_sel:
        cbits = ctx.coverage.covered_bits
        acov = cbits(cube.inbits, cube.outbits) & rows_sel
        if acov:
            anchor_row = ctx._escape_rows[(acov & -acov).bit_length() - 1]
            slot_anchor = [None] * len(slots)
    # Phase 1: dhf-feasibly covered cubes of F (primary goal).
    while True:
        best: Optional[Cube] = None
        best_gain = 0
        best_mask = 0
        for j, other in enumerate(slots):
            if other is None or j == idx or cube.contains(other):
                continue
            if anchor_row is not None:
                a = slot_anchor[j]
                if a is None:
                    oc = cbits(other.inbits, other.outbits) & rows_sel
                    a = (oc & -oc).bit_length() - 1 if oc else -1
                    slot_anchor[j] = a
                if a >= 0 and not (anchor_row >> a) & 1:
                    continue
            outbits = cube.outbits | other.outbits
            probes += 1
            r_bits = cube.inbits | other.inbits
            sup_in = scache.get((r_bits, outbits), _MISSING)
            if sup_in is _MISSING:
                sup_in = supercube(r_bits, outbits)
            else:
                sc_hits += 1
            if sup_in is None:
                continue
            absorbed = contained_mask(sup_in, outbits)
            gain = popcount(absorbed)
            if gain > best_gain:
                best_gain = gain
                best = Cube(ctx.n_inputs, sup_in, outbits, ctx.n_outputs)
                best_mask = absorbed
        if best is None:
            break
        cube = best
        m = best_mask
        while m:
            low = m & -m
            slots[low.bit_length() - 1] = None
            m ^= low
        alive &= ~best_mask
        others &= ~best_mask
    perf.expand_probes += probes
    perf.supercube_calls += sc_hits
    perf.supercube_cache_hits += sc_hits
    # Phase 2: dhf-feasibly covered required cubes (secondary goal).
    allowed = None
    if rows_sel:
        acov = cbits(cube.inbits, cube.outbits) & rows_sel
        if acov:
            allowed = ctx._escape_rows[(acov & -acov).bit_length() - 1]
    cube = expand_toward_required(
        cube, reqs, ctx, sel, candidates, allowed=allowed
    )
    return cube


def required_candidates(
    reqs: Sequence[TaggedRequired], ctx: HFContext
) -> dict:
    """Universe position -> ``(input bits, output bit)`` for each required.

    Callers that expand many seeds against the same required set build
    this once and pass it to :func:`expand_toward_required`.
    """
    return {
        pos: (q.canonical.inbits, 1 << q.output)
        for pos, q in zip(ctx.coverage.positions(reqs), reqs)
    }


def expand_toward_required(
    cube: Cube,
    reqs: Sequence[TaggedRequired],
    ctx: HFContext,
    sel: Optional[int] = None,
    candidates: Optional[dict] = None,
    allowed: Optional[int] = None,
    support_out: Optional[List[int]] = None,
) -> Cube:
    """Greedily absorb required cubes while any absorption is dhf-feasible.

    ``allowed`` optionally restricts the candidates probed to a position
    mask of *possibly feasible* partners.  It is an exact filter, not a
    heuristic: callers must guarantee that every excluded candidate's
    probe would return ``None`` (the batched essentials engine passes the
    seed's escape row, whose cleared bits are proven infeasible by the
    seed-level OFF-set check).  Skipped candidates therefore never carry a
    gain, so the greedy choice — and the resulting cube — is unchanged.

    ``support_out``, if given, is a one-element list whose slot is ORed
    with the *gain support* of the run: the union of ``covered_bits`` of
    every feasible probed expansion.  The greedy trace reads the
    selection only through these masks — every gain counts positions
    from them, and a probed candidate sits inside its own supercube's
    covered set — so a caller may memoize the result and keep it valid
    across any selection shrink that misses the support (the batched
    essentials engine's incremental fixpoint relies on exactly this).
    """
    cov = ctx.coverage
    if sel is None:
        sel = cov.selection_mask(reqs)
    if not sel:
        return cube
    perf = ctx.perf
    covered_bits = cov.covered_bits
    scache = ctx._supercube_cache
    supercube = ctx.supercube_dhf_bits
    erows = ctx._escape_rows
    probes = sc_hits = 0
    if candidates is None:
        candidates = required_candidates(reqs, ctx)
    cin, cout = cube.inbits, cube.outbits
    # Exact candidate filter from the escape rows (when ESSENTIALS built
    # them): the expansion's result covers everything the current cube
    # covers, so an absorbable candidate must be pairable with *every*
    # covered position — ``inter``, the running AND of their rows, drops
    # provably infeasible candidates without probing (containment lemma:
    # a cleared pair bit means no dhf-implicant covers both cubes).
    use_rows = bool(erows)
    inter = -1
    prev_cov = 0
    support = 0
    # Combined-cache fast path for the per-probe gain masks: the
    # universe is static inside one expansion, so a fresh cache entry is
    # exactly what ``covered_bits`` would return — stale or missing
    # entries fall back to the real call.  Bypassed in scalar mode.
    ccache = cov._combined_cache if not cov.scalar_mode else None
    ulen = len(cov)
    # Scanning set bits of ``uncovered`` visits candidates in ascending
    # universe position — the same order as the required list (positions
    # are assigned in registration order), so tie-breaking is unchanged.
    cov_now = None
    while True:
        ctx.checkpoint("expand")
        if cov_now is None:
            cov_now = covered_bits(cin, cout)
        uncovered = sel & ~cov_now
        if not uncovered:
            break
        if use_rows:
            new = cov_now & ~prev_cov
            prev_cov = cov_now
            while new:
                b = new & -new
                new ^= b
                row = erows.get(b.bit_length() - 1)
                if row is not None:
                    inter &= row
        best = None
        best_gain = 0
        m = uncovered if allowed is None else uncovered & allowed
        if use_rows:
            m &= inter
        while m:
            low = m & -m
            m ^= low
            pos = low.bit_length() - 1
            if best_gain:
                # Gain bound without probing: an expansion absorbing this
                # candidate covers only required cubes pairable with it
                # *and* with every already-covered cube, so the row AND
                # ``inter`` caps the gain.  Skipping candidates that
                # provably cannot *strictly* beat the running best
                # preserves the greedy trace.
                row = erows.get(pos)
                if (
                    row is not None
                    and popcount(row & uncovered & inter) <= best_gain
                ):
                    continue
            q_in, q_out = candidates[pos]
            outbits = cout | q_out
            probes += 1
            r_bits = cin | q_in
            sup_in = scache.get((r_bits, outbits), _MISSING)
            if sup_in is _MISSING:
                sup_in = supercube(r_bits, outbits)
            else:
                sc_hits += 1
            if sup_in is None:
                continue
            if ccache is not None:
                cached = ccache.get((sup_in, outbits))
                if cached is not None and cached[0] == ulen:
                    perf.coverage_mask_hits += 1
                    cov_sup = cached[1]
                else:
                    cov_sup = covered_bits(sup_in, outbits)
            else:
                cov_sup = covered_bits(sup_in, outbits)
            support |= cov_sup
            gain = popcount(cov_sup & uncovered)
            if gain > best_gain:
                best_gain = gain
                best = (sup_in, outbits)
                best_cov = cov_sup
        if best is None:
            break
        cin, cout = best
        cov_now = best_cov
    perf.expand_probes += probes
    perf.supercube_calls += sc_hits
    perf.supercube_cache_hits += sc_hits
    if support_out is not None:
        support_out[0] |= support
    if cin == cube.inbits and cout == cube.outbits:
        return cube
    return Cube(ctx.n_inputs, cin, cout, ctx.n_outputs)


class ExpandPass:
    """EXPAND as a pipeline pass (see :mod:`repro.pipeline`)."""

    name = "expand"

    def run(self, state):
        state.f = expand_cover(state.f, state.remaining, state.ctx)
        return state
