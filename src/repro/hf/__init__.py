"""Espresso-HF: the paper's heuristic hazard-free minimizer (§3).

The algorithm follows Espresso-II's EXPAND / REDUCE / IRREDUNDANT /
LAST_GASP loop, but every operator is re-derived around *required-cube
covering* under dhf-implicant constraints:

* the initial cover is the dhf-canonicalization of the required cubes
  (:mod:`repro.hf.canonical`),
* EXPAND absorbs whole cover cubes and required cubes through
  ``supercube_dhf`` (:mod:`repro.hf.expand`),
* essentials are detected as *equivalence classes* of dhf-primes
  (:mod:`repro.hf.essentials`),
* REDUCE/IRREDUNDANT/LAST_GASP are required-cube based
  (:mod:`repro.hf.reduce_`, :mod:`repro.hf.irredundant`,
  :mod:`repro.hf.lastgasp`),
* a final MAKE_DHF_PRIME pass raises every cube to a dhf-prime
  (:mod:`repro.hf.make_prime`).
"""

from repro.hf.espresso_hf import (
    espresso_hf,
    espresso_hf_per_output,
    EspressoHFOptions,
    NoSolutionError,
)
from repro.hf.result import HFResult
from repro.hf.context import HFContext, TaggedRequired

__all__ = [
    "espresso_hf",
    "espresso_hf_per_output",
    "EspressoHFOptions",
    "NoSolutionError",
    "HFResult",
    "HFContext",
    "TaggedRequired",
]
