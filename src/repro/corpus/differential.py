"""The exact-vs-heuristic differential: one instance, both flows, a verdict.

This is the corpus-scale version of the paper's Figure-8 comparison, run
as a shard-executor worker body.  For every instance it

1. runs **Espresso-HF** (:func:`repro.hf.espresso_hf`) and re-verifies
   any cover it returns under the **Theorem 2.11** checker — the
   heuristic is never trusted, every cover in the scoreboard is verified;
2. runs the **exact** flow (:func:`repro.exact.exact_hazard_free_minimize`)
   under a stage/time budget;
3. classifies the pair into a verdict, split into *explained* and
   *unexplained*:

   ================== =========== ==========================================
   verdict            explained?  meaning
   ================== =========== ==========================================
   exact_match        yes         both solved, same cardinality
   heuristic_larger   yes         both solved, HF cover larger (the paper's
                                  expected heuristic gap; ratio recorded)
   both_no_solution   yes         both say no hazard-free cover exists
   exact_unavailable  yes         exact blew a stage budget/deadline — the
                                  paper's own "could not be solved" regime
   timeout            yes         the whole task hit the executor timeout
   hf_budget          yes         HF's run budget expired pre-canonicalize
   exact_suboptimal   **no**      HF found a *smaller* cover than "exact" —
                                  impossible if exact is exact
   solvability_mismatch **no**    the two flows (or the manifest
                                  annotation) disagree about existence
   hf_verify_failed   **no**      HF's cover failed Theorem 2.11
   hf_error           **no**      HF crashed or misbehaved
   ================== =========== ==========================================

Every unexplained verdict writes a replayable repro bundle
(:mod:`repro.guard.bundle`) when ``bundle_dir`` is set — corpus runs must
hand back evidence, not anecdotes.  Per-task metrics land in a
:class:`repro.obs.MetricsRegistry` snapshot on the row; snapshots merge
associatively, so shards can complete out of order (or on other machines)
and the scoreboard still adds up.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

#: verdicts that indicate a real, unexplained disagreement — the corpus
#: CI gate fails if any of these survive a run
UNEXPLAINED_VERDICTS = (
    "exact_suboptimal",
    "solvability_mismatch",
    "hf_verify_failed",
    "hf_error",
)

#: all verdicts the worker can emit (executor-level timeouts are stamped
#: by the parent and folded in by the scoreboard)
VERDICTS = (
    "exact_match",
    "heuristic_larger",
    "both_no_solution",
    "exact_unavailable",
    "hf_budget",
    "malformed",
) + UNEXPLAINED_VERDICTS


def differential_payload(
    name: str,
    pla_text: str,
    stratum: str = "",
    solvable: Optional[bool] = None,
    timeout_s: Optional[float] = None,
    options=None,
    exact_budget: Optional[Dict[str, Any]] = None,
    inject: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Work item for one corpus instance's differential run.

    ``solvable`` is the manifest's ground-truth annotation (computed from
    Theorem 4.1 at generation time); when provided, both flows are
    cross-checked against it.  ``exact_budget`` maps onto
    :class:`repro.exact.ExactBudget` fields.  ``inject`` is the guard
    runner's test-only fault seam (kills, delays, pipeline defects) —
    corpus fault-injection tests are built on it.
    """
    from repro.guard.bundle import options_to_dict

    payload: Dict[str, Any] = {
        "worker": "differential",
        "kind": "pla",
        "name": name,
        "pla_text": pla_text,
        "stratum": stratum,
        "options": options_to_dict(options),
        "timeout_s": timeout_s,
    }
    if solvable is not None:
        payload["solvable"] = bool(solvable)
    if exact_budget:
        payload["exact_budget"] = dict(exact_budget)
    if inject:
        payload["inject"] = dict(inject)
    return payload


DEFAULT_EXACT_BUDGET: Dict[str, Any] = {
    "prime_limit": 20_000,
    "transform_limit": 50_000,
    "covering_node_limit": 200_000,
    "time_limit_s": 20.0,
}


def _classify(
    hf_status: str,
    hf_cubes: Optional[int],
    hf_verified: Optional[bool],
    exact_status: str,
    exact_cubes: Optional[int],
    solvable_expected: Optional[bool],
) -> str:
    if hf_status in ("crash", "invariant_violation"):
        return "hf_error"
    # a cover that fails Theorem 2.11 is unexplained no matter what status
    # the heuristic attached to it
    if hf_verified is False:
        return "hf_verify_failed"
    if hf_status == "budget_exceeded":
        return "hf_budget"
    if exact_status in ("exact_failure", "crash"):
        # budget/stage explosion: the paper's "could not be solved" column
        return "exact_unavailable"
    hf_solved = hf_status in ("ok", "degraded")
    exact_solved = exact_status == "ok"
    if hf_solved and exact_solved:
        if solvable_expected is False:
            return "solvability_mismatch"
        assert hf_cubes is not None and exact_cubes is not None
        if hf_cubes < exact_cubes:
            return "exact_suboptimal"
        return "exact_match" if hf_cubes == exact_cubes else "heuristic_larger"
    if not hf_solved and not exact_solved:
        if solvable_expected is True:
            return "solvability_mismatch"
        return "both_no_solution"
    return "solvability_mismatch"


def run_differential_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one differential work item in-process; returns a row.

    This is the body the shard executor's subprocess runs; tests may call
    it directly.  It never raises — every outcome is a structured row.
    """
    from repro.exact import ExactBudget, ExactFailure, exact_hazard_free_minimize
    from repro.guard.bundle import (
        describe_exception,
        options_from_dict,
        write_bundle,
    )
    from repro.guard.errors import (
        BudgetExceeded,
        InvariantViolation,
        MalformedInstance,
        NoSolutionError,
    )
    from repro.guard.runner import _apply_option_faults, _apply_preflight_faults
    from repro.hazards.verify import verify_hazard_free_cover
    from repro.hf.espresso_hf import espresso_hf
    from repro.obs import MetricsRegistry, TIME_BUCKETS_S
    from repro.pla import parse_pla
    from repro.pla.reader import PlaError

    name = payload.get("name", "instance")
    stratum = payload.get("stratum", "")
    solvable_expected = payload.get("solvable")
    row: Dict[str, Any] = {
        "name": name,
        "stratum": stratum,
        "status": "ok",
        "verdict": None,
        "explained": True,
        "bundle_path": None,
    }
    inject = payload.get("inject") or {}
    if inject:
        _apply_preflight_faults(inject, payload)
    try:
        instance = parse_pla(payload["pla_text"], name=name).to_instance()
    except (PlaError, MalformedInstance, ValueError, KeyError) as exc:
        row.update(
            status="malformed",
            verdict="malformed",
            error=f"{type(exc).__name__}: {exc}",
        )
        return row
    row["n_inputs"] = instance.n_inputs
    row["n_outputs"] = instance.n_outputs

    options = options_from_dict(payload.get("options", {}))
    if inject:
        _apply_option_faults(inject, options)

    # --- heuristic side -------------------------------------------------
    hf_cubes: Optional[int] = None
    hf_verified: Optional[bool] = None
    hf_cover = None
    t0 = time.perf_counter()
    try:
        hf_result = espresso_hf(instance, options)
        hf_status = hf_result.status  # "ok" or "degraded"
        hf_cubes = hf_result.num_cubes
        hf_cover = hf_result.cover
    except NoSolutionError:
        hf_status = "no_solution"
    except BudgetExceeded:
        hf_status = "budget_exceeded"
    except InvariantViolation as exc:
        hf_status = "invariant_violation"
        row["error"] = str(exc)
    except Exception as exc:  # noqa: BLE001 - isolation boundary
        hf_status = "crash"
        row["error"] = describe_exception(exc)
    hf_time = time.perf_counter() - t0
    if hf_cover is not None:
        # Theorem 2.11 re-verification: non-negotiable for scoreboard rows
        violations = verify_hazard_free_cover(instance, hf_cover)
        hf_verified = not violations
        if violations:
            row["error"] = "; ".join(str(v) for v in violations[:3])

    # --- exact side -----------------------------------------------------
    budget_dict = dict(DEFAULT_EXACT_BUDGET)
    budget_dict.update(payload.get("exact_budget") or {})
    exact_cubes: Optional[int] = None
    exact_stage: Optional[str] = None
    t0 = time.perf_counter()
    try:
        exact_result = exact_hazard_free_minimize(
            instance, budget=ExactBudget(**budget_dict)
        )
        exact_status = exact_result.status  # "ok" or "no_solution"
        if exact_status == "ok":
            exact_cubes = exact_result.num_cubes
    except ExactFailure as exc:
        exact_status = "exact_failure"
        exact_stage = exc.stage
    except Exception as exc:  # noqa: BLE001 - isolation boundary
        exact_status = "crash"
        row.setdefault("error", describe_exception(exc))
    exact_time = time.perf_counter() - t0

    # --- verdict --------------------------------------------------------
    verdict = _classify(
        hf_status,
        hf_cubes,
        hf_verified,
        exact_status,
        exact_cubes,
        solvable_expected,
    )
    explained = verdict not in UNEXPLAINED_VERDICTS
    row.update(
        {
            "verdict": verdict,
            "explained": explained,
            "hf_status": hf_status,
            "hf_cubes": hf_cubes,
            "hf_verified": hf_verified,
            "hf_time_s": round(hf_time, 6),
            "exact_status": exact_status,
            "exact_stage": exact_stage,
            "exact_cubes": exact_cubes,
            "exact_time_s": round(exact_time, 6),
            "ratio": (
                round(hf_cubes / exact_cubes, 6)
                if hf_cubes is not None and exact_cubes not in (None, 0)
                else None
            ),
            "solvable_expected": solvable_expected,
        }
    )

    # --- evidence for unexplained disagreements -------------------------
    bundle_dir = payload.get("bundle_dir")
    if not explained and bundle_dir:
        try:
            row["bundle_path"] = write_bundle(
                instance,
                failure_kind="differential_disagreement",
                failure_message=(
                    f"verdict={verdict} hf={hf_status}/{hf_cubes} "
                    f"exact={exact_status}/{exact_cubes} "
                    f"expected_solvable={solvable_expected}"
                ),
                failure_phase="differential",
                options=options,
                bundle_dir=bundle_dir,
            )
        except Exception:  # noqa: BLE001 - bundling is best-effort
            pass

    # --- associative metrics snapshot -----------------------------------
    registry = MetricsRegistry()
    registry.counter("corpus.instances").inc()
    registry.counter(f"corpus.verdict.{verdict}").inc()
    if not explained:
        registry.counter("corpus.unexplained").inc()
    registry.histogram("corpus.hf_seconds", TIME_BUCKETS_S).observe(hf_time)
    registry.histogram("corpus.exact_seconds", TIME_BUCKETS_S).observe(exact_time)
    if stratum:
        registry.counter(f"corpus.{stratum}.instances").inc()
        registry.counter(f"corpus.{stratum}.verdict.{verdict}").inc()
        registry.histogram(
            f"corpus.{stratum}.hf_seconds", TIME_BUCKETS_S
        ).observe(hf_time)
        registry.histogram(
            f"corpus.{stratum}.exact_seconds", TIME_BUCKETS_S
        ).observe(exact_time)
    if hf_cubes is not None and exact_cubes is not None:
        registry.counter("corpus.cover_cubes_hf").inc(hf_cubes)
        registry.counter("corpus.cover_cubes_exact").inc(exact_cubes)
        if stratum:
            registry.counter(f"corpus.{stratum}.cover_cubes_hf").inc(hf_cubes)
            registry.counter(f"corpus.{stratum}.cover_cubes_exact").inc(
                exact_cubes
            )
    row["metrics"] = registry.snapshot()
    return row
