"""Frozen-corpus manifest: canonical JSON, content hashes, round-trip I/O.

A corpus is *defined* by ``(seed, count, strata)`` — the generator is
deterministic — but a frozen corpus on disk is *trusted* through its
manifest: one canonical JSON document listing every instance with its
SHA-256 content hash.  Two properties matter and are pinned by
``tests/test_corpus_gen.py``:

* **byte-identity** — :func:`manifest_json` serializes with sorted keys,
  fixed separators, and no floats, so the same ``(seed, count, strata)``
  yields the same manifest bytes on every run and platform;
* **tamper evidence** — :func:`load_frozen_corpus` re-hashes every PLA
  file against the manifest and raises :class:`CorpusIntegrityError` on
  any mismatch, so a stale or hand-edited corpus cannot silently skew a
  differential scoreboard.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: bump when the manifest schema changes shape
MANIFEST_VERSION = 1

MANIFEST_SCHEMA = "repro.corpus/manifest"

#: manifest filename inside a frozen corpus directory
MANIFEST_NAME = "manifest.json"

#: subdirectory holding the PLA files
INSTANCES_DIR = "instances"


class CorpusIntegrityError(ValueError):
    """A frozen corpus does not match its manifest (hash/count mismatch)."""


def instance_digest(pla_text: str) -> str:
    """SHA-256 content hash of one instance's PLA text."""
    return hashlib.sha256(pla_text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ManifestEntry:
    """One corpus instance as recorded in the manifest (no PLA text)."""

    name: str
    stratum: str
    sha256: str
    n_inputs: int
    n_outputs: int
    n_transitions: int
    solvable: bool
    #: path of the PLA file relative to the corpus directory; empty for
    #: in-memory corpora that were never frozen
    path: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "stratum": self.stratum,
            "sha256": self.sha256,
            "n_inputs": self.n_inputs,
            "n_outputs": self.n_outputs,
            "n_transitions": self.n_transitions,
            "solvable": self.solvable,
            "path": self.path,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ManifestEntry":
        return cls(
            name=str(data["name"]),
            stratum=str(data["stratum"]),
            sha256=str(data["sha256"]),
            n_inputs=int(data["n_inputs"]),
            n_outputs=int(data["n_outputs"]),
            n_transitions=int(data["n_transitions"]),
            solvable=bool(data["solvable"]),
            path=str(data.get("path", "")),
        )


@dataclass(frozen=True)
class CorpusManifest:
    """The whole manifest: generation parameters plus one entry per instance."""

    seed: int
    count: int
    entries: List[ManifestEntry] = field(default_factory=list)
    strata: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": MANIFEST_SCHEMA,
            "version": MANIFEST_VERSION,
            "seed": self.seed,
            "count": self.count,
            "strata": dict(sorted(self.strata.items())),
            "instances": [e.as_dict() for e in self.entries],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CorpusManifest":
        if data.get("schema") != MANIFEST_SCHEMA:
            raise CorpusIntegrityError(
                f"not a corpus manifest (schema={data.get('schema')!r})"
            )
        if int(data.get("version", -1)) != MANIFEST_VERSION:
            raise CorpusIntegrityError(
                f"unsupported manifest version {data.get('version')!r} "
                f"(this build reads version {MANIFEST_VERSION})"
            )
        return cls(
            seed=int(data["seed"]),
            count=int(data["count"]),
            entries=[ManifestEntry.from_dict(e) for e in data["instances"]],
            strata={str(k): int(v) for k, v in data.get("strata", {}).items()},
        )

    def stratum_counts(self) -> Dict[str, int]:
        """Per-stratum instance counts recomputed from the entries."""
        counts: Dict[str, int] = {}
        for e in self.entries:
            counts[e.stratum] = counts.get(e.stratum, 0) + 1
        return counts


def manifest_json(manifest: CorpusManifest) -> str:
    """Canonical (byte-reproducible) JSON serialization of a manifest."""
    return (
        json.dumps(
            manifest.as_dict(),
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
        )
        + "\n"
    )


def parse_manifest(text: str) -> CorpusManifest:
    return CorpusManifest.from_dict(json.loads(text))


def write_frozen_corpus(
    corpus_dir: Union[str, Path],
    instances: List["CorpusInstance"],  # noqa: F821 - generator.CorpusInstance
    seed: int,
) -> CorpusManifest:
    """Freeze generated instances to ``corpus_dir``: PLAs + manifest.

    Layout::

        <corpus_dir>/manifest.json
        <corpus_dir>/instances/<name>.pla
    """
    corpus_dir = Path(corpus_dir)
    inst_dir = corpus_dir / INSTANCES_DIR
    inst_dir.mkdir(parents=True, exist_ok=True)
    entries: List[ManifestEntry] = []
    strata: Dict[str, int] = {}
    for ci in instances:
        rel = f"{INSTANCES_DIR}/{ci.name}.pla"
        (corpus_dir / rel).write_text(ci.pla_text, encoding="utf-8")
        entries.append(ci.manifest_entry(path=rel))
        strata[ci.stratum] = strata.get(ci.stratum, 0) + 1
    manifest = CorpusManifest(
        seed=seed, count=len(entries), entries=entries, strata=strata
    )
    (corpus_dir / MANIFEST_NAME).write_text(
        manifest_json(manifest), encoding="utf-8"
    )
    return manifest


def load_frozen_corpus(
    corpus_dir: Union[str, Path],
    verify_hashes: bool = True,
    limit: Optional[int] = None,
) -> List["CorpusInstance"]:
    """Load a frozen corpus back into memory, verifying content hashes.

    Returns :class:`repro.corpus.generator.CorpusInstance` values in
    manifest order (the generator's order, so shard numbering is stable).
    ``limit`` truncates — handy for smoke slices over a large frozen
    corpus.
    """
    from repro.corpus.generator import CorpusInstance

    corpus_dir = Path(corpus_dir)
    manifest = parse_manifest(
        (corpus_dir / MANIFEST_NAME).read_text(encoding="utf-8")
    )
    if len(manifest.entries) != manifest.count:
        raise CorpusIntegrityError(
            f"manifest count {manifest.count} != {len(manifest.entries)} entries"
        )
    out: List[CorpusInstance] = []
    for entry in manifest.entries[: limit if limit is not None else None]:
        if not entry.path:
            raise CorpusIntegrityError(
                f"{entry.name}: manifest entry has no path (not a frozen corpus)"
            )
        pla_text = (corpus_dir / entry.path).read_text(encoding="utf-8")
        if verify_hashes and instance_digest(pla_text) != entry.sha256:
            raise CorpusIntegrityError(
                f"{entry.name}: PLA content hash does not match the manifest "
                "(corpus and manifest are out of sync; re-freeze with "
                "scripts/freeze_corpus.py)"
            )
        out.append(
            CorpusInstance(
                name=entry.name,
                stratum=entry.stratum,
                pla_text=pla_text,
                sha256=entry.sha256,
                n_inputs=entry.n_inputs,
                n_outputs=entry.n_outputs,
                n_transitions=entry.n_transitions,
                solvable=entry.solvable,
            )
        )
    return out
