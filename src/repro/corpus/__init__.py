"""Corpus scale-out: stratified generation, sharded execution, differential.

The Figure-8 comparison in the paper covers 15 circuits.  This package
scales it to thousands (ROADMAP item 1):

* :mod:`repro.corpus.generator` — seeded, size-stratified corpus
  synthesis (1k–10k instances; unsolvable and degenerate strata included
  on purpose);
* :mod:`repro.corpus.manifest` — canonical byte-reproducible manifests
  with per-instance content hashes, freeze/load round-trip;
* :mod:`repro.corpus.executor` — work-stealing shard executor: a shared
  task queue over crash-isolated single-shot worker processes with
  per-instance timeouts, resumable NDJSON checkpointing, and a stdio
  transport seam for remote shards (:mod:`repro.corpus.worker`);
* :mod:`repro.corpus.differential` — the exact-vs-heuristic differential
  worker (every heuristic cover re-verified under Theorem 2.11, every
  disagreement classified, unexplained ones bundled for replay);
* :mod:`repro.corpus.scoreboard` — associative merging of out-of-order
  shard rows and :mod:`repro.obs` metric snapshots into a corpus-wide
  quality/latency scoreboard.

Entry point: ``scripts/corpus_run.py`` (see docs/CORPUS.md).
"""

from repro.corpus.generator import (
    DEFAULT_STRATA,
    CorpusInstance,
    StratumSpec,
    allocate_counts,
    build_stratum_instance,
    derive_seed,
    generate_corpus,
    strata_by_name,
)
from repro.corpus.manifest import (
    CorpusIntegrityError,
    CorpusManifest,
    ManifestEntry,
    instance_digest,
    load_frozen_corpus,
    manifest_json,
    parse_manifest,
    write_frozen_corpus,
)

__all__ = [
    "DEFAULT_STRATA",
    "CorpusInstance",
    "CorpusIntegrityError",
    "CorpusManifest",
    "ManifestEntry",
    "StratumSpec",
    "allocate_counts",
    "build_stratum_instance",
    "derive_seed",
    "generate_corpus",
    "instance_digest",
    "load_frozen_corpus",
    "manifest_json",
    "parse_manifest",
    "strata_by_name",
    "write_frozen_corpus",
    # lazy (PEP 562) — the executor/differential layers import the
    # minimizer engines back, keep package import light
    "ShardExecutor",
    "ExecutorStats",
    "run_corpus",
    "differential_payload",
    "run_differential_payload",
    "build_scoreboard",
    "merge_row_metrics",
    "format_scoreboard",
    "unexplained_rows",
]

_LAZY = {
    "ShardExecutor": "repro.corpus.executor",
    "ExecutorStats": "repro.corpus.executor",
    "run_corpus": "repro.corpus.executor",
    "differential_payload": "repro.corpus.differential",
    "run_differential_payload": "repro.corpus.differential",
    "build_scoreboard": "repro.corpus.scoreboard",
    "merge_row_metrics": "repro.corpus.scoreboard",
    "format_scoreboard": "repro.corpus.scoreboard",
    "unexplained_rows": "repro.corpus.scoreboard",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
