"""Work-stealing shard executor: shared queue, crash isolation, resume.

The generalization of :mod:`repro.guard.runner`'s batch runner that a
1k–10k instance corpus needs.  Three ideas compose:

**Work stealing over a shared queue.**  Payloads go into one pending
queue; up to ``jobs`` worker *slots* pull from it, and a slot takes the
next task the moment its previous one finishes.  Instance cost in a
stratified corpus is wildly non-uniform (a ``medium`` exact run can cost
1000× a ``tiny`` one), so static sharding would leave most slots idle
behind the slowest shard; the shared queue keeps every slot busy until
the queue drains.

**Crash isolation via single-shot processes.**  Each task runs in its own
freshly forked process (the PR 7 crash-safe design): a worker SIGKILLed
mid-task yields a structured ``worker_crashed`` row for *that* task —
exit signal attached, retried up to ``retries`` times since a vanished
worker does not indict the instance — while every other task proceeds.
A long-lived pool cannot promise that (a dead pool worker can hang
``Pool.map`` forever), and a hang is the one failure a 10k-instance
overnight run cannot absorb.  Per-task wall-clock timeouts terminate
overrunners the same way.

**Resumable checkpointing.**  Completed rows append to an NDJSON
checkpoint file keyed by task id, flushed per row.  Re-running the same
command with the same checkpoint path skips exactly the completed tasks
(a torn final line from a killed run is detected and ignored), so an
interrupted overnight sweep resumes instead of restarting.

The worker body is dispatched per-payload through :data:`WORKERS` —
``"minimize"`` (the guard runner's single-minimizer body) or
``"differential"`` (:mod:`repro.corpus.differential`) — and the NDJSON
line codec (:func:`encode_line` / :func:`decode_line`) doubles as the
transport seam: :mod:`repro.corpus.worker` reads task lines on stdin and
writes row lines on stdout, so a shard can run on a remote machine behind
nothing fancier than an ssh pipe.
"""

from __future__ import annotations

import json
import multiprocessing
import queue as queue_mod
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union


def _minimize_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    from repro.guard.runner import minimize_payload

    return minimize_payload(payload)


def _differential_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    from repro.corpus.differential import run_differential_payload

    return run_differential_payload(payload)


#: payload["worker"] -> in-process body; every body returns a structured
#: row and never raises (the isolation boundary catches what slips)
WORKERS: Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]] = {
    "minimize": _minimize_worker,
    "differential": _differential_worker,
}


def resolve_worker(payload: Dict[str, Any]) -> Callable[[Dict[str, Any]], Dict[str, Any]]:
    name = payload.get("worker", "minimize")
    worker = WORKERS.get(name)
    if worker is None:
        raise ValueError(
            f"unknown worker {name!r}; known: {sorted(WORKERS)}"
        )
    return worker


def task_id(payload: Dict[str, Any]) -> str:
    """Stable identity of one task (checkpoint key)."""
    tid = payload.get("task_id") or payload.get("name")
    if not tid:
        raise ValueError("payload needs a 'task_id' or 'name' key")
    return str(tid)


# ----------------------------------------------------------------------
# NDJSON line codec (the transport seam)
# ----------------------------------------------------------------------


def encode_line(obj: Dict[str, Any]) -> str:
    """One NDJSON line (no trailing newline; caller appends)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def decode_line(line: str) -> Optional[Dict[str, Any]]:
    """Parse one NDJSON line; ``None`` for blank or torn lines."""
    line = line.strip()
    if not line:
        return None
    try:
        obj = json.loads(line)
    except json.JSONDecodeError:
        return None
    return obj if isinstance(obj, dict) else None


# ----------------------------------------------------------------------
# Checkpoint
# ----------------------------------------------------------------------


class Checkpoint:
    """Append-only NDJSON record of completed tasks, keyed by task id.

    Each line is ``{"task": <id>, "row": {...}}``.  Loading tolerates a
    torn final line (the writer died mid-append); appends flush per row
    so at most one row can ever be torn.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._fh = None

    def load(self) -> Dict[str, Dict[str, Any]]:
        rows: Dict[str, Dict[str, Any]] = {}
        if not self.path.exists():
            return rows
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                obj = decode_line(line)
                if obj is None or "task" not in obj or "row" not in obj:
                    continue
                rows[str(obj["task"])] = obj["row"]
        return rows

    def append(self, tid: str, row: Dict[str, Any]) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")
        self._fh.write(encode_line({"task": tid, "row": row}) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


# ----------------------------------------------------------------------
# Isolated single-task execution (the shard cell)
# ----------------------------------------------------------------------


def _child_main(payload: Dict[str, Any], out_queue) -> None:  # pragma: no cover
    """Subprocess entry: resolve the worker, run, ship the row, exit."""
    try:
        row = resolve_worker(payload)(payload)
    except BaseException as exc:  # noqa: BLE001 - last-resort isolation
        from repro.guard.bundle import describe_exception

        row = {
            "name": payload.get("name", "instance"),
            "status": "crash",
            "error": describe_exception(exc),
            "bundle_path": None,
        }
    try:
        out_queue.put(row)
    except Exception:  # noqa: BLE001 - parent will report worker_crashed
        pass


def run_task_isolated(
    payload: Dict[str, Any],
    timeout_s: Optional[float] = None,
) -> Dict[str, Any]:
    """Run one task in its own process with a wall-clock timeout.

    The single-slot building block (``jobs=1`` semantics of the executor,
    and the remote shard's per-task cell in :mod:`repro.corpus.worker`).
    """
    from repro.guard.runner import _timeout_bundle, _worker_crashed_row

    timeout = payload.get("timeout_s") or timeout_s
    name = payload.get("name", "instance")
    ctx = multiprocessing.get_context()
    out_queue = ctx.Queue()
    proc = ctx.Process(target=_child_main, args=(payload, out_queue), daemon=True)
    t0 = time.perf_counter()
    proc.start()
    deadline = None if timeout is None else t0 + timeout
    row: Optional[Dict[str, Any]] = None
    while row is None:
        try:
            row = out_queue.get(timeout=0.05)
        except queue_mod.Empty:
            if deadline is not None and time.perf_counter() >= deadline:
                proc.terminate()
                proc.join()
                row = {
                    "name": name,
                    "status": "timeout",
                    "time_s": round(time.perf_counter() - t0, 6),
                    "error": f"exceeded per-instance timeout of {timeout:g}s",
                    "bundle_path": _timeout_bundle(
                        payload, payload.get("bundle_dir"), timeout
                    ),
                }
                break
            if not proc.is_alive():
                try:
                    row = out_queue.get(timeout=0.5)
                except queue_mod.Empty:
                    row = _worker_crashed_row(
                        name, proc.exitcode, time.perf_counter() - t0
                    )
                break
    proc.join(timeout=1.0)
    if proc.is_alive():  # pragma: no cover - defensive cleanup
        proc.terminate()
        proc.join()
    row.setdefault("time_s", round(time.perf_counter() - t0, 6))
    return row


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------


@dataclass
class ExecutorStats:
    """What one :meth:`ShardExecutor.run` actually did."""

    total: int = 0
    executed: int = 0
    from_checkpoint: int = 0
    retries: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    wall_s: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "total": self.total,
            "executed": self.executed,
            "from_checkpoint": self.from_checkpoint,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_crashes": self.worker_crashes,
            "wall_s": round(self.wall_s, 6),
        }


@dataclass
class _Slot:
    proc: Any
    queue: Any
    idx: int
    t0: float
    deadline: Optional[float]


class ShardExecutor:
    """Shared-queue scheduler over crash-isolated single-shot processes.

    Parameters
    ----------
    jobs:
        concurrent worker slots (``<= 1`` runs tasks isolated but
        serially — same rows, no concurrency).
    timeout_s:
        default per-task wall-clock timeout; a ``timeout_s`` payload key
        overrides per task.
    checkpoint:
        path of the resumable NDJSON checkpoint; ``None`` disables.
    retries:
        how many times a ``worker_crashed`` task is re-queued before its
        crash row is accepted as final.  Only worker death retries —
        every other status is an answer about the instance, and retrying
        a timeout would double the cost of exactly the tasks that are
        already the most expensive.
    on_row:
        callback ``(task_id, row) -> None`` fired once per *final* row
        (checkpointed rows replay through it on resume too, flagged by
        ``row["from_checkpoint"]``).
    """

    def __init__(
        self,
        jobs: int = 2,
        timeout_s: Optional[float] = None,
        checkpoint: Optional[Union[str, Path]] = None,
        retries: int = 1,
        bundle_dir: Optional[str] = None,
        on_row: Optional[Callable[[str, Dict[str, Any]], None]] = None,
    ):
        self.jobs = max(1, int(jobs))
        self.timeout_s = timeout_s
        self.checkpoint = Checkpoint(checkpoint) if checkpoint else None
        self.retries = max(0, int(retries))
        self.bundle_dir = bundle_dir
        self.on_row = on_row

    def run(
        self, payloads: List[Dict[str, Any]]
    ) -> Tuple[List[Dict[str, Any]], ExecutorStats]:
        """Run every payload; returns (rows in payload order, stats).

        Rows come back in *payload* order regardless of completion order,
        so downstream merges are deterministic; the scoreboard's metric
        merge is associative precisely so this ordering guarantee is a
        convenience, not a correctness requirement.
        """
        t_start = time.perf_counter()
        stats = ExecutorStats(total=len(payloads))
        ids = [task_id(p) for p in payloads]
        if len(set(ids)) != len(ids):
            dupe = next(i for i in ids if ids.count(i) > 1)
            raise ValueError(f"duplicate task id {dupe!r} in corpus payloads")
        if self.bundle_dir:
            payloads = [dict(p, bundle_dir=self.bundle_dir) for p in payloads]

        rows: List[Optional[Dict[str, Any]]] = [None] * len(payloads)
        done = self.checkpoint.load() if self.checkpoint else {}
        pending: deque[int] = deque()
        attempts: Dict[int, int] = {}
        for i, tid in enumerate(ids):
            if tid in done:
                row = dict(done[tid], from_checkpoint=True)
                rows[i] = row
                stats.from_checkpoint += 1
                if self.on_row:
                    self.on_row(tid, row)
            else:
                pending.append(i)
                attempts[i] = 0

        active: Dict[int, _Slot] = {}
        ctx = multiprocessing.get_context()
        try:
            while pending or active:
                # fill free slots from the shared queue (the "steal")
                while pending and len(active) < self.jobs:
                    idx = pending.popleft()
                    payload = dict(payloads[idx], attempt=attempts[idx])
                    out_queue = ctx.Queue()
                    proc = ctx.Process(
                        target=_child_main,
                        args=(payload, out_queue),
                        daemon=True,
                    )
                    t0 = time.perf_counter()
                    proc.start()
                    timeout = payload.get("timeout_s") or self.timeout_s
                    active[idx] = _Slot(
                        proc=proc,
                        queue=out_queue,
                        idx=idx,
                        t0=t0,
                        deadline=None if timeout is None else t0 + timeout,
                    )
                progressed = False
                for idx in list(active):
                    slot = active[idx]
                    row = self._poll_slot(slot, payloads[idx])
                    if row is None:
                        continue
                    progressed = True
                    del active[idx]
                    if (
                        row.get("status") == "worker_crashed"
                        and attempts[idx] < self.retries
                    ):
                        attempts[idx] += 1
                        stats.retries += 1
                        pending.append(idx)
                        continue
                    self._finish(ids[idx], idx, row, rows, stats)
                if not progressed and active:
                    time.sleep(0.01)
        finally:
            for slot in active.values():  # pragma: no cover - interrupt path
                slot.proc.terminate()
                slot.proc.join()
            if self.checkpoint:
                self.checkpoint.close()
        stats.wall_s = time.perf_counter() - t_start
        return [r for r in rows if r is not None], stats

    def _poll_slot(
        self, slot: _Slot, payload: Dict[str, Any]
    ) -> Optional[Dict[str, Any]]:
        from repro.guard.runner import _timeout_bundle, _worker_crashed_row

        row: Optional[Dict[str, Any]] = None
        try:
            row = slot.queue.get_nowait()
        except queue_mod.Empty:
            now = time.perf_counter()
            if slot.deadline is not None and now >= slot.deadline:
                slot.proc.terminate()
                slot.proc.join()
                timeout = slot.deadline - slot.t0
                row = {
                    "name": payload.get("name", "instance"),
                    "status": "timeout",
                    "time_s": round(now - slot.t0, 6),
                    "error": f"exceeded per-instance timeout of {timeout:g}s",
                    "bundle_path": _timeout_bundle(
                        payload, payload.get("bundle_dir"), timeout
                    ),
                }
            elif not slot.proc.is_alive():
                try:
                    row = slot.queue.get(timeout=0.5)
                except queue_mod.Empty:
                    row = _worker_crashed_row(
                        payload.get("name", "instance"),
                        slot.proc.exitcode,
                        now - slot.t0,
                    )
        if row is not None:
            row.setdefault("time_s", round(time.perf_counter() - slot.t0, 6))
            slot.proc.join(timeout=1.0)
            if slot.proc.is_alive():  # pragma: no cover - defensive cleanup
                slot.proc.terminate()
                slot.proc.join()
        return row

    def _finish(
        self,
        tid: str,
        idx: int,
        row: Dict[str, Any],
        rows: List[Optional[Dict[str, Any]]],
        stats: ExecutorStats,
    ) -> None:
        rows[idx] = row
        stats.executed += 1
        status = row.get("status")
        if status == "timeout":
            stats.timeouts += 1
        elif status == "worker_crashed":
            stats.worker_crashes += 1
        if self.checkpoint:
            self.checkpoint.append(tid, row)
        if self.on_row:
            self.on_row(tid, row)


def run_corpus(
    payloads: List[Dict[str, Any]],
    jobs: int = 2,
    timeout_s: Optional[float] = None,
    checkpoint: Optional[Union[str, Path]] = None,
    retries: int = 1,
    bundle_dir: Optional[str] = None,
    on_row: Optional[Callable[[str, Dict[str, Any]], None]] = None,
) -> Tuple[List[Dict[str, Any]], ExecutorStats]:
    """One-call façade over :class:`ShardExecutor` (scripts/corpus_run.py)."""
    executor = ShardExecutor(
        jobs=jobs,
        timeout_s=timeout_s,
        checkpoint=checkpoint,
        retries=retries,
        bundle_dir=bundle_dir,
        on_row=on_row,
    )
    return executor.run(payloads)
