"""Seeded, size-stratified corpus generation (1k–10k instances).

The Figure-8 table compares Espresso-HF against the exact minimizer on 15
synthetic burst-mode circuits.  This module scales that evidence: a
deterministic generator that synthesizes a corpus of instances stratified
by **shape** (inputs/outputs), **density** (how full the ON-set is),
**structure** (burst-mode machines vs free-form functions), and —
deliberately — by **difficulty**: the hazard-complexity line (Ikenmeyer et
al.; Komarath & Saurabh) says the interesting disagreements live at the
edges, so the default strata seed the corpus with *unsolvable* instances
(no hazard-free cover exists, both minimizers must say so) and
*degenerate* ones (constant functions, single minterms, full-input bursts,
more outputs than inputs).

Determinism is the load-bearing property: every instance is produced by a
PRNG seeded from ``sha256(corpus_seed, stratum, index)``, so

* the same ``(seed, count)`` yields byte-identical PLA text and manifest
  on every run (pinned by a Hypothesis property in
  ``tests/test_corpus_gen.py``);
* instance ``i`` of a stratum does not depend on ``count`` — growing a
  1k corpus to 10k keeps the first 1k instances identical, which is what
  makes nightly-vs-smoke results comparable;
* every generated instance respects its stratum's declared bounds
  (:meth:`StratumSpec.admits`), so per-stratum scoreboard buckets mean
  what they say.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.corpus.manifest import ManifestEntry, instance_digest
from repro.hazards.existence import hazard_free_solution_exists
from repro.hazards.instance import HazardFreeInstance
from repro.pla.writer import format_pla


@dataclass(frozen=True)
class StratumSpec:
    """One corpus stratum: a named generator recipe plus admission bounds.

    ``kind`` selects the builder:

    ``"proptest"``
        compact solvability-biased instances via the PR 4 toolkit
        (:func:`repro.proptest.strategies.build_instance`);
    ``"minterm"``
        fully defined random functions with controlled ON-density
        (:func:`repro.bm.random_instance`), the density-sweep axis;
    ``"bm"``
        synthesized burst-mode controllers
        (:func:`repro.bm.random_burst_mode_instance`), the realistic-
        structure axis — note synthesis widens the spec by one-hot state
        bits, so bounds here describe the *instance*, not the spec;
    ``"unsolvable"``
        instances with no hazard-free cover
        (:func:`repro.proptest.strategies.build_unsolvable_instance`);
    ``"degenerate"``
        deterministic extreme shapes (constant-ON, single minterm,
        full-input bursts, wide outputs, one input).

    ``min/max_inputs``, ``min/max_outputs`` and ``max_transitions`` are
    *admission bounds*: the generator retries draws (and finally falls
    back to a bound-respecting constructive builder) until the instance
    satisfies :meth:`admits`, so the bounds hold on **every** emitted
    instance, not just on average.
    """

    name: str
    kind: str
    weight: float
    min_inputs: int
    max_inputs: int
    min_outputs: int
    max_outputs: int
    max_transitions: int = 8
    density: float = 0.5
    #: bm kind only: (spec_inputs, spec_outputs, spec_states) draw ranges
    bm_shape: Tuple[int, int, int] = (2, 1, 2)

    def admits(self, instance: HazardFreeInstance) -> bool:
        """Does this instance satisfy the stratum's declared bounds?"""
        return (
            self.min_inputs <= instance.n_inputs <= self.max_inputs
            and self.min_outputs <= instance.n_outputs <= self.max_outputs
            and 1 <= len(instance.transitions) <= self.max_transitions
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "weight": self.weight,
            "min_inputs": self.min_inputs,
            "max_inputs": self.max_inputs,
            "min_outputs": self.min_outputs,
            "max_outputs": self.max_outputs,
            "max_transitions": self.max_transitions,
        }


#: The default stratification.  Shapes are kept small enough that the
#: exact flow answers within a per-instance budget on most draws — the
#: differential needs *answers* from both sides to compare, and the
#: paper's own Figure 8 already covers the huge-instance regime where
#: exact simply fails.
DEFAULT_STRATA: Tuple[StratumSpec, ...] = (
    StratumSpec(
        name="tiny",
        kind="proptest",
        weight=0.22,
        min_inputs=2,
        max_inputs=4,
        min_outputs=1,
        max_outputs=2,
        max_transitions=4,
    ),
    StratumSpec(
        name="small-sparse",
        kind="minterm",
        weight=0.18,
        min_inputs=3,
        max_inputs=4,
        min_outputs=1,
        max_outputs=2,
        max_transitions=5,
        density=0.35,
    ),
    StratumSpec(
        name="small-dense",
        kind="minterm",
        weight=0.18,
        min_inputs=3,
        max_inputs=4,
        min_outputs=1,
        max_outputs=2,
        max_transitions=5,
        density=0.65,
    ),
    StratumSpec(
        name="medium",
        kind="minterm",
        weight=0.12,
        min_inputs=5,
        max_inputs=6,
        min_outputs=1,
        max_outputs=2,
        max_transitions=6,
        density=0.5,
    ),
    StratumSpec(
        name="bm",
        kind="bm",
        weight=0.12,
        min_inputs=3,
        max_inputs=10,
        min_outputs=2,
        max_outputs=8,
        max_transitions=24,
        bm_shape=(3, 2, 3),
    ),
    StratumSpec(
        name="unsolvable",
        kind="unsolvable",
        weight=0.10,
        min_inputs=2,
        max_inputs=4,
        min_outputs=1,
        max_outputs=2,
        max_transitions=4,
    ),
    StratumSpec(
        name="degenerate",
        kind="degenerate",
        weight=0.08,
        min_inputs=1,
        max_inputs=5,
        min_outputs=1,
        max_outputs=4,
        max_transitions=6,
    ),
)


@dataclass(frozen=True)
class CorpusInstance:
    """One generated instance: the PLA text plus its manifest metadata."""

    name: str
    stratum: str
    pla_text: str
    sha256: str
    n_inputs: int
    n_outputs: int
    n_transitions: int
    solvable: bool

    def manifest_entry(self, path: str = "") -> ManifestEntry:
        return ManifestEntry(
            name=self.name,
            stratum=self.stratum,
            sha256=self.sha256,
            n_inputs=self.n_inputs,
            n_outputs=self.n_outputs,
            n_transitions=self.n_transitions,
            solvable=self.solvable,
            path=path,
        )


def derive_seed(corpus_seed: int, stratum: str, index: int) -> int:
    """Stable per-instance seed: independent of count and other strata."""
    token = f"repro.corpus:{corpus_seed}:{stratum}:{index}".encode("ascii")
    return int.from_bytes(hashlib.sha256(token).digest()[:8], "big")


def allocate_counts(
    count: int, strata: Sequence[StratumSpec]
) -> Dict[str, int]:
    """Largest-remainder apportionment of ``count`` across strata weights.

    Deterministic (ties broken by stratum order) and exact: the returned
    counts sum to ``count``.
    """
    total_w = sum(s.weight for s in strata)
    if total_w <= 0:
        raise ValueError("strata weights must sum to a positive value")
    quotas = [(count * s.weight / total_w) for s in strata]
    base = [int(q) for q in quotas]
    remainder = count - sum(base)
    by_frac = sorted(
        range(len(strata)), key=lambda i: (-(quotas[i] - base[i]), i)
    )
    for i in by_frac[:remainder]:
        base[i] += 1
    return {s.name: b for s, b in zip(strata, base)}


# ----------------------------------------------------------------------
# Per-kind builders (each must be deterministic in ``rng``/``derived``)
# ----------------------------------------------------------------------


def _build_proptest(spec: StratumSpec, derived: int) -> Optional[HazardFreeInstance]:
    from repro.proptest.strategies import (
        InstanceConfig,
        RandomSource,
        build_instance,
    )

    src = RandomSource(random.Random(derived))
    config = InstanceConfig(
        min_inputs=spec.min_inputs,
        max_inputs=spec.max_inputs,
        min_outputs=spec.min_outputs,
        max_outputs=spec.max_outputs,
        min_transitions=1,
        max_transitions=spec.max_transitions,
    )
    for _ in range(6):
        inst = build_instance(src, config)
        if inst is not None and spec.admits(inst):
            return inst
    return None


def _build_minterm(spec: StratumSpec, derived: int) -> Optional[HazardFreeInstance]:
    from repro.bm.random_spec import random_instance

    rng = random.Random(derived)
    for _ in range(6):
        n = rng.randint(spec.min_inputs, spec.max_inputs)
        m = rng.randint(spec.min_outputs, spec.max_outputs)
        k = rng.randint(1, spec.max_transitions)
        inst = random_instance(
            n,
            m,
            n_transitions=k,
            seed=rng.randrange(1 << 32),
            density=spec.density,
        )
        if spec.admits(inst):
            return inst
    return None


def _build_bm(spec: StratumSpec, derived: int) -> Optional[HazardFreeInstance]:
    from repro.bm.random_spec import random_burst_mode_instance

    rng = random.Random(derived)
    si, so, ss = spec.bm_shape
    for _ in range(4):
        inst = random_burst_mode_instance(
            rng.randint(2, si),
            rng.randint(1, so),
            rng.randint(2, ss),
            seed=rng.randrange(1 << 32),
            max_burst=2,
            max_seed_tries=10,
        )
        if inst is not None and spec.admits(inst):
            return inst
    return None


def _build_unsolvable(spec: StratumSpec, derived: int) -> Optional[HazardFreeInstance]:
    from repro.proptest.strategies import (
        InstanceConfig,
        RandomSource,
        build_unsolvable_instance,
    )

    src = RandomSource(random.Random(derived))
    config = InstanceConfig(
        min_inputs=spec.min_inputs,
        max_inputs=spec.max_inputs,
        min_outputs=spec.min_outputs,
        max_outputs=spec.max_outputs,
        min_transitions=1,
        max_transitions=spec.max_transitions,
    )
    inst = build_unsolvable_instance(src, config, max_tries=20)
    if inst is not None and spec.admits(inst):
        return inst
    return None


def _fallback_unsolvable(spec: StratumSpec) -> HazardFreeInstance:
    """The Figure-5 style gadget: always unsolvable, 3 inputs, 1 output.

    Used when random draws fail to produce an admissible unsolvable
    instance, so unsolvable-stratum counts stay exact.
    """
    from repro.cubes.cover import Cover
    from repro.hazards.transitions import Transition

    on = Cover.from_strings(["11-", "-10"])
    off = Cover.from_strings(["10-", "011"])
    transitions = [
        Transition((1, 1, 1), (1, 0, 0)),
        Transition((0, 1, 0), (1, 1, 0)),
    ]
    return HazardFreeInstance(on, off, transitions, name="unsolvable-gadget")


def _build_degenerate(spec: StratumSpec, derived: int, index: int) -> HazardFreeInstance:
    """Deterministic extreme shapes, cycled by index for even coverage."""
    from repro.bm.random_spec import random_instance
    from repro.cubes.cube import Cube
    from repro.cubes.cover import Cover
    from repro.hazards.transitions import Transition

    rng = random.Random(derived)
    which = index % 5
    if which == 0:
        # constant-ON function: every transition is static-1 everywhere
        n = rng.randint(max(2, spec.min_inputs), min(4, spec.max_inputs))
        m = rng.randint(spec.min_outputs, min(2, spec.max_outputs))
        full = Cube.from_literals([3] * n, (1 << m) - 1, m)
        on = Cover(n, [full], m)
        off = Cover(n, [], m)
        start = tuple(rng.randint(0, 1) for _ in range(n))
        flips = rng.sample(range(n), rng.randint(1, n))
        end = tuple(v ^ 1 if i in flips else v for i, v in enumerate(start))
        return HazardFreeInstance(
            on, off, [Transition(start, end)], name="degen-constant-on"
        )
    if which == 1:
        # single ON minterm, transition confined to the OFF region
        n = rng.randint(max(2, spec.min_inputs), min(4, spec.max_inputs))
        m_point = rng.randrange(1 << n)
        on = Cover(n, [Cube.from_index(n, m_point)], 1)
        off = Cover(
            n,
            [Cube.from_index(n, p) for p in range(1 << n) if p != m_point],
            1,
        )
        # a 1-bit flip between two points that both differ from the ON
        # minterm keeps the transition cube OFF-only (static-0)
        other = m_point ^ ((1 << n) - 1)
        a = b = other
        for bit in range(n):
            a, b = other, other ^ (1 << bit)
            if a != m_point and b != m_point:
                break
        start = tuple((a >> i) & 1 for i in range(n))
        end = tuple((b >> i) & 1 for i in range(n))
        return HazardFreeInstance(
            on, off, [Transition(start, end)], name="degen-single-minterm"
        )
    if which == 2:
        # full-input burst: every input flips in one transition
        n = rng.randint(max(2, spec.min_inputs), min(4, spec.max_inputs))
        inst = random_instance(
            n,
            1,
            n_transitions=2,
            seed=rng.randrange(1 << 32),
            density=0.5,
            max_burst=n,
        )
        if inst.transitions:
            return inst
        return _build_degenerate(spec, derived + 1, 0)
    if which == 3:
        # wide: more outputs than inputs
        n = max(2, spec.min_inputs)
        m = min(4, spec.max_outputs) if spec.max_outputs >= 3 else spec.max_outputs
        inst = random_instance(
            n, m, n_transitions=3, seed=rng.randrange(1 << 32), density=0.5
        )
        if inst.transitions:
            return inst
        return _build_degenerate(spec, derived + 1, 0)
    # single input: the smallest possible model
    if spec.min_inputs <= 1:
        on = Cover(1, [Cube.from_literals([3])], 1)
        off = Cover(1, [], 1)
        return HazardFreeInstance(
            on, off, [Transition((0,), (1,))], name="degen-one-input"
        )
    return _build_degenerate(spec, derived + 1, 0)


def _fallback_generic(spec: StratumSpec, derived: int) -> HazardFreeInstance:
    """Constructive bound-respecting fallback: constant-ON at min shape."""
    from repro.cubes.cube import Cube
    from repro.cubes.cover import Cover
    from repro.hazards.transitions import Transition

    rng = random.Random(derived)
    n = max(2, spec.min_inputs)
    m = spec.min_outputs
    full = Cube.from_literals([3] * n, (1 << m) - 1, m)
    on = Cover(n, [full], m)
    off = Cover(n, [], m)
    start = tuple(rng.randint(0, 1) for _ in range(n))
    end = tuple(v ^ 1 if i == 0 else v for i, v in enumerate(start))
    return HazardFreeInstance(on, off, [Transition(start, end)], name="fallback")


_BUILDERS = {
    "proptest": _build_proptest,
    "minterm": _build_minterm,
    "bm": _build_bm,
    "unsolvable": _build_unsolvable,
}


def build_stratum_instance(
    spec: StratumSpec, corpus_seed: int, index: int
) -> HazardFreeInstance:
    """Instance ``index`` of a stratum — total (never fails), deterministic."""
    derived = derive_seed(corpus_seed, spec.name, index)
    if spec.kind == "degenerate":
        return _build_degenerate(spec, derived, index)
    builder = _BUILDERS.get(spec.kind)
    if builder is None:
        raise ValueError(f"unknown stratum kind {spec.kind!r}")
    inst = builder(spec, derived)
    if inst is not None:
        return inst
    if spec.kind == "unsolvable":
        return _fallback_unsolvable(spec)
    return _fallback_generic(spec, derived)


def generate_corpus(
    seed: int,
    count: int,
    strata: Sequence[StratumSpec] = DEFAULT_STRATA,
) -> List[CorpusInstance]:
    """The corpus: ``count`` instances apportioned across ``strata``.

    Deterministic in ``(seed, count, strata)``; instances are ordered by
    stratum (declaration order) then index, and named
    ``<stratum>-<index>-<hash8>`` so names are self-describing and
    collision-free.
    """
    counts = allocate_counts(count, strata)
    out: List[CorpusInstance] = []
    for spec in strata:
        for i in range(counts[spec.name]):
            inst = build_stratum_instance(spec, seed, i)
            solvable = hazard_free_solution_exists(inst)
            pla_text = format_pla(inst)
            digest = instance_digest(pla_text)
            name = f"{spec.name}-{i:05d}-{digest[:8]}"
            out.append(
                CorpusInstance(
                    name=name,
                    stratum=spec.name,
                    pla_text=pla_text,
                    sha256=digest,
                    n_inputs=inst.n_inputs,
                    n_outputs=inst.n_outputs,
                    n_transitions=len(inst.transitions),
                    solvable=solvable,
                )
            )
    return out


def strata_by_name(
    strata: Sequence[StratumSpec] = DEFAULT_STRATA,
) -> Dict[str, StratumSpec]:
    return {s.name: s for s in strata}
