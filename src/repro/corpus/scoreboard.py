"""Corpus scoreboard: fold shard rows into quality/latency aggregates.

The executor hands back differential rows in payload order, but each row
carries its own :class:`repro.obs.MetricsRegistry` snapshot taken inside
the worker process — :func:`merge_row_metrics` folds them with
:func:`repro.obs.merge_snapshots`, which is associative and commutative,
so the aggregate is identical whether rows arrived serially, out of
order, from a checkpoint replay, or from a remote NDJSON shard.

:func:`build_scoreboard` turns the merged snapshot plus the raw rows into
the quality/latency scoreboard ISSUE.md asks for: per-stratum and overall
verdict counts, exact-match rate, mean cover-size ratio, timeout rate,
and p50/p99 wall time for both flows (upper-edge histogram quantiles via
:func:`repro.obs.histogram_quantile`).  :func:`format_scoreboard` renders
it as a fixed-width table for terminals and CI logs;
:func:`unexplained_rows` extracts the rows that must fail the gate.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.obs import histogram_quantile, merge_snapshots

from repro.corpus.differential import UNEXPLAINED_VERDICTS

#: executor-level statuses that count toward the timeout/crash columns
_EXECUTOR_FAILURES = ("timeout", "worker_crashed")


def merge_row_metrics(
    rows: Iterable[Dict[str, Any]],
) -> Dict[str, Dict[str, Any]]:
    """Fold every row's metrics snapshot into one aggregate snapshot."""
    merged: Dict[str, Dict[str, Any]] = {}
    for row in rows:
        snapshot = row.get("metrics")
        if snapshot:
            merged = merge_snapshots(merged, snapshot)
    return merged


def unexplained_rows(rows: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Rows whose differential outcome is an unexplained disagreement."""
    return [
        row
        for row in rows
        if row.get("verdict") in UNEXPLAINED_VERDICTS
        or row.get("explained") is False
    ]


def _counter(snapshot: Dict[str, Dict[str, Any]], name: str) -> int:
    metric = snapshot.get(name)
    return int(metric["value"]) if metric else 0


def _quantiles(
    snapshot: Dict[str, Dict[str, Any]], name: str
) -> Dict[str, Optional[float]]:
    metric = snapshot.get(name)
    if not metric:
        return {"p50": None, "p99": None}
    return {
        "p50": histogram_quantile(metric, 0.50),
        "p99": histogram_quantile(metric, 0.99),
    }


def _stratum_block(
    snapshot: Dict[str, Dict[str, Any]],
    rows: List[Dict[str, Any]],
    prefix: str,
) -> Dict[str, Any]:
    """One scoreboard block; ``prefix`` is '' for overall, '<stratum>.' else."""
    ran = _counter(snapshot, f"corpus.{prefix}instances")
    verdicts: Dict[str, int] = {}
    verdict_prefix = f"corpus.{prefix}verdict."
    for name, metric in snapshot.items():
        if name.startswith(verdict_prefix) and metric["kind"] == "counter":
            verdicts[name[len(verdict_prefix):]] = int(metric["value"])
    executor_failures = sum(
        1 for r in rows if r.get("status") in _EXECUTOR_FAILURES
    )
    timeouts = sum(1 for r in rows if r.get("status") == "timeout")
    total = len(rows)
    matches = verdicts.get("exact_match", 0)
    compared = matches + verdicts.get("heuristic_larger", 0) + verdicts.get(
        "exact_suboptimal", 0
    )
    hf_cubes = _counter(snapshot, f"corpus.{prefix}cover_cubes_hf")
    exact_cubes = _counter(snapshot, f"corpus.{prefix}cover_cubes_exact")
    unexplained = len(unexplained_rows(rows))
    return {
        "instances": total,
        "ran": ran,
        "executor_failures": executor_failures,
        "verdicts": dict(sorted(verdicts.items())),
        "unexplained": unexplained,
        "exact_match_rate": round(matches / compared, 4) if compared else None,
        # aggregate cover-size ratio over the jointly-solved instances:
        # sum(hf cubes) / sum(exact cubes), the paper's quality metric
        "cover_ratio": (
            round(hf_cubes / exact_cubes, 4) if exact_cubes else None
        ),
        "timeout_rate": round(timeouts / total, 4) if total else None,
        "hf_seconds": _quantiles(snapshot, f"corpus.{prefix}hf_seconds"),
        "exact_seconds": _quantiles(snapshot, f"corpus.{prefix}exact_seconds"),
    }


def build_scoreboard(
    rows: List[Dict[str, Any]],
    stats: Optional[Dict[str, Any]] = None,
    seed: Optional[int] = None,
) -> Dict[str, Any]:
    """Aggregate differential rows into the corpus scoreboard dict.

    ``stats`` is :meth:`repro.corpus.executor.ExecutorStats.as_dict` when
    the rows came from a shard run; the scoreboard is equally happy with
    rows produced serially (tests pin that the two agree).
    """
    snapshot = merge_row_metrics(rows)
    strata: Dict[str, List[Dict[str, Any]]] = {}
    for row in rows:
        strata.setdefault(row.get("stratum") or "?", []).append(row)
    board: Dict[str, Any] = {
        "schema": "repro.corpus/scoreboard",
        "version": 1,
        "seed": seed,
        "overall": _stratum_block(snapshot, rows, ""),
        "strata": {
            name: _stratum_block(snapshot, srows, f"{name}.")
            for name, srows in sorted(strata.items())
        },
        "unexplained": [
            {
                "name": r.get("name"),
                "stratum": r.get("stratum"),
                "verdict": r.get("verdict"),
                "bundle_path": r.get("bundle_path"),
                "error": r.get("error"),
            }
            for r in unexplained_rows(rows)
        ],
        "metrics": snapshot,
    }
    if stats:
        board["executor"] = dict(stats)
    return board


def _fmt_seconds(v: Optional[float]) -> str:
    if v is None:
        return "-"
    if v == float("inf"):
        return ">5s"
    return f"{v:g}s"


def _fmt_rate(v: Optional[float]) -> str:
    return "-" if v is None else f"{100 * v:.1f}%"


def format_scoreboard(board: Dict[str, Any]) -> str:
    """Render a scoreboard dict as a fixed-width text table."""
    header = (
        f"{'stratum':<14} {'n':>5} {'match':>6} {'ratio':>6} "
        f"{'t/o':>6} {'hf p50':>7} {'hf p99':>7} "
        f"{'ex p50':>7} {'ex p99':>7} {'unexpl':>6}"
    )
    lines = [header, "-" * len(header)]

    def row_line(name: str, block: Dict[str, Any]) -> str:
        ratio = block["cover_ratio"]
        return (
            f"{name:<14} {block['instances']:>5} "
            f"{_fmt_rate(block['exact_match_rate']):>6} "
            f"{ratio if ratio is not None else '-':>6} "
            f"{_fmt_rate(block['timeout_rate']):>6} "
            f"{_fmt_seconds(block['hf_seconds']['p50']):>7} "
            f"{_fmt_seconds(block['hf_seconds']['p99']):>7} "
            f"{_fmt_seconds(block['exact_seconds']['p50']):>7} "
            f"{_fmt_seconds(block['exact_seconds']['p99']):>7} "
            f"{block['unexplained']:>6}"
        )

    for name, block in board["strata"].items():
        lines.append(row_line(name, block))
    lines.append("-" * len(header))
    lines.append(row_line("TOTAL", board["overall"]))
    overall = board["overall"]
    verdict_bits = ", ".join(
        f"{k}={v}" for k, v in overall["verdicts"].items()
    )
    lines.append(f"verdicts: {verdict_bits or 'none'}")
    if board.get("executor"):
        ex = board["executor"]
        lines.append(
            f"executor: {ex.get('executed', 0)} executed, "
            f"{ex.get('from_checkpoint', 0)} from checkpoint, "
            f"{ex.get('retries', 0)} retries, "
            f"{ex.get('timeouts', 0)} timeouts, "
            f"{ex.get('worker_crashes', 0)} crashes, "
            f"{ex.get('wall_s', 0.0):.2f}s wall"
        )
    if overall["unexplained"]:
        lines.append(
            f"UNEXPLAINED DISAGREEMENTS: {overall['unexplained']} "
            "(see bundles)"
        )
        for item in board["unexplained"]:
            lines.append(
                f"  {item['name']} [{item['stratum']}] {item['verdict']}"
                + (f" -> {item['bundle_path']}" if item["bundle_path"] else "")
            )
    else:
        lines.append("unexplained disagreements: 0")
    return "\n".join(lines)
