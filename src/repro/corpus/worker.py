"""Remote shard worker: NDJSON tasks on stdin → NDJSON rows on stdout.

The thin transport seam of the shard executor.  A remote machine runs::

    python -m repro.corpus.worker [--timeout S] [--bundle-dir DIR]

and the driver feeds it task payload lines (:func:`repro.corpus.executor.
encode_line` of the same payload dicts the local executor uses) over any
byte pipe — ssh, a socket, a container exec.  Each task runs in its own
crash-isolated subprocess with the same timeout/crash semantics as a
local slot, so a remote shard and a local slot are indistinguishable to
the scoreboard.  One row line comes back per task line, keyed by task id;
EOF (or a ``{"op": "shutdown"}`` line) ends the worker with exit 0.

Torn or non-JSON input lines are answered with an ``error`` row rather
than killing the worker — a flaky pipe should cost one task, not the
shard.
"""

from __future__ import annotations

import argparse
import sys

from repro.corpus.executor import (
    decode_line,
    encode_line,
    run_task_isolated,
    task_id,
)


def serve_stdio(
    stdin=None,
    stdout=None,
    timeout_s=None,
    bundle_dir=None,
) -> int:
    """Run the worker loop; returns the process exit code (always 0)."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    for line in stdin:
        if not line.strip():
            continue
        payload = decode_line(line)
        if payload is None:
            stdout.write(
                encode_line(
                    {
                        "task": None,
                        "row": {
                            "status": "malformed",
                            "error": "undecodable task line",
                        },
                    }
                )
                + "\n"
            )
            stdout.flush()
            continue
        if payload.get("op") == "shutdown":
            break
        if bundle_dir and "bundle_dir" not in payload:
            payload = dict(payload, bundle_dir=bundle_dir)
        try:
            tid = task_id(payload)
        except ValueError as exc:
            stdout.write(
                encode_line(
                    {"task": None, "row": {"status": "malformed", "error": str(exc)}}
                )
                + "\n"
            )
            stdout.flush()
            continue
        row = run_task_isolated(payload, timeout_s=timeout_s)
        stdout.write(encode_line({"task": tid, "row": row}) + "\n")
        stdout.flush()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="corpus shard worker (NDJSON stdin/stdout)"
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="default per-task wall-clock timeout in seconds",
    )
    parser.add_argument(
        "--bundle-dir",
        default=None,
        help="directory for repro bundles written by tasks",
    )
    args = parser.parse_args(argv)
    return serve_stdio(timeout_s=args.timeout, bundle_dir=args.bundle_dir)


if __name__ == "__main__":  # pragma: no cover - exercised as a subprocess
    sys.exit(main())
