"""Version compatibility shims.

``int.bit_count`` arrived in Python 3.10.  The project supports 3.9, where
counting ones in the ``bin`` string is the fastest pure-Python popcount for
the big ints used throughout (the cube encoding and the coverage bitsets).
"""

try:
    popcount = int.bit_count  # Python >= 3.10
except AttributeError:  # pragma: no cover - only reachable on Python 3.9

    def popcount(value):
        """Number of set bits in a non-negative int."""
        return bin(value).count("1")
