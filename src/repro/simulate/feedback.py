"""Closed-loop simulation of a synthesized burst-mode controller.

The minimized cover implements next-state functions ``Z_k`` and output
functions ``Y_j`` over (specification inputs, fed-back state variables).
This module operates the machine the way the locally-clocked burst-mode
architecture does (Nowick/Dill):

1. **input-burst phase** — the state variables are held while the burst
   inputs flip in random order with random per-gate and per-wire delays;
   every function's exact output waveform is computed
   (:mod:`repro.simulate.montecarlo`) and must be monotonic — this is
   precisely what hazard-free minimization guarantees;
2. **state-update phase** — once the logic settles, the local clock latches
   the new state code atomically; the combinational functions must be
   *stable* across the latch (no output may change when the state inputs
   switch), which holds by construction of the synthesized instance.

A *spec walk* drives the machine through random paths of its own
specification and fails loudly if any function glitches, the machine lands
in the wrong total state, or the latched state is not stable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cubes.cover import Cover
from repro.hazards.transitions import Transition
from repro.simulate.montecarlo import is_monotonic_waveform, simulate_transition
from repro.simulate.network import SopNetwork


class FeedbackSimulationError(AssertionError):
    """The closed-loop machine misbehaved."""


@dataclass
class StepReport:
    """Outcome of one input burst applied to the closed-loop machine."""

    transition: Transition
    #: per-function output waveforms during the input-burst phase
    waveforms: List[List[Tuple[float, int]]] = field(default_factory=list)
    new_state: Tuple[int, ...] = ()
    new_outputs: Tuple[int, ...] = ()

    def glitching_functions(self) -> List[int]:
        """Indices of functions whose waveform was non-monotonic."""
        return [j for j, ok in enumerate(self._monotonic_flags) if not ok]

    _monotonic_flags: List[bool] = field(default_factory=list)


class ClosedLoopMachine:
    """A minimized cover operated as a locally-clocked feedback machine.

    ``cover`` must have inputs ``[0, n_ext)`` = specification inputs and
    ``[n_ext, n_ext + n_states)`` = state variables, outputs
    ``[0, n_states)`` = next-state functions and the rest = specification
    outputs — the layout produced by :func:`repro.bm.synthesis.synthesize`.
    """

    def __init__(
        self,
        cover: Cover,
        n_ext_inputs: int,
        n_states: int,
        rng: Optional[random.Random] = None,
        max_delay: float = 10.0,
    ):
        if cover.n_inputs != n_ext_inputs + n_states:
            raise ValueError("cover inputs must be spec inputs + state vars")
        if cover.n_outputs < n_states:
            raise ValueError("cover has fewer outputs than state variables")
        self.n_ext = n_ext_inputs
        self.n_states = n_states
        self.n_spec_outputs = cover.n_outputs - n_states
        self.rng = rng or random.Random(0)
        self.max_delay = max_delay
        self.networks = [SopNetwork(cover, output=j) for j in range(cover.n_outputs)]
        self.ext_inputs: Tuple[int, ...] = tuple([0] * n_ext_inputs)
        self.state: Tuple[int, ...] = tuple([0] * n_states)

    # ------------------------------------------------------------------

    def total_inputs(self) -> Tuple[int, ...]:
        return self.ext_inputs + self.state

    def reset(self, ext_inputs: Sequence[int], state: Sequence[int]) -> None:
        """Place the machine in a total state; it must be stable."""
        self.ext_inputs = tuple(ext_inputs)
        self.state = tuple(state)
        vec = self.total_inputs()
        for k in range(self.n_states):
            if self.networks[k].evaluate(vec) != self.state[k]:
                raise FeedbackSimulationError(
                    f"reset total state is unstable on state bit {k}"
                )

    def step(self, burst: Sequence[int]) -> StepReport:
        """Apply one input burst and latch the resulting state."""
        for i in burst:
            if not 0 <= i < self.n_ext:
                raise ValueError(f"burst index {i} is not an external input")
        start = self.total_inputs()
        new_ext = tuple(
            v ^ 1 if i in set(burst) else v for i, v in enumerate(self.ext_inputs)
        )
        end = new_ext + self.state  # state held during the burst
        transition = Transition(start, end)
        report = StepReport(transition=transition)
        # Phase 1: exact waveforms under random per-gate/per-wire delays.
        for j, net in enumerate(self.networks):
            waveform = simulate_transition(net, transition, self.rng, self.max_delay)
            report.waveforms.append(waveform)
            monotonic = is_monotonic_waveform(
                waveform, net.evaluate(start), net.evaluate(end)
            )
            report._monotonic_flags.append(monotonic)
        # Phase 2: local clock latches the settled next-state code.
        settled = end
        next_state = tuple(
            self.networks[k].evaluate(settled) for k in range(self.n_states)
        )
        latched = new_ext + next_state
        # The latch must not disturb the combinational functions.
        for j, net in enumerate(self.networks):
            if net.evaluate(latched) != net.evaluate(settled):
                raise FeedbackSimulationError(
                    f"function {j} is unstable across the state latch"
                )
        self.ext_inputs = new_ext
        self.state = next_state
        report.new_state = next_state
        report.new_outputs = tuple(
            self.networks[self.n_states + j].evaluate(latched)
            for j in range(self.n_spec_outputs)
        )
        return report


def run_spec_walk(
    cover: Cover,
    synthesis_result,
    n_steps: int = 20,
    seed: int = 0,
) -> List[StepReport]:
    """Drive the minimized machine through random paths of its own spec.

    ``synthesis_result`` is the :class:`~repro.bm.synthesis.SynthesisResult`
    whose instance ``cover`` implements.  Raises
    :class:`FeedbackSimulationError` on any glitch, wrong successor state or
    unstable latch.  Returns the per-step reports.
    """
    states, edges = synthesis_result.unrolled()
    index_of = {s: k for k, s in enumerate(states)}
    outgoing: Dict[int, List] = {}
    for src, burst, _outburst, dst in edges:
        outgoing.setdefault(index_of[src], []).append((burst, dst))

    rng = random.Random(seed)
    machine = ClosedLoopMachine(
        cover, synthesis_result.n_spec_inputs, len(states), rng=rng
    )
    current = states[0]
    one_hot = [0] * len(states)
    one_hot[index_of[current]] = 1
    machine.reset(current.inputs, one_hot)

    reports: List[StepReport] = []
    for _ in range(n_steps):
        options = outgoing.get(index_of[current])
        if not options:
            break
        burst, expected = rng.choice(options)
        report = machine.step(sorted(burst))
        reports.append(report)
        glitching = report.glitching_functions()
        if glitching:
            raise FeedbackSimulationError(
                f"functions {glitching} glitched during burst {sorted(burst)} "
                f"from state {index_of[current]}"
            )
        expected_code = tuple(
            1 if k == index_of[expected] else 0 for k in range(len(states))
        )
        if report.new_state != expected_code:
            raise FeedbackSimulationError(
                f"landed in state code {report.new_state}, expected one-hot "
                f"{index_of[expected]}"
            )
        if machine.ext_inputs != tuple(expected.inputs):
            raise FeedbackSimulationError("input polarity bookkeeping diverged")
        if report.new_outputs != tuple(expected.outputs):
            raise FeedbackSimulationError(
                f"outputs {report.new_outputs}, expected {expected.outputs}"
            )
        current = expected
    return reports
