"""Ternary (Eichelberger-style) hazard analysis for static transitions.

For a static transition ``[A, B]`` of a combinational network, drive the
changing inputs to X and the stable inputs to their common values.  If the
output resolves to the (equal) endpoint value, every delay assignment keeps
the output stable — no static logic hazard; if it resolves to X, some delay
assignment glitches it.  For two-level AND-OR logic this test is exact for
static hazards and agrees with Lemma 2.6 (a 1→1 transition is hazard-free
iff some product holds 1 across the whole transition cube).

Dynamic (1→0 / 0→1) logic hazards are outside plain ternary simulation's
reach; the Monte-Carlo simulator (:mod:`repro.simulate.montecarlo`) covers
those.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.hazards.transitions import Transition
from repro.simulate.network import SopNetwork


def ternary_value(
    network: SopNetwork, start: Sequence[int], end: Sequence[int]
) -> Optional[int]:
    """The network's ternary output with changing inputs driven to X."""
    inputs: List[Optional[int]] = [
        a if a == b else None for a, b in zip(start, end)
    ]
    return network.evaluate_ternary(inputs)


def ternary_simulate(
    network: SopNetwork, transition: Transition
) -> Optional[int]:
    """Ternary output over a transition (None = X = potential hazard)."""
    return ternary_value(network, transition.start, transition.end)


def has_static_hazard_ternary(
    network: SopNetwork, transition: Transition
) -> bool:
    """True iff a static transition shows a potential static logic hazard.

    Raises :class:`ValueError` when the endpoint outputs differ (the
    transition is dynamic and ternary analysis does not apply).
    """
    v_start = network.evaluate(transition.start)
    v_end = network.evaluate(transition.end)
    if v_start != v_end:
        raise ValueError(
            "ternary static-hazard analysis applies to static transitions only"
        )
    return ternary_simulate(network, transition) is None
