"""VCD (Value Change Dump) export of simulated waveforms.

Glitch reports and closed-loop step traces can be dumped as IEEE-1364 VCD
files and inspected in any waveform viewer (GTKWave etc.) — the standard
debugging workflow when a hazard is reported.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: printable VCD identifier characters
_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Short VCD identifier for the ``index``-th signal."""
    if index < len(_ID_CHARS):
        return _ID_CHARS[index]
    out = []
    while index:
        index, rem = divmod(index, len(_ID_CHARS))
        out.append(_ID_CHARS[rem])
    return "".join(out)


def _quantize(t: float, scale: float) -> int:
    return max(0, int(round(t * scale)))


def waveform_to_vcd(
    signals: Dict[str, List[Tuple[float, int]]],
    timescale: str = "1ns",
    scale: float = 100.0,
    module: str = "sim",
) -> str:
    """Render named ``(time, value)`` waveforms as VCD text.

    ``scale`` converts the simulator's float times into integer VCD ticks.
    Each waveform's first entry provides the initial value.
    """
    names = sorted(signals)
    ids = {name: _identifier(i) for i, name in enumerate(names)}
    lines = [
        "$date repro hazard simulation $end",
        f"$timescale {timescale} $end",
        f"$scope module {module} $end",
    ]
    for name in names:
        lines.append(f"$var wire 1 {ids[name]} {name} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")
    # initial values
    lines.append("#0")
    lines.append("$dumpvars")
    events: List[Tuple[int, str, int]] = []
    for name in names:
        waveform = signals[name]
        if not waveform:
            continue
        lines.append(f"{waveform[0][1]}{ids[name]}")
        for t, v in waveform[1:]:
            events.append((_quantize(t, scale), name, v))
    lines.append("$end")
    events.sort(key=lambda e: e[0])
    last_time: Optional[int] = None
    for t, name, v in events:
        if t != last_time:
            lines.append(f"#{t}")
            last_time = t
        lines.append(f"{v}{ids[name]}")
    return "\n".join(lines) + "\n"


def trace_to_vcd(
    edges: Sequence[Tuple[float, str, int]],
    initial: Optional[Dict[str, int]] = None,
    **kwargs,
) -> str:
    """Render a closed-loop step trace (``(time, signal, value)`` edges)."""
    signals: Dict[str, List[Tuple[float, int]]] = {}
    initial = dict(initial or {})
    for t, name, v in sorted(edges, key=lambda e: e[0]):
        if name not in signals:
            start = initial.get(name, 1 - v)
            signals[name] = [(0.0, start)]
        signals[name].append((t, v))
    for name, value in initial.items():
        signals.setdefault(name, [(0.0, value)])
    return waveform_to_vcd(signals, **kwargs)


def write_vcd(
    target: Union[str, Path],
    signals: Dict[str, List[Tuple[float, int]]],
    **kwargs,
) -> None:
    """Write named waveforms to a ``.vcd`` file."""
    Path(target).write_text(waveform_to_vcd(signals, **kwargs))
