"""Monte-Carlo event-driven glitch simulation under arbitrary delays.

Implements the paper's circuit model directly (§2.1): a two-level AND-OR
network where every gate and every fanout wire has its own arbitrary finite
delay (pure delay model), and the inputs of a multiple-input change flip
monotonically in arbitrary order at arbitrary times.  A trial draws random
delays and input flip times, simulates the resulting waveforms exactly, and
checks the output waveform for monotonicity.

Covers satisfying Theorem 2.11 must never glitch in any trial; for covers
that violate it, enough random trials find a glitching delay assignment —
this is the library's independent dynamic check of the algebraic theory.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.hazards.transitions import Transition
from repro.simulate.network import SopNetwork


@dataclass
class GlitchReport:
    """A hazard exhibited by one simulated delay assignment."""

    transition: Transition
    output_waveform: List[Tuple[float, int]]  # (time, value) changes
    trial: int

    def __str__(self) -> str:
        wf = " -> ".join(str(v) for _, v in self.output_waveform)
        return f"glitch on {self.transition} (trial {self.trial}): {wf}"


def _waveform_of_and(
    gate_literals,
    flip_time: Sequence[Optional[float]],
    start: Sequence[int],
    wire_delays: Sequence[float],
    gate_delay: float,
) -> List[Tuple[float, int]]:
    """Exact output waveform of one AND gate.

    Each literal is a step function: value ``start``-derived until the
    input's flip time plus this gate's wire delay, then flipped.  The AND of
    finitely many step functions changes value only at those arrival times.
    """
    events = [0.0]
    arrivals = []
    for idx, (var, phase) in enumerate(gate_literals):
        t = flip_time[var]
        if t is not None:
            arrival = t + wire_delays[idx]
            events.append(arrival)
        arrivals.append(t + wire_delays[idx] if t is not None else None)
    events = sorted(set(events))

    def lit_value(idx: int, time: float) -> int:
        var, phase = gate_literals[idx]
        v = start[var]
        if arrivals[idx] is not None and time >= arrivals[idx]:
            v ^= 1
        return 1 if v == phase else 0

    waveform: List[Tuple[float, int]] = []
    last = None
    for t in events:
        val = 1
        for idx in range(len(gate_literals)):
            if lit_value(idx, t) == 0:
                val = 0
                break
        if val != last:
            waveform.append((t + gate_delay if t > 0 else 0.0 if last is None else t + gate_delay, val))
            last = val
    return waveform


def _or_waveform(
    and_waveforms: List[List[Tuple[float, int]]],
    or_wire_delays: Sequence[float],
    or_gate_delay: float,
) -> List[Tuple[float, int]]:
    """Exact OR-of-waveforms with per-branch wire delays and a gate delay."""
    events = {0.0}
    shifted: List[List[Tuple[float, int]]] = []
    for wf, d in zip(and_waveforms, or_wire_delays):
        s = [(t + d if t > 0 else 0.0, v) for t, v in wf]
        shifted.append(s)
        for t, _ in s:
            events.add(t)

    def value_at(wf: List[Tuple[float, int]], time: float) -> int:
        v = wf[0][1]
        for t, val in wf:
            if t <= time:
                v = val
            else:
                break
        return v

    waveform: List[Tuple[float, int]] = []
    last = None
    for t in sorted(events):
        val = 1 if any(value_at(wf, t) for wf in shifted) else 0
        if val != last:
            waveform.append((t + or_gate_delay if t > 0 else 0.0 if last is None else t + or_gate_delay, val))
            last = val
    return waveform


def simulate_transition(
    network: SopNetwork,
    transition: Transition,
    rng: random.Random,
    max_delay: float = 10.0,
) -> List[Tuple[float, int]]:
    """One random-delay trial; returns the output waveform (time, value)."""
    start = transition.start
    changing = transition.changing
    flip_time: List[Optional[float]] = [None] * network.n_inputs
    for i in changing:
        flip_time[i] = rng.uniform(0.0, max_delay)
    and_waveforms = []
    for gate in network.and_gates:
        wire_delays = [rng.uniform(0.0, max_delay) for _ in gate.literals]
        gate_delay = rng.uniform(0.0, max_delay)
        and_waveforms.append(
            _waveform_of_and(gate.literals, flip_time, start, wire_delays, gate_delay)
        )
    or_wires = [rng.uniform(0.0, max_delay) for _ in and_waveforms]
    or_delay = rng.uniform(0.0, max_delay)
    if not and_waveforms:
        return [(0.0, 0)]
    return _or_waveform(and_waveforms, or_wires, or_delay)


def is_monotonic_waveform(
    waveform: List[Tuple[float, int]], start_value: int, end_value: int
) -> bool:
    """True iff the waveform makes at most the one specified change."""
    values = [v for _, v in waveform]
    if not values:
        return start_value == end_value
    if values[0] != start_value or values[-1] != end_value:
        return False
    return len(values) <= (1 if start_value == end_value else 2)


def find_glitch(
    network: SopNetwork,
    transition: Transition,
    trials: int = 200,
    seed: int = 0,
    max_delay: float = 10.0,
) -> Optional[GlitchReport]:
    """Search random delay assignments for a logic hazard on one transition.

    Returns a :class:`GlitchReport` for the first glitching trial, or
    ``None`` when every trial's output waveform is monotonic.
    """
    rng = random.Random(seed)
    start_value = network.evaluate(transition.start)
    end_value = network.evaluate(transition.end)
    for trial in range(trials):
        waveform = simulate_transition(network, transition, rng, max_delay)
        if not is_monotonic_waveform(waveform, start_value, end_value):
            return GlitchReport(transition, waveform, trial)
    return None
