"""Gate-level hazard analysis for AND-OR implementations of covers.

Two independent dynamic cross-checks of the algebraic hazard conditions:

* :mod:`repro.simulate.ternary` — Eichelberger-style ternary (0/X/1)
  simulation: changing inputs are driven to X; an output that resolves to X
  during a static transition exhibits a potential static logic hazard.
* :mod:`repro.simulate.montecarlo` — event-driven simulation of the AND-OR
  network under the unbounded gate and wire delay, pure delay model:
  every gate and every fanout branch gets its own random delay, the changing
  inputs flip in random order at random times, and the output waveform is
  checked for monotonicity.  A cover satisfying Theorem 2.11 must never
  glitch; deliberately hazardous covers glitch for some delay assignment.
"""

from repro.simulate.network import SopNetwork
from repro.simulate.ternary import ternary_value, ternary_simulate, has_static_hazard_ternary
from repro.simulate.montecarlo import (
    simulate_transition,
    find_glitch,
    GlitchReport,
)
from repro.simulate.feedback import (
    ClosedLoopMachine,
    FeedbackSimulationError,
    StepReport,
    run_spec_walk,
)
from repro.simulate.algebra import (
    W,
    wand,
    wor,
    wnot,
    classify_network,
    has_logic_hazard,
)
from repro.simulate.vcd import waveform_to_vcd, trace_to_vcd

__all__ = [
    "SopNetwork",
    "ternary_value",
    "ternary_simulate",
    "has_static_hazard_ternary",
    "simulate_transition",
    "find_glitch",
    "GlitchReport",
    "ClosedLoopMachine",
    "FeedbackSimulationError",
    "StepReport",
    "run_spec_walk",
    "W",
    "wand",
    "wor",
    "wnot",
    "classify_network",
    "has_logic_hazard",
    "waveform_to_vcd",
    "trace_to_vcd",
]
