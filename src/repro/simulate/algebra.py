"""Eight-valued hazard algebra for single multiple-input changes.

Under the unbounded gate/wire delay, pure delay model, a signal's behaviour
over one input transition is characterized by three bits: its initial
value, its final value, and whether a non-monotonic excursion is possible.
That yields eight *waveform classes*:

========  ==========================  =========================
class     (v0, v1, hazard-possible)   classic name
========  ==========================  =========================
``S0``    (0, 0, no)                  static 0
``S1``    (1, 1, no)                  static 1
``RISE``  (0, 1, no)                  clean rise
``FALL``  (1, 0, no)                  clean fall
``H0``    (0, 0, yes)                 static-0 hazard
``H1``    (1, 1, yes)                 static-1 hazard
``HR``    (0, 1, yes)                 dynamic rise hazard
``HF``    (1, 0, yes)                 dynamic fall hazard
========  ==========================  =========================

The AND/OR composition tables are *derived*, not hand-written: each class
is represented by a small set of canonical waveforms (value sequences), and
the class of ``a AND b`` is computed by producting every representative
pair under every interleaving of their change events — exactly the
behaviours arbitrary delays can produce when the operands vary
independently.  For two-level AND-OR logic with independently delayed
literal wires this algebra is exact, and the test suite checks it against
both the Theorem 2.11 lemma conditions and Monte-Carlo simulation.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, List, Sequence, Tuple

from repro.hazards.transitions import Transition
from repro.simulate.network import SopNetwork


class W(enum.Enum):
    """The eight waveform classes."""

    S0 = (0, 0, False)
    S1 = (1, 1, False)
    RISE = (0, 1, False)
    FALL = (1, 0, False)
    H0 = (0, 0, True)
    H1 = (1, 1, True)
    HR = (0, 1, True)
    HF = (1, 0, True)

    @property
    def v0(self) -> int:
        return self.value[0]

    @property
    def v1(self) -> int:
        return self.value[1]

    @property
    def hazard(self) -> bool:
        return self.value[2]


_BY_KEY: Dict[Tuple[int, int, bool], W] = {w.value: w for w in W}


def _reduce(seq: Sequence[int]) -> Tuple[int, ...]:
    out: List[int] = []
    for v in seq:
        if not out or out[-1] != v:
            out.append(v)
    return tuple(out)


def _representatives(w: W) -> List[Tuple[int, ...]]:
    """Canonical waveforms of a class (monotone one, plus pulsed variants)."""
    base = _reduce((w.v0, w.v1)) if w.v0 != w.v1 else (w.v0,)
    reps = [base]
    if w.hazard:
        # one and two spurious pulses; two suffice to expose every
        # composition hazard, and extras are free (computed once at import)
        one = _reduce((w.v0, 1 - w.v0, w.v0, w.v1) if w.v0 == w.v1 else (w.v0, w.v1, w.v0, w.v1))
        two = _reduce(one[:-1] + (1 - one[-1], one[-1]))
        reps.extend([one, two])
    return reps


def _interleavings(a: Tuple[int, ...], b: Tuple[int, ...]):
    """All orderings of the two waveforms' change events.

    A waveform with ``k`` changes is a sequence of ``k`` events; an
    interleaving chooses positions of a's events among ``ka + kb`` slots.
    """
    ka, kb = len(a) - 1, len(b) - 1
    for positions in itertools.combinations(range(ka + kb), ka):
        pos_set = set(positions)
        ia = ib = 0
        va, vb = a[0], b[0]
        steps = [(va, vb)]
        for slot in range(ka + kb):
            if slot in pos_set:
                ia += 1
                va = a[ia]
            else:
                ib += 1
                vb = b[ib]
            steps.append((va, vb))
        yield steps


def _compose(a: W, b: W, op) -> W:
    v0 = op(a.v0, b.v0)
    v1 = op(a.v1, b.v1)
    hazard = False
    for ra in _representatives(a):
        for rb in _representatives(b):
            for steps in _interleavings(ra, rb):
                product = _reduce([op(x, y) for x, y in steps])
                expected = _reduce((v0, v1)) if v0 != v1 else (v0,)
                if product != expected:
                    hazard = True
                    break
            if hazard:
                break
        if hazard:
            break
    return _BY_KEY[(v0, v1, hazard)]


def _build_table(op) -> Dict[Tuple[W, W], W]:
    table: Dict[Tuple[W, W], W] = {}
    for a in W:
        for b in W:
            table[(a, b)] = _compose(a, b, op)
    return table


_AND_TABLE = _build_table(lambda x, y: x & y)
_OR_TABLE = _build_table(lambda x, y: x | y)
_NOT_TABLE: Dict[W, W] = {
    w: _BY_KEY[(1 - w.v0, 1 - w.v1, w.hazard)] for w in W
}


def wand(a: W, b: W) -> W:
    """AND of two waveform classes."""
    return _AND_TABLE[(a, b)]


def wor(a: W, b: W) -> W:
    """OR of two waveform classes."""
    return _OR_TABLE[(a, b)]


def wnot(a: W) -> W:
    """NOT of a waveform class (pure delay: hazards pass through)."""
    return _NOT_TABLE[a]


def input_class(start: int, end: int) -> W:
    """The class of an input signal over a transition (always clean)."""
    if start == end:
        return W.S1 if start else W.S0
    return W.RISE if end else W.FALL


def classify_network(network: SopNetwork, transition: Transition) -> W:
    """The output waveform class of a two-level AND-OR network.

    Every literal wire is delayed independently (unbounded wire delay), so
    gate inputs compose as independent classes.
    """
    input_classes = [
        input_class(a, b) for a, b in zip(transition.start, transition.end)
    ]
    or_acc = W.S0
    for gate in network.and_gates:
        acc = W.S1
        for var, phase in gate.literals:
            lit = input_classes[var] if phase else wnot(input_classes[var])
            acc = wand(acc, lit)
        or_acc = wor(or_acc, acc)
    return or_acc


def has_logic_hazard(network: SopNetwork, transition: Transition) -> bool:
    """True iff the network can glitch on the transition (any type).

    Exact for two-level networks under the paper's delay model; covers both
    static and dynamic hazards (unlike plain ternary simulation).
    """
    return classify_network(network, transition).hazard


def cover_hazard_free_by_algebra(instance, cover) -> bool:
    """Whole-cover hazard check through the waveform algebra.

    Classifies every (specified transition, output) pair of the cover's
    AND-OR implementation.  For covers that implement the specified function
    correctly on the transition cubes, this is equivalent to the Theorem
    2.11 verifier (property-tested in ``tests/test_algebra.py``) — an
    independent oracle derived from waveform composition instead of the
    covering lemmas.
    """
    networks = [
        SopNetwork(cover, output=j) for j in range(instance.n_outputs)
    ]
    for t in instance.transitions:
        for j, network in enumerate(networks):
            if has_logic_hazard(network, t):
                return False
    return True
