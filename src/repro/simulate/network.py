"""AND-OR network model of a sum-of-products cover.

The circuit model matches the paper's §2.1: arbitrary finite gate and wire
delays (every fanout branch of every signal has its own delay) and pure
delays (every input change propagates; nothing is filtered).  Complemented
input literals are assumed available hazard-free, as is standard for
two-level hazard analysis — an input and its complement both change
monotonically.

Construction validates the cover's shape: a cube whose literals reference
variables outside the cover's input range (possible when ``Cover.cubes``
is rebuilt by hand, as several passes do) raises a line-numbered
:class:`~repro.guard.errors.MalformedInstance` here instead of an
``IndexError`` deep inside a later ``evaluate`` call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cubes.cube import LITERAL_ONE, LITERAL_ZERO
from repro.cubes.cover import Cover
from repro.guard.errors import MalformedInstance


@dataclass(frozen=True)
class AndGate:
    """One product term: ``(variable, phase)`` pairs (phase 1 = positive)."""

    literals: Tuple[Tuple[int, int], ...]

    def evaluate(self, inputs: Sequence[int]) -> int:
        for var, phase in self.literals:
            if inputs[var] != phase:
                return 0
        return 1


class SopNetwork:
    """A two-level AND-OR network implementing one output of a cover."""

    def __init__(self, cover: Cover, output: int = 0):
        self.n_inputs = cover.n_inputs
        self.and_gates: List[AndGate] = []
        for row, cube in enumerate(cover, start=1):
            if cube.n_inputs != cover.n_inputs:
                raise MalformedInstance(
                    f"cover cube {row}: {cube.n_inputs} input literals do "
                    f"not fit a {cover.n_inputs}-input cover (literal "
                    f"indices up to {cube.n_inputs - 1} are out of range)"
                )
            if cover.n_outputs > 1 and not cube.has_output(output):
                continue
            if cube.is_empty:
                continue
            lits = []
            for i in range(cover.n_inputs):
                code = cube.literal(i)
                if code == LITERAL_ONE:
                    lits.append((i, 1))
                elif code == LITERAL_ZERO:
                    lits.append((i, 0))
            self.and_gates.append(AndGate(tuple(lits)))

    @property
    def n_gates(self) -> int:
        return len(self.and_gates) + 1  # AND gates plus the OR gate

    def _check_width(self, inputs: Sequence) -> None:
        if len(inputs) != self.n_inputs:
            raise MalformedInstance(
                f"network expects {self.n_inputs} input values, "
                f"got {len(inputs)}"
            )

    def evaluate(self, inputs: Sequence[int]) -> int:
        """Steady-state Boolean evaluation."""
        self._check_width(inputs)
        return 1 if any(g.evaluate(inputs) for g in self.and_gates) else 0

    def evaluate_ternary(self, inputs: Sequence[Optional[int]]) -> Optional[int]:
        """Ternary (0/None=X/1) evaluation with the standard X-propagation.

        An AND gate with any controlling 0 input is 0 regardless of X's; an
        OR gate with any 1 input is 1 regardless of X's.
        """
        self._check_width(inputs)
        or_val: Optional[int] = 0
        for g in self.and_gates:
            val: Optional[int] = 1
            for var, phase in g.literals:
                v = inputs[var]
                if v is None:
                    if val == 1:
                        val = None
                elif v != phase:
                    val = 0
                    break
            if val == 1:
                return 1
            if val is None:
                or_val = None
        return or_val
