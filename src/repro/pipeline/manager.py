"""The pass manager: one engine for both minimizers' phase loops.

:class:`PassManager` executes a declarative pipeline spec (a sequence of
:class:`~repro.pipeline.base.Step` / :class:`~repro.pipeline.base.Group` /
:class:`~repro.pipeline.base.FixedPoint` nodes) against a mutable state,
applying the cross-cutting hooks uniformly around every pass:

1. **timing** — per-pass ``perf_counter`` wall time into
   ``state.phase_seconds`` (:class:`~repro.pipeline.hooks.TimingHook`);
2. **snapshots** — best-verified-cover capture after each pass
   (:class:`~repro.pipeline.hooks.SnapshotHook`);
3. **trace** — phase-boundary lines
   (:class:`~repro.pipeline.hooks.TraceHook`);
4. **invariants** — checked-mode Theorem 2.11 checkpoints
   (:class:`repro.guard.invariants.InvariantCheckHook`);
5. **budget** — per-round iteration charging
   (:class:`repro.guard.budget.BudgetChargeHook`).

When a tracer is active (:func:`repro.obs.current_tracer`), drivers append
a sixth, opt-in hook: **spans** — one structured span per pass / group /
fixed point (:class:`repro.obs.hook.ObsHook`), fed by the extended,
always-paired structural events this manager dispatches defensively (see
:mod:`repro.pipeline.hooks`).

Budget exhaustion is handled here, once, instead of in every driver: a
:class:`~repro.guard.errors.BudgetExceeded` raised anywhere inside the
pipeline is caught, the state degrades to its best snapshot with
``status="budget_exceeded"``, and the run finishes normally.  While no
snapshot exists yet (e.g. canonicalization has not produced a first valid
cover) the exception propagates — exactly the pre-pipeline driver
contract.  :class:`~repro.guard.errors.NoSolutionError` and
:class:`~repro.guard.errors.InvariantViolation` always propagate: they are
properties of the input and of the implementation, not of the budget.
"""

from __future__ import annotations

import time
from typing import Any, List, Optional, Sequence

from repro.guard.errors import BudgetExceeded
from repro.pipeline.base import FixedPoint, Group, Node, Step


def default_hooks() -> List[Any]:
    """The standard hook stack, in application order.

    Order matters and mirrors the pre-pipeline drivers: timing first, then
    snapshot capture (so a later invariant failure still leaves a valid
    ``best``), trace, invariants, and budget charging last.
    """
    from repro.guard.budget import BudgetChargeHook
    from repro.guard.invariants import InvariantCheckHook
    from repro.pipeline.hooks import SnapshotHook, TimingHook, TraceHook

    return [
        TimingHook(),
        SnapshotHook(),
        TraceHook(),
        InvariantCheckHook(),
        BudgetChargeHook(),
    ]


class PassManager:
    """Executes a pipeline spec with a uniform hook stack."""

    def __init__(self, hooks: Optional[Sequence[Any]] = None):
        self.hooks = list(hooks) if hooks is not None else default_hooks()

    def run(
        self,
        nodes: Sequence[Node],
        state: Any,
        start_from: Optional[Sequence[Any]] = None,
    ) -> Any:
        """Run the whole pipeline; returns the (mutated) state.

        Degrades to ``state.best`` on budget exhaustion once a snapshot
        exists; re-raises while none does (no valid cover yet).

        ``start_from`` pre-seeds ``state.best`` with a caller-supplied
        cover (cube list) before the first pass runs — the first-class
        warm-start entry point: a budget blown before the first snapshot
        then degrades to the seed instead of dying.  The caller owns the
        seed's validity (``espresso_hf`` only passes covers the Theorem
        2.11 verifier accepted against the live instance).  Normal runs
        are unaffected: the snapshot hook overwrites ``best`` after the
        first snapshotting pass, and ``best`` is only ever *read* on
        budget exhaustion.
        """
        try:
            if start_from is not None and state.best is None:
                state.best = list(start_from)
                state.trace.append(f"start-from:|F|={len(state.best)}")
            self._run_sequence(nodes, state)
        except BudgetExceeded as exc:
            if state.best is None:
                raise
            state.status = "budget_exceeded"
            state.on_budget_exceeded(exc)
            state.trace.append(
                f"budget-exceeded:{exc.reason}@{exc.phase or '?'}"
            )
        return state

    # ------------------------------------------------------------------

    def _dispatch(self, event: str, *args: Any) -> None:
        """Dispatch an extended structural event defensively.

        The original four hook events are called unconditionally (every
        hook implements them); the extended events —
        ``group_started/finished``, ``fixed_point_started/exited`` — are
        looked up with ``getattr`` so duck-typed legacy hooks that predate
        them keep working unchanged.
        """
        for hook in self.hooks:
            fn = getattr(hook, event, None)
            if fn is not None:
                fn(*args)

    def _run_sequence(self, nodes: Sequence[Node], state: Any) -> None:
        for node in nodes:
            if state.stop:
                return
            if isinstance(node, Step):
                self._run_step(node, state)
            elif isinstance(node, Group):
                if node.enabled is None or node.enabled(state):
                    self._dispatch("group_started", node, state)
                    try:
                        self._run_sequence(node.body, state)
                    finally:
                        self._dispatch("group_finished", node, state)
            elif isinstance(node, FixedPoint):
                self._run_fixed_point(node, state)
            else:  # pragma: no cover - spec construction error
                raise TypeError(f"not a pipeline node: {node!r}")

    def _run_step(self, step: Step, state: Any) -> None:
        if step.enabled is not None and not step.enabled(state):
            return
        for hook in self.hooks:
            hook.pass_started(step, state)
        t0 = time.perf_counter()
        returned = step.pass_.run(state)
        seconds = time.perf_counter() - t0
        if returned is not None and returned is not state:
            raise TypeError(
                f"pass {step.name!r} returned a new state object; passes "
                "must mutate and return the state they were given"
            )
        for hook in self.hooks:
            hook.pass_finished(step, state, seconds)

    def _run_fixed_point(self, fp: FixedPoint, state: Any) -> None:
        if fp.enabled is not None and not fp.enabled(state):
            return
        measure = fp.measure if fp.measure is not None else type(state).measure
        if fp.track_convergence:
            state.converged = False
        rounds = 0
        self._dispatch("fixed_point_started", fp, state)
        try:
            while fp.max_rounds is None or rounds < fp.max_rounds:
                size_before = measure(state)
                self._run_sequence(fp.body, state)
                rounds += 1
                if fp.charge:
                    state.iterations += 1
                    for hook in self.hooks:
                        hook.round_finished(fp, state)
                if state.stop:
                    return
                if measure(state) >= size_before:
                    if fp.track_convergence:
                        state.converged = True
                    break
        finally:
            self._dispatch("fixed_point_exited", fp, state, rounds)
        for hook in self.hooks:
            hook.fixed_point_finished(fp, state, rounds)
        if fp.track_convergence and not state.converged:
            # Exhausting the round cap without a non-shrinking round means
            # convergence was never demonstrated; surface it instead of
            # posing as a converged minimum.
            if state.status == "ok":
                state.status = "degraded"
            if fp.exhausted_message:
                state.trace.append(fp.exhausted_message)
