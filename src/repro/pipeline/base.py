"""Pass protocol and declarative pipeline specs.

Both minimizers in this repository — Espresso-HF (:mod:`repro.hf`) and the
Espresso-II baseline (:mod:`repro.espresso`) — are fixed-point loops over a
small set of phase operators.  This module gives that shape a first-class
representation: a *pipeline* is a sequence of steps, where each step is

:class:`Step`
    one :class:`Pass` application, annotated with the hook behaviour the
    :class:`~repro.pipeline.manager.PassManager` applies around it
    (timing, snapshot capture, trace emission, invariant checks);
:class:`Group`
    a gated sub-sequence (e.g. "the whole minimization loop runs only when
    the cover left after essentials is non-empty");
:class:`FixedPoint`
    a sub-sequence repeated until the state's measure stops shrinking,
    optionally round-capped, budget-charged per round, and
    convergence-tracked (the driver's ``status="degraded"`` reporting).

The spec is *declarative*: drivers build a pipeline from options
(:func:`repro.hf.espresso_hf.build_hf_pipeline`) and hand it to the
manager, which owns every cross-cutting concern.  The design follows the
phase-driven engine style of property-testing shrinkers (see SNIPPETS):
phases are data, the loop around them is one reusable engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

try:  # pragma: no cover - typing nicety only
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - Python < 3.8 has no Protocol
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


@runtime_checkable
class Pass(Protocol):
    """One phase operator: a name plus ``run(state) -> state``.

    Passes mutate the pipeline state in place and return it (the return
    value is what the manager threads forward, so purely functional passes
    work too).  Everything *around* the pass — timing, budget charging,
    best-snapshot capture, checked-mode invariants, trace emission — is the
    manager's job; a pass body contains only the algorithmic phase itself.
    """

    name: str

    def run(self, state: Any) -> Any:  # pragma: no cover - protocol
        ...


#: predicate deciding whether a step/group/fixed point runs for this state
Enabled = Optional[Callable[[Any], bool]]


@dataclass
class Step:
    """One pass application plus its hook configuration.

    Attributes
    ----------
    pass_:
        The :class:`Pass` to run.
    record:
        Emit a phase-trace line after the pass (``"<name>:|F|=<size>"``).
    snapshot:
        Capture the state's best-verified snapshot after the pass.  Every
        operator of both minimizers preserves cover validity, so the
        default is on; turn it off only for passes whose intermediate
        state is not a valid cover.
    check:
        Run the checked-mode invariant checkpoint after the pass.
    check_cubes / check_reqs:
        What the invariant checkpoint verifies: the cover cubes and the
        required cubes they must keep covering.  ``None`` falls back to
        the hook's defaults (``state.f`` / skip).
    enabled:
        Gate: the step is skipped when this returns false.
    """

    pass_: Pass
    record: bool = True
    snapshot: bool = True
    check: bool = True
    check_cubes: Optional[Callable[[Any], Sequence]] = None
    check_reqs: Optional[Callable[[Any], Sequence]] = None
    enabled: Enabled = None

    @property
    def name(self) -> str:
        return self.pass_.name


@dataclass
class Group:
    """A gated sub-sequence of steps (no repetition)."""

    name: str
    body: Tuple["Node", ...]
    enabled: Enabled = None


@dataclass
class FixedPoint:
    """Repeat ``body`` until the state's measure stops shrinking.

    Attributes
    ----------
    max_rounds:
        Round cap (``None`` = until the measure stops shrinking).  With a
        cap, exhausting it *without* a non-shrinking round means the fixed
        point was never demonstrated.
    charge:
        Charge one budget iteration per round
        (:meth:`repro.guard.budget.RunBudget.charge_iteration` via the
        manager's budget hook) and count it on ``state.iterations``.
    track_convergence:
        Maintain ``state.converged``: cleared on entry, set when a round
        fails to shrink the measure.  Exhausting ``max_rounds`` first
        leaves it cleared and, when ``exhausted_message`` is set, degrades
        ``state.status`` to ``"degraded"`` with that trace line — the
        driver-visible "stopped before converging" report.
    measure:
        Progress measure (defaults to ``state.measure()``, typically the
        cover size).  A round that does not strictly shrink it ends the
        loop.
    """

    name: str
    body: Tuple["Node", ...]
    max_rounds: Optional[int] = None
    charge: bool = False
    track_convergence: bool = False
    exhausted_message: Optional[str] = None
    measure: Optional[Callable[[Any], int]] = None
    enabled: Enabled = None


Node = Union[Step, Group, FixedPoint]


def map_passes(
    nodes: Sequence[Node], fn: Callable[[Pass], Pass]
) -> Tuple[Node, ...]:
    """Rebuild a spec with every :class:`Pass` routed through ``fn``.

    Structure (groups, fixed points, gates, hook configuration) is
    preserved; only the ``pass_`` objects are substituted.  ``fn`` may
    return its argument unchanged to leave a pass alone.  This is the
    instrumentation seam of the pipeline layer: the proptest fault
    injector (:mod:`repro.proptest.faults`) wraps individual phase
    operators with deliberately defective variants through it, and
    tracing/measurement wrappers can use the same hook.
    """
    rebuilt: List[Node] = []
    for node in nodes:
        if isinstance(node, Step):
            new_pass = fn(node.pass_)
            if new_pass is node.pass_:
                rebuilt.append(node)
            else:
                rebuilt.append(
                    Step(
                        new_pass,
                        record=node.record,
                        snapshot=node.snapshot,
                        check=node.check,
                        check_cubes=node.check_cubes,
                        check_reqs=node.check_reqs,
                        enabled=node.enabled,
                    )
                )
        elif isinstance(node, Group):
            rebuilt.append(
                Group(node.name, map_passes(node.body, fn), enabled=node.enabled)
            )
        elif isinstance(node, FixedPoint):
            rebuilt.append(
                FixedPoint(
                    node.name,
                    map_passes(node.body, fn),
                    max_rounds=node.max_rounds,
                    charge=node.charge,
                    track_convergence=node.track_convergence,
                    exhausted_message=node.exhausted_message,
                    measure=node.measure,
                    enabled=node.enabled,
                )
            )
        else:  # pragma: no cover - spec construction error
            raise TypeError(f"not a pipeline node: {node!r}")
    return tuple(rebuilt)


def flatten_pass_names(nodes: Sequence[Node]) -> List[str]:
    """Static pass-name sequence of a spec (fixed points listed once).

    Used by the golden-pipeline regression test and ``--pipeline``
    validation errors; the *dynamic* sequence (with loop repetitions) is
    ``state.executed_passes`` after a run.
    """
    names: List[str] = []
    for node in nodes:
        if isinstance(node, Step):
            names.append(node.name)
        elif isinstance(node, (Group, FixedPoint)):
            inner = flatten_pass_names(node.body)
            if isinstance(node, FixedPoint):
                names.append(f"[{'+'.join(inner)}]*")
            else:
                names.extend(inner)
        else:  # pragma: no cover - spec construction error
            raise TypeError(f"not a pipeline node: {node!r}")
    return names


class PipelineState:
    """Base state threaded through a pipeline run.

    Drivers subclass this and add their own fields (cover, context,
    options).  The manager and the stock hooks rely only on this surface:

    ``phase_seconds``
        per-pass wall-time accumulator (timing hook);
    ``trace`` / ``record_pass``
        phase-trace lines (trace hook); HF aliases this to
        ``HFContext.trace`` so guard events interleave correctly;
    ``best`` / ``snapshot_cubes`` / ``on_budget_exceeded``
        best-verified-snapshot capture and restoration (snapshot hook and
        the manager's budget-exhaustion handler); a ``snapshot_cubes`` of
        ``None`` opts out of snapshotting entirely;
    ``budget``
        the active :class:`~repro.guard.budget.RunBudget` or ``None``;
    ``measure``
        default fixed-point progress measure;
    ``stop``
        cooperative early exit: once set, no further node runs.
    """

    def __init__(self) -> None:
        self.phase_seconds: dict = {}
        self.trace: List[str] = []
        self.executed_passes: List[str] = []
        self.status: str = "ok"
        self.best: Optional[list] = None
        self.iterations: int = 0
        self.converged: bool = True
        self.stop: bool = False
        self.stopped_early: bool = False
        self.ctx: Any = None

    # -- hook surface ---------------------------------------------------

    @property
    def budget(self):
        """The run budget charged by the manager (default: none)."""
        ctx = self.ctx
        return getattr(ctx, "budget", None) if ctx is not None else None

    def snapshot_cubes(self) -> Optional[list]:
        """Current best-verified cover candidate (None = unsupported)."""
        return None

    def cover_size(self) -> int:
        """Cover size reported in trace lines."""
        snap = self.snapshot_cubes()
        return len(snap) if snap is not None else 0

    def measure(self) -> int:
        """Default fixed-point progress measure."""
        return self.cover_size()

    def record_pass(self, name: str) -> None:
        """Append one phase-boundary trace line."""
        self.trace.append(f"{name}:|F|={self.cover_size()}")

    def on_budget_exceeded(self, exc) -> None:
        """Restore the best snapshot after budget exhaustion."""
        if self.best is not None:
            pass  # subclasses restore their cover from ``best``
