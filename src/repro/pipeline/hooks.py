"""Stock cross-cutting hooks applied by the :class:`PassManager`.

A hook observes pipeline execution through four events; every method has a
no-op default so hooks implement only what they need:

``pass_started(step, state)``
    before a pass body runs;
``pass_finished(step, state, seconds)``
    after a pass body returned (``seconds`` is its wall time);
``round_finished(fixed_point, state)``
    after each *charged* round of a :class:`~repro.pipeline.base.FixedPoint`;
``fixed_point_finished(fixed_point, state, rounds)``
    after a fixed point exits *normally* (skipped on a cooperative
    ``state.stop``, preserved for backward compatibility).

Beyond those four, the manager dispatches *extended* structural events —
``group_started(group, state)`` / ``group_finished(group, state)`` and
``fixed_point_started(fixed_point, state)`` /
``fixed_point_exited(fixed_point, state, rounds)`` — which are always
paired (``finally``-dispatched), even when the body stops early or raises.
They exist for observers that must mirror the pipeline's structure
exactly, like the span tracer (:class:`repro.obs.hook.ObsHook`).  The
manager dispatches them defensively (``getattr``), so duck-typed legacy
hooks that only implement the original four events keep working.

The hooks here are engine-agnostic (timing, snapshots, trace).  The
guarded-runtime hooks — budget charging and checked-mode invariants — live
with the policies they apply: :class:`repro.guard.budget.BudgetChargeHook`
and :class:`repro.guard.invariants.InvariantCheckHook`.  The span-tracing
hook lives with the observability layer: :class:`repro.obs.hook.ObsHook`.
"""

from __future__ import annotations

from typing import Any

from repro.pipeline.base import FixedPoint, Step


class Hook:
    """Base class: all events default to no-ops."""

    def pass_started(self, step: Step, state: Any) -> None:
        pass

    def pass_finished(self, step: Step, state: Any, seconds: float) -> None:
        pass

    def round_finished(self, fixed_point: FixedPoint, state: Any) -> None:
        pass

    def fixed_point_finished(
        self, fixed_point: FixedPoint, state: Any, rounds: int
    ) -> None:
        pass

    # -- extended structural events (always paired, see module docstring)

    def group_started(self, group: Any, state: Any) -> None:
        pass

    def group_finished(self, group: Any, state: Any) -> None:
        pass

    def fixed_point_started(self, fixed_point: FixedPoint, state: Any) -> None:
        pass

    def fixed_point_exited(
        self, fixed_point: FixedPoint, state: Any, rounds: int
    ) -> None:
        pass


class TimingHook(Hook):
    """Accumulate per-pass wall time into ``state.phase_seconds``.

    Also maintains ``state.executed_passes`` (the dynamic pass sequence,
    asserted by the golden-pipeline test) and the ``passes_executed``
    counter on the context's :class:`~repro.perf.PerfCounters` when one is
    attached.
    """

    def pass_finished(self, step: Step, state: Any, seconds: float) -> None:
        name = step.name
        state.phase_seconds[name] = state.phase_seconds.get(name, 0.0) + seconds
        state.executed_passes.append(name)
        perf = getattr(state.ctx, "perf", None) if state.ctx is not None else None
        if perf is not None:
            perf.passes_executed += 1


class SnapshotHook(Hook):
    """Capture the best-verified cover snapshot after each pass.

    Every operator of both minimizers preserves cover validity, so the
    state after any pass is a safe point to degrade to when the budget
    runs out mid-phase later on.  States that return ``None`` from
    ``snapshot_cubes`` (e.g. the Espresso-II baseline, which has no guard
    runtime) opt out.
    """

    def pass_finished(self, step: Step, state: Any, seconds: float) -> None:
        if not step.snapshot:
            return
        snap = state.snapshot_cubes()
        if snap is not None:
            state.best = snap


class TraceHook(Hook):
    """Emit one phase-trace line per recorded pass and fixed point."""

    def pass_finished(self, step: Step, state: Any, seconds: float) -> None:
        if step.record:
            state.record_pass(step.name)

    def fixed_point_finished(
        self, fixed_point: FixedPoint, state: Any, rounds: int
    ) -> None:
        state.trace.append(
            f"{fixed_point.name}:rounds={rounds}:|F|={state.cover_size()}"
        )
