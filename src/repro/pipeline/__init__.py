"""Unified pass-pipeline framework for the minimizer drivers.

One :class:`PassManager` runs both minimizers:

* :func:`repro.hf.espresso_hf` executes the paper's Figure 2 algorithm as
  a declarative spec (canonicalize → essentials → [reduce, expand,
  irredundant]* → last_gasp → make_prime → final_irredundant) built by
  :func:`repro.hf.espresso_hf.build_hf_pipeline`;
* :func:`repro.espresso.espresso` runs the Espresso-II baseline loop on
  the same engine.

The manager applies every cross-cutting concern uniformly around each
pass: per-pass timing, run-budget charging, best-verified-snapshot
capture, checked-mode invariant checkpoints, and trace emission.  See
:mod:`repro.pipeline.base` for the spec vocabulary and
:mod:`repro.pipeline.manager` for execution semantics.
"""

from repro.pipeline.base import (
    FixedPoint,
    Group,
    Pass,
    PipelineState,
    Step,
    flatten_pass_names,
    map_passes,
)
from repro.pipeline.hooks import Hook, SnapshotHook, TimingHook, TraceHook
from repro.pipeline.manager import PassManager, default_hooks

__all__ = [
    "FixedPoint",
    "Group",
    "Hook",
    "Pass",
    "PassManager",
    "PipelineState",
    "SnapshotHook",
    "Step",
    "TimingHook",
    "TraceHook",
    "default_hooks",
    "flatten_pass_names",
    "map_passes",
]
