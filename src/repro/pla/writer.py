"""Writer for Espresso-style PLA files with the ``.trans`` extension."""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from repro.cubes.cover import Cover
from repro.hazards.instance import HazardFreeInstance


def format_cover(cover: Cover, pla_type: str = "f", name: str = "pla") -> str:
    """Format a plain (result) cover as PLA text."""
    lines = [f"# {name}", f".i {cover.n_inputs}", f".o {cover.n_outputs}",
             f".type {pla_type}", f".p {len(cover)}"]
    for c in cover:
        lines.append(f"{c.input_string()} {c.output_string()}")
    lines.append(".e")
    return "\n".join(lines) + "\n"


def format_pla(instance: HazardFreeInstance) -> str:
    """Format a hazard-free instance as a ``.type fr`` PLA with transitions.

    ON rows use output character ``1``, OFF rows ``0``; unlisted points are
    don't-care.  Rows are merged so a cube appearing in both sets (for
    different outputs) emits one line per set, which keeps the writer simple
    and round-trippable.
    """
    lines = [
        f"# {instance.name}",
        f".i {instance.n_inputs}",
        f".o {instance.n_outputs}",
        ".type fr",
    ]
    rows: List[str] = []
    for c in instance.on:
        out = "".join("1" if c.has_output(j) else "-" for j in range(instance.n_outputs))
        rows.append(f"{c.input_string()} {out}")
    for c in instance.off:
        out = "".join("0" if c.has_output(j) else "-" for j in range(instance.n_outputs))
        rows.append(f"{c.input_string()} {out}")
    lines.append(f".p {len(rows)}")
    lines.extend(rows)
    for t in instance.transitions:
        lines.append(
            ".trans "
            + "".join(map(str, t.start))
            + " "
            + "".join(map(str, t.end))
        )
    lines.append(".e")
    return "\n".join(lines) + "\n"


def write_pla(
    target: Union[HazardFreeInstance, Cover],
    path: Union[str, Path],
    **kwargs,
) -> None:
    """Write an instance (``.type fr`` + transitions) or a cover to disk."""
    if isinstance(target, HazardFreeInstance):
        text = format_pla(target)
    else:
        text = format_cover(target, **kwargs)
    Path(path).write_text(text)
