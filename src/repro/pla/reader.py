"""Parser for Espresso-style PLA files with the ``.trans`` extension.

Supported directives: ``.i``, ``.o``, ``.p`` (ignored count), ``.ilb``,
``.ob``, ``.type`` (``f``, ``fr``, ``fd``, ``fdr``), ``.trans``, ``.e``.
Output-plane characters: ``1`` (ON), ``0`` (OFF under an ``r`` type, else
don't-care), ``-``/``~``/``2`` (don't-care), ``4`` (ON, Espresso legacy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.cubes.cube import Cube
from repro.cubes.cover import Cover
from repro.guard.errors import MalformedInstance
from repro.hazards.instance import HazardFreeInstance
from repro.hazards.transitions import Transition


class PlaError(MalformedInstance):
    """Raised on malformed PLA input.

    Subclasses :class:`~repro.guard.errors.MalformedInstance` (and thus
    ``ValueError``), so the CLI maps it to exit code 4.  Messages carry the
    1-based line number of the offending line whenever one exists.
    """


@dataclass
class PlaFile:
    """Parsed contents of a PLA file."""

    n_inputs: int
    n_outputs: int
    on: Cover
    off: Cover
    dc: Cover
    transitions: List[Transition] = field(default_factory=list)
    input_labels: Optional[List[str]] = None
    output_labels: Optional[List[str]] = None
    pla_type: str = "fr"
    name: str = "pla"

    def to_instance(self, validate: bool = True) -> HazardFreeInstance:
        """Build a hazard-free instance (requires an ``r`` type: OFF given)."""
        if "r" not in self.pla_type:
            raise PlaError(
                f"type '{self.pla_type}' has no OFF-set; a hazard-free "
                "instance needs .type fr (or fdr)"
            )
        return HazardFreeInstance(
            self.on, self.off, self.transitions, name=self.name, validate=validate
        )


def read_pla(path: Union[str, Path]) -> PlaFile:
    """Read and parse a PLA file from disk."""
    text = Path(path).read_text()
    return parse_pla(text, name=Path(path).stem)


def parse_pla(text: str, name: str = "pla") -> PlaFile:
    """Parse PLA text into a :class:`PlaFile`."""
    n_inputs: Optional[int] = None
    n_outputs: Optional[int] = None
    pla_type = "fr"
    input_labels = None
    output_labels = None
    rows: List[Tuple[int, str, str]] = []
    transitions: List[Transition] = []

    def _count(parts: List[str], lineno: int) -> int:
        if len(parts) != 2:
            raise PlaError(f"line {lineno}: {parts[0]} needs one integer argument")
        try:
            value = int(parts[1])
        except ValueError:
            raise PlaError(
                f"line {lineno}: {parts[0]} argument {parts[1]!r} is not an integer"
            ) from None
        if value <= 0:
            raise PlaError(f"line {lineno}: {parts[0]} must be positive, got {value}")
        return value

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            key = parts[0]
            if key == ".i":
                n_inputs = _count(parts, lineno)
            elif key == ".o":
                n_outputs = _count(parts, lineno)
            elif key == ".p":
                pass  # informational product count
            elif key == ".ilb":
                input_labels = parts[1:]
            elif key == ".ob":
                output_labels = parts[1:]
            elif key == ".type":
                if len(parts) != 2:
                    raise PlaError(f"line {lineno}: .type needs an argument")
                pla_type = parts[1]
                if pla_type not in ("f", "fd", "fr", "fdr"):
                    raise PlaError(f"line {lineno}: unsupported .type {pla_type}")
            elif key == ".trans":
                if len(parts) != 3:
                    raise PlaError(f"line {lineno}: .trans needs START END")
                transitions.append(_parse_transition(parts[1], parts[2], lineno))
            elif key == ".e" or key == ".end":
                break
            else:
                raise PlaError(f"line {lineno}: unknown directive {key}")
        else:
            parts = line.split()
            if len(parts) == 1 and n_outputs == 1:
                # single-output shorthand: implicit output '1'
                parts = [parts[0], "1"]
            if len(parts) != 2:
                raise PlaError(f"line {lineno}: expected 'inputs outputs'")
            rows.append((lineno, parts[0], parts[1]))

    if n_inputs is None or n_outputs is None:
        if n_inputs is None and n_outputs is None and not rows and not transitions:
            raise PlaError(f"{name}: empty or truncated PLA (no .i/.o directive)")
        missing = ".i" if n_inputs is None else ".o"
        raise PlaError(f"{name}: missing {missing} directive")
    for t in transitions:
        if t.n_inputs != n_inputs:
            raise PlaError(f"transition {t} width does not match .i {n_inputs}")

    on = Cover(n_inputs, (), n_outputs)
    off = Cover(n_inputs, (), n_outputs)
    dc = Cover(n_inputs, (), n_outputs)
    off_specified = "r" in pla_type
    dc_specified = "d" in pla_type
    for lineno, in_part, out_part in rows:
        if len(in_part) != n_inputs:
            raise PlaError(
                f"line {lineno}: cube {in_part!r} width != .i {n_inputs}"
            )
        if len(out_part) != n_outputs:
            raise PlaError(
                f"line {lineno}: output part {out_part!r} width != .o {n_outputs}"
            )
        try:
            base = Cube.from_string(in_part, "0" * n_outputs)
        except ValueError as exc:
            raise PlaError(f"line {lineno}: {exc}") from None
        on_bits = 0
        off_bits = 0
        dc_bits = 0
        for j, ch in enumerate(out_part):
            if ch in "14":
                on_bits |= 1 << j
            elif ch == "0":
                if off_specified:
                    off_bits |= 1 << j
                # otherwise: "not in the ON set", carries no information
            elif ch in "-~2":
                if dc_specified:
                    dc_bits |= 1 << j
            else:
                raise PlaError(f"line {lineno}: bad output character {ch!r}")
        if on_bits:
            on.append(base.with_outputs(on_bits))
        if off_bits:
            off.append(base.with_outputs(off_bits))
        if dc_bits:
            dc.append(base.with_outputs(dc_bits))
    return PlaFile(
        n_inputs=n_inputs,
        n_outputs=n_outputs,
        on=on,
        off=off,
        dc=dc,
        transitions=transitions,
        input_labels=input_labels,
        output_labels=output_labels,
        pla_type=pla_type,
        name=name,
    )


def _parse_transition(start: str, end: str, lineno: int) -> Transition:
    try:
        a = tuple(int(c) for c in start)
        b = tuple(int(c) for c in end)
        return Transition(a, b)
    except ValueError as exc:
        raise PlaError(f"line {lineno}: bad transition endpoints") from exc
