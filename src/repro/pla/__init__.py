"""PLA file I/O (Berkeley Espresso format) with a transitions extension.

The classic format is extended with ``.trans START END`` lines giving the
specified multiple-input changes of a hazard-free minimization instance, so
a whole :class:`~repro.hazards.instance.HazardFreeInstance` round-trips
through one file.
"""

from repro.pla.reader import read_pla, parse_pla, PlaFile, PlaError
from repro.pla.writer import write_pla, format_pla, format_cover

__all__ = [
    "read_pla",
    "parse_pla",
    "PlaFile",
    "PlaError",
    "write_pla",
    "format_pla",
    "format_cover",
]
