"""repro — Espresso-HF: heuristic hazard-free two-level logic minimization.

Reproduction of Theobald, Nowick & Wu, "Espresso-HF: A Heuristic Hazard-Free
Minimizer for Two-Level Logic", DAC 1996.

The most common entry points are re-exported here::

    from repro import Cover, HazardFreeInstance, Transition, espresso_hf

    on  = Cover.from_strings(["-1--", "1-0-", "0-00"])
    off = Cover.from_strings(["-01-", "0001"])
    instance = HazardFreeInstance(on, off, [Transition((0,1,0,0), (0,0,0,1))])
    result = espresso_hf(instance)

Package map
-----------

* :mod:`repro.cubes` — cube/cover algebra (bitmask positional-cube notation).
* :mod:`repro.espresso` — Espresso-II substrate and baseline minimizer.
* :mod:`repro.mincov` — unate covering solver (exact + greedy).
* :mod:`repro.hazards` — transitions, required/privileged cubes,
  ``supercube_dhf``, the Theorem 2.11 verifier, Theorem 4.1 existence.
* :mod:`repro.exact` — the exact hazard-free minimizer (comparator).
* :mod:`repro.hf` — **Espresso-HF**, the paper's algorithm.
* :mod:`repro.pla` — PLA I/O with the ``.trans`` extension.
* :mod:`repro.simulate` — ternary / eight-valued / Monte-Carlo / closed-loop
  hazard analysis, VCD export.
* :mod:`repro.bm` — burst-mode specs, synthesis, controller library, the
  synthetic benchmark suite.
* :mod:`repro.report` — statistics and PLA-area reporting.
* :mod:`repro.bench` — harnesses regenerating the paper's tables/figures.
"""

from repro.cubes import Cube, Cover
from repro.hazards import (
    HazardFreeInstance,
    Transition,
    hazard_free_solution_exists,
    verify_hazard_free_cover,
)
from repro.hf import espresso_hf, espresso_hf_per_output, EspressoHFOptions, NoSolutionError
from repro.exact import exact_hazard_free_minimize, ExactBudget, ExactFailure

__version__ = "1.0.0"

__all__ = [
    "Cube",
    "Cover",
    "HazardFreeInstance",
    "Transition",
    "hazard_free_solution_exists",
    "verify_hazard_free_cover",
    "espresso_hf",
    "espresso_hf_per_output",
    "EspressoHFOptions",
    "NoSolutionError",
    "exact_hazard_free_minimize",
    "ExactBudget",
    "ExactFailure",
    "__version__",
]
