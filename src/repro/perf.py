"""Operator-level performance counters for one minimizer run.

Every :class:`repro.hf.context.HFContext` owns a :class:`PerfCounters`
instance; the hot-path primitives (``supercube_dhf_bits``, the coverage
bitmask cache, the MINCOV solver) bump counters as they run, and the
operator entry points record wall time under their own name.  The final
snapshot travels on :class:`repro.hf.result.HFResult` and into the
benchmark JSON (``scripts/bench_hf.py``), so performance regressions show
up as numbers, not vibes.

All counters are plain integers updated inline — the bookkeeping must cost
(almost) nothing on the path it measures.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List


@dataclass
class PerfCounters:
    """Counters and wall-time breakdown for one Espresso-HF run.

    Attributes
    ----------
    supercube_calls / supercube_cache_hits:
        ``supercube_dhf_bits`` invocations and how many were answered from
        the memo table.  The hit rate is the paper's §3.3.1 acceleration
        story in one number.
    supercube_chain_cached:
        Intermediate cubes of forced-expansion chains written to the memo
        table (every cube along a chain maps to the same fixpoint).
    expand_probes:
        Candidate feasibility probes issued by EXPAND (phase 1 and the
        required-cube phase).
    coverage_masks_built / coverage_mask_hits:
        Coverage-bitset rows computed from scratch vs. served memoized.
    mincov_problems / mincov_rows / mincov_nodes:
        Covering problems solved by IRREDUNDANT/LAST_GASP, their total row
        count, and branch-and-bound nodes explored.
    passes_executed:
        Pipeline passes executed by the
        :class:`~repro.pipeline.manager.PassManager` (dynamic count, loop
        repetitions included).
    invariant_checks / crosscheck_divergences / scalar_fallbacks:
        Guarded-runtime events (checked mode): phase-boundary invariant
        checkpoints executed, scalar-vs-bitset coverage divergences caught,
        and fallbacks to the scalar coverage path they triggered.  Any
        nonzero divergence count on a run is a caught engine bug — the
        result is still correct (the run continued on the scalar path) but
        the event must be investigated.
    escape_rows_built:
        Escape-row prefilter rows constructed by the batched essentials
        engine (one per canonical required cube of the instance).
    escape_swar_filtered:
        Pair probes answered by the SWAR seed-level OFF-set filter alone —
        each is a ``supercube_dhf`` fixpoint that never had to run.
    escape_probe_hits:
        Escape-row probes answered from the supercube memo table.  Counted
        at probe time (the old lump-sum accounting misstated interleaving
        in span-correlated metrics); these probes also count toward
        ``supercube_calls`` / ``supercube_cache_hits``.
    essentials_rescans_avoided:
        Seed re-examinations skipped by the incremental essentials
        fixpoint because no removed required cube intersected the seed's
        escape-row trigger set — the examination verdict is provably
        unchanged, so neither the greedy expansion nor the distinguished
        scan reruns.
    essentials_memo_peak:
        Peak entry count across the essentials engine's per-instance memo
        tables (expansion memo, escape rows, escape verdicts).  The
        tables are cleared when ``compute_essentials`` returns, so
        service-style runs don't accumulate per-instance state; merging
        takes the max, not the sum.
    warm_memo_imported:
        Supercube-memo entries adopted from a
        :class:`~repro.session.MinimizationSession` on a warm start —
        each is a fixpoint (or an infeasibility proof) the run never has
        to recompute.  Only entries whose outputs have unchanged
        privileged and OFF sets are eligible (docs/WARMSTART.md).
    warm_escape_imported:
        Pair-infeasibility proofs recovered from a prior session's escape
        rows and seeded into the supercube memo on a warm start.
    warm_cubes_reverified:
        Cubes of a prior session's cover re-verified against the *new*
        instance with the Theorem 2.11 checker during warm-start planning
        (identical-mode short-circuit and budget-floor seeding).
    op_seconds:
        Wall-clock seconds per operator (``expand``, ``reduce``,
        ``irredundant``, ``last_gasp``, ``essentials``, ``make_prime``).
        Nested operators double-count on purpose: ``last_gasp`` includes
        the IRREDUNDANT call it issues.  Summing this dict therefore
        overstates total operator time — use :attr:`exclusive_seconds`
        for anything additive.
    exclusive_seconds:
        Wall-clock seconds per operator *excluding* time spent in nested
        operator timers: ``last_gasp`` here counts only its own scanning
        and candidate generation, not the inner IRREDUNDANT.  Exclusive
        times of one run partition disjoint wall intervals, so
        ``sum(exclusive_seconds.values()) <= runtime_s`` always holds
        (pinned by ``tests/test_perf_exclusive.py``) — this is the view
        the benchmark regression gate (:mod:`repro.obs.regress`) diffs.
    """

    supercube_calls: int = 0
    supercube_cache_hits: int = 0
    supercube_chain_cached: int = 0
    expand_probes: int = 0
    coverage_masks_built: int = 0
    coverage_mask_hits: int = 0
    mincov_problems: int = 0
    mincov_rows: int = 0
    mincov_nodes: int = 0
    passes_executed: int = 0
    invariant_checks: int = 0
    crosscheck_divergences: int = 0
    scalar_fallbacks: int = 0
    escape_rows_built: int = 0
    escape_swar_filtered: int = 0
    escape_probe_hits: int = 0
    essentials_rescans_avoided: int = 0
    essentials_memo_peak: int = 0
    warm_memo_imported: int = 0
    warm_escape_imported: int = 0
    warm_cubes_reverified: int = 0
    op_seconds: Dict[str, float] = field(default_factory=dict)
    exclusive_seconds: Dict[str, float] = field(default_factory=dict)
    #: open-timer stack: [name, start, child_seconds] frames (not state
    #: that travels — snapshots serialize only the accumulated dicts)
    _op_stack: List[list] = field(
        default_factory=list, repr=False, compare=False
    )

    @property
    def supercube_hit_rate(self) -> float:
        """Fraction of ``supercube_dhf_bits`` calls served from the memo."""
        if not self.supercube_calls:
            return 0.0
        return self.supercube_cache_hits / self.supercube_calls

    @property
    def coverage_hit_rate(self) -> float:
        """Fraction of coverage-mask lookups served from the memo."""
        total = self.coverage_masks_built + self.coverage_mask_hits
        return self.coverage_mask_hits / total if total else 0.0

    @contextmanager
    def op_timer(self, name: str) -> Iterator[None]:
        """Accumulate wall time of the enclosed block under ``name``.

        Total time goes to :attr:`op_seconds` (nested timers double-count
        by design); time net of nested ``op_timer`` blocks goes to
        :attr:`exclusive_seconds`.
        """
        frame = [name, time.perf_counter(), 0.0]
        self._op_stack.append(frame)
        try:
            yield
        finally:
            total = time.perf_counter() - frame[1]
            self._op_stack.pop()
            self.op_seconds[name] = self.op_seconds.get(name, 0.0) + total
            self.exclusive_seconds[name] = (
                self.exclusive_seconds.get(name, 0.0) + total - frame[2]
            )
            if self._op_stack:
                self._op_stack[-1][2] += total

    def merge(self, other: "PerfCounters") -> None:
        """Fold another run's counters into this one (per-output mode)."""
        self.supercube_calls += other.supercube_calls
        self.supercube_cache_hits += other.supercube_cache_hits
        self.supercube_chain_cached += other.supercube_chain_cached
        self.expand_probes += other.expand_probes
        self.coverage_masks_built += other.coverage_masks_built
        self.coverage_mask_hits += other.coverage_mask_hits
        self.mincov_problems += other.mincov_problems
        self.mincov_rows += other.mincov_rows
        self.mincov_nodes += other.mincov_nodes
        self.passes_executed += other.passes_executed
        self.invariant_checks += other.invariant_checks
        self.crosscheck_divergences += other.crosscheck_divergences
        self.scalar_fallbacks += other.scalar_fallbacks
        self.escape_rows_built += other.escape_rows_built
        self.escape_swar_filtered += other.escape_swar_filtered
        self.escape_probe_hits += other.escape_probe_hits
        self.essentials_rescans_avoided += other.essentials_rescans_avoided
        self.essentials_memo_peak = max(
            self.essentials_memo_peak, other.essentials_memo_peak
        )
        self.warm_memo_imported += other.warm_memo_imported
        self.warm_escape_imported += other.warm_escape_imported
        self.warm_cubes_reverified += other.warm_cubes_reverified
        for name, seconds in other.op_seconds.items():
            self.op_seconds[name] = self.op_seconds.get(name, 0.0) + seconds
        for name, seconds in other.exclusive_seconds.items():
            self.exclusive_seconds[name] = (
                self.exclusive_seconds.get(name, 0.0) + seconds
            )

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot (used by ``scripts/bench_hf.py``)."""
        return {
            "supercube_calls": self.supercube_calls,
            "supercube_cache_hits": self.supercube_cache_hits,
            "supercube_hit_rate": round(self.supercube_hit_rate, 4),
            "supercube_chain_cached": self.supercube_chain_cached,
            "expand_probes": self.expand_probes,
            "coverage_masks_built": self.coverage_masks_built,
            "coverage_mask_hits": self.coverage_mask_hits,
            "coverage_hit_rate": round(self.coverage_hit_rate, 4),
            "mincov_problems": self.mincov_problems,
            "mincov_rows": self.mincov_rows,
            "mincov_nodes": self.mincov_nodes,
            "passes_executed": self.passes_executed,
            "invariant_checks": self.invariant_checks,
            "crosscheck_divergences": self.crosscheck_divergences,
            "scalar_fallbacks": self.scalar_fallbacks,
            "escape_rows_built": self.escape_rows_built,
            "escape_swar_filtered": self.escape_swar_filtered,
            "escape_probe_hits": self.escape_probe_hits,
            "essentials_rescans_avoided": self.essentials_rescans_avoided,
            "essentials_memo_peak": self.essentials_memo_peak,
            "warm_memo_imported": self.warm_memo_imported,
            "warm_escape_imported": self.warm_escape_imported,
            "warm_cubes_reverified": self.warm_cubes_reverified,
            "op_seconds": {k: round(v, 6) for k, v in self.op_seconds.items()},
            "exclusive_seconds": {
                k: round(v, 6) for k, v in self.exclusive_seconds.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PerfCounters":
        """Rebuild counters from an :meth:`as_dict` snapshot.

        Derived rates are recomputed, not read back; unknown keys are
        ignored so old snapshots stay loadable.
        """
        counters = cls()
        for name in (
            "supercube_calls",
            "supercube_cache_hits",
            "supercube_chain_cached",
            "expand_probes",
            "coverage_masks_built",
            "coverage_mask_hits",
            "mincov_problems",
            "mincov_rows",
            "mincov_nodes",
            "passes_executed",
            "invariant_checks",
            "crosscheck_divergences",
            "scalar_fallbacks",
            "escape_rows_built",
            "escape_swar_filtered",
            "escape_probe_hits",
            "essentials_rescans_avoided",
            "essentials_memo_peak",
            "warm_memo_imported",
            "warm_escape_imported",
            "warm_cubes_reverified",
        ):
            if name in data:
                setattr(counters, name, int(data[name]))
        op_seconds = data.get("op_seconds")
        if isinstance(op_seconds, dict):
            counters.op_seconds = {k: float(v) for k, v in op_seconds.items()}
        exclusive = data.get("exclusive_seconds")
        if isinstance(exclusive, dict):
            counters.exclusive_seconds = {
                k: float(v) for k, v in exclusive.items()
            }
        return counters

    def summary_lines(self) -> List[str]:
        """Human-readable counter report (``report.py`` / CLI ``--stats``)."""
        lines = [
            f"supercube_dhf: {self.supercube_calls} calls, "
            f"{100.0 * self.supercube_hit_rate:.1f}% cache hits "
            f"({self.supercube_chain_cached} chain entries cached)",
            f"coverage masks: {self.coverage_masks_built} built, "
            f"{self.coverage_mask_hits} hits "
            f"({100.0 * self.coverage_hit_rate:.1f}% hit rate)",
            f"expand probes: {self.expand_probes}",
            f"mincov: {self.mincov_problems} problems, "
            f"{self.mincov_rows} rows, {self.mincov_nodes} nodes",
        ]
        if self.escape_rows_built:
            lines.append(
                f"essentials engine: {self.escape_rows_built} escape rows, "
                f"{self.escape_swar_filtered} probes SWAR-filtered, "
                f"{self.escape_probe_hits} probe memo hits, "
                f"{self.essentials_rescans_avoided} rescans avoided "
                f"(memo peak {self.essentials_memo_peak})"
            )
        if self.warm_memo_imported or self.warm_cubes_reverified:
            lines.append(
                f"warm start: {self.warm_memo_imported} memo entries "
                f"imported, {self.warm_escape_imported} escape proofs "
                f"seeded, {self.warm_cubes_reverified} cubes re-verified"
            )
        if self.invariant_checks:
            lines.append(
                f"checked mode: {self.invariant_checks} invariant checks, "
                f"{self.crosscheck_divergences} cross-check divergences, "
                f"{self.scalar_fallbacks} scalar fallbacks"
            )
        if self.op_seconds:
            ops = ", ".join(
                f"{name}: {seconds:.3f}s"
                for name, seconds in sorted(self.op_seconds.items())
            )
            lines.append(f"operator time: {ops}")
        if self.exclusive_seconds:
            ops = ", ".join(
                f"{name}: {seconds:.3f}s"
                for name, seconds in sorted(self.exclusive_seconds.items())
            )
            lines.append(f"operator time (exclusive): {ops}")
        return lines
