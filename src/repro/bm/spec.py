"""Burst-mode asynchronous controller specifications.

A burst-mode machine (Nowick/Dill style) is a Mealy machine whose
transitions fire on *input bursts* — sets of input changes that may arrive
in any order — and respond with an *output burst*.  Two classic
well-formedness conditions are enforced:

* **maximal set property**: no input burst leaving a state may be a subset
  of another burst leaving the same state (otherwise the machine could fire
  early on a partial burst);
* **non-empty input bursts**: every transition must be triggered by at
  least one input change.

Bursts are modelled as *toggle sets* (indices of signals that change);
signal polarities are tracked by the synthesis walk, which also verifies
entry-point consistency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple


class SpecError(ValueError):
    """Raised for malformed burst-mode specifications."""


@dataclass(frozen=True)
class BurstTransition:
    """One specified burst: toggle ``input_burst``, then toggle ``output_burst``."""

    source: str
    target: str
    input_burst: FrozenSet[int]
    output_burst: FrozenSet[int]

    def __str__(self) -> str:
        ins = ",".join(f"x{i}" for i in sorted(self.input_burst))
        outs = ",".join(f"y{j}" for j in sorted(self.output_burst)) or "-"
        return f"{self.source} --[{ins} / {outs}]--> {self.target}"


@dataclass
class BurstModeState:
    """A named state and its outgoing bursts."""

    name: str
    transitions: List[BurstTransition] = field(default_factory=list)


class BurstModeSpec:
    """A burst-mode machine specification."""

    def __init__(
        self,
        n_inputs: int,
        n_outputs: int,
        name: str = "bm",
        initial_state: Optional[str] = None,
        initial_inputs: Optional[Tuple[int, ...]] = None,
        initial_outputs: Optional[Tuple[int, ...]] = None,
    ):
        if n_inputs < 1:
            raise SpecError("a burst-mode machine needs at least one input")
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs
        self.name = name
        self.states: Dict[str, BurstModeState] = {}
        self._initial_state = initial_state
        self.initial_inputs = initial_inputs or tuple([0] * n_inputs)
        self.initial_outputs = initial_outputs or tuple([0] * n_outputs)

    @property
    def initial_state(self) -> str:
        if self._initial_state is not None:
            return self._initial_state
        if not self.states:
            raise SpecError("spec has no states")
        return next(iter(self.states))

    def add_state(self, name: str) -> BurstModeState:
        """Register a state; the first added state is the initial one."""
        if name in self.states:
            raise SpecError(f"duplicate state {name!r}")
        state = BurstModeState(name)
        self.states[name] = state
        return state

    def add_transition(
        self,
        source: str,
        target: str,
        input_burst,
        output_burst=(),
    ) -> BurstTransition:
        """Add a burst transition, enforcing the maximal set property."""
        if source not in self.states:
            raise SpecError(f"unknown source state {source!r}")
        if target not in self.states:
            raise SpecError(f"unknown target state {target!r}")
        input_burst = frozenset(input_burst)
        output_burst = frozenset(output_burst)
        if not input_burst:
            raise SpecError("input burst must be non-empty")
        if any(i < 0 or i >= self.n_inputs for i in input_burst):
            raise SpecError("input burst index out of range")
        if any(j < 0 or j >= self.n_outputs for j in output_burst):
            raise SpecError("output burst index out of range")
        for t in self.states[source].transitions:
            if t.input_burst <= input_burst or input_burst <= t.input_burst:
                raise SpecError(
                    f"maximal set property violated at state {source!r}: "
                    f"bursts {sorted(t.input_burst)} and {sorted(input_burst)}"
                )
        transition = BurstTransition(source, target, input_burst, output_burst)
        self.states[source].transitions.append(transition)
        return transition

    @property
    def n_states(self) -> int:
        return len(self.states)

    @property
    def n_transitions(self) -> int:
        return sum(len(s.transitions) for s in self.states.values())

    def __repr__(self) -> str:
        return (
            f"BurstModeSpec({self.name}: {self.n_inputs} in / {self.n_outputs} out, "
            f"{self.n_states} states, {self.n_transitions} bursts)"
        )
