"""Burst-mode controller substrate and benchmark instance generators.

The paper evaluates on two-level hazard-free minimization problems derived
from asynchronous burst-mode controllers.  This package provides:

* :mod:`repro.bm.spec` — burst-mode machine specifications with the classic
  well-formedness checks (maximal set property, distinguishability);
* :mod:`repro.bm.synthesis` — Huffman-style synthesis of a spec into a
  :class:`~repro.hazards.instance.HazardFreeInstance` (next-state and output
  logic plus the specified multiple-input-change transitions);
* :mod:`repro.bm.random_spec` — seeded random generators for both raw
  instances and burst-mode specs;
* :mod:`repro.bm.benchmarks` — the synthetic suite mirroring the paper's
  fifteen circuits (same names and I/O dimensions; see DESIGN.md §4 for the
  substitution rationale).
"""

from repro.bm.spec import BurstModeSpec, BurstModeState, BurstTransition, SpecError
from repro.bm.synthesis import synthesize
from repro.bm.random_spec import (
    random_instance,
    random_burst_mode_spec,
    random_burst_mode_instance,
)
from repro.bm.benchmarks import benchmark_suite, build_benchmark, BENCHMARKS
from repro.bm.library import build_controller, controller_names, CONTROLLERS

__all__ = [
    "BurstModeSpec",
    "BurstModeState",
    "BurstTransition",
    "SpecError",
    "synthesize",
    "random_instance",
    "random_burst_mode_spec",
    "random_burst_mode_instance",
    "benchmark_suite",
    "build_benchmark",
    "BENCHMARKS",
    "build_controller",
    "controller_names",
    "CONTROLLERS",
]
