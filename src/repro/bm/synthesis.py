"""Huffman-style synthesis of a burst-mode spec into a hazard-free instance.

The machine is implemented as combinational next-state and output logic with
fed-back one-hot state variables.  The *total-state graph* is unrolled first:
a synthesized state is a triple ``(spec state, entry inputs, entry outputs)``,
so re-entering a spec state with different signal polarities automatically
splits it (entry-point consistency).  One-hot codes make the state part of
every specified transition cube a fixed minterm, which keeps the value
assignments of distinct states disjoint.

For each synthesized edge ``(q, A) --burst--> (t, B)`` the combinational
functions see the multiple-input change ``[A·code(q), B·code(q)]``:

* a next-state bit ``Z_k`` holds ``code(q)_k`` on every proper sub-burst and
  switches to ``code(t)_k`` exactly at the endpoint ``B`` (the state change
  fires only on the complete burst);
* an output ``Y_j`` holds its old value on sub-bursts and toggles at the
  endpoint iff ``j`` is in the output burst.

Each target's resting point ``B·code(t)`` is additionally pinned so the
feedback loop is stable.  Everything else is don't-care.  All transitions
are function-hazard-free by construction (the value changes only at one
endpoint of each transition cube), which :class:`HazardFreeInstance`
re-verifies on construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cubes.cube import Cube
from repro.cubes.cover import Cover
from repro.cubes.operations import cube_sharp
from repro.hazards.instance import HazardFreeInstance
from repro.hazards.transitions import Transition
from repro.bm.spec import BurstModeSpec, SpecError


@dataclass(frozen=True)
class _SynthState:
    """A total state: spec state entered with concrete signal polarities."""

    spec_state: str
    inputs: Tuple[int, ...]
    outputs: Tuple[int, ...]


@dataclass
class SynthesisResult:
    """A synthesized instance plus bookkeeping about the unrolled machine."""

    instance: HazardFreeInstance
    n_synth_states: int
    n_spec_inputs: int
    n_spec_outputs: int
    state_names: List[str]
    #: the unrolled total-state graph (for closed-loop simulation)
    _states: List["_SynthState"] = None
    _edges: List[Tuple] = None

    def unrolled(self):
        """The total-state graph: ``(states, edges)`` where each edge is
        ``(src, input_burst, output_burst, dst)``.  States carry concrete
        ``inputs`` and ``outputs`` polarity tuples."""
        return self._states, self._edges


def synthesize(
    spec: BurstModeSpec,
    max_synth_states: Optional[int] = None,
    failsafe: bool = True,
) -> SynthesisResult:
    """Synthesize a burst-mode spec into a :class:`HazardFreeInstance`.

    The instance has ``n_inputs = spec inputs + one-hot state bits`` and
    ``n_outputs = state bits + spec outputs`` (next-state functions first).
    Raises :class:`SpecError` if total-state unrolling exceeds
    ``max_synth_states`` (default ``8 * n_spec_states``).

    With ``failsafe`` (the default) every output is pinned to 0 on the
    unreachable non-one-hot state codes (zero-hot and multi-hot patterns),
    as a fail-safe state assignment does.  This confines implicants to
    single-state regions of the input space.  With ``failsafe=False`` the
    unreachable codes stay don't-care, which leaves a vast implicant space —
    the regime in which the exact minimizer's prime generation explodes.
    These trap cubes never meet a specified transition cube, so required
    cubes, privileged cubes and Theorem 4.1 existence are identical either
    way; only the surrounding don't-care space differs.
    """
    cap = max_synth_states or 8 * max(1, spec.n_states)
    synth_states, synth_edges = _unroll(spec, cap)
    n_states = len(synth_states)
    n_x = spec.n_inputs
    n_y = spec.n_outputs
    n_inputs = n_x + n_states
    n_outputs = n_states + n_y

    index_of = {s: k for k, s in enumerate(synth_states)}

    def total_vector(x: Tuple[int, ...], state_idx: int) -> Tuple[int, ...]:
        state_bits = [0] * n_states
        state_bits[state_idx] = 1
        return tuple(x) + tuple(state_bits)

    def total_cube(x_cube_literals: List[int], state_idx: int) -> Cube:
        state_lits = [1] * n_states  # LITERAL_ZERO for all state bits...
        state_lits[state_idx] = 2  # LITERAL_ONE
        return Cube.from_literals(
            list(x_cube_literals) + state_lits, outbits=1, n_outputs=1
        )

    on_cubes: List[Cube] = []
    off_cubes: List[Cube] = []
    transitions: List[Transition] = []

    def add_value(cube: Cube, out_idx: int, value: int) -> None:
        target = on_cubes if value else off_cubes
        target.append(
            Cube(n_inputs, cube.inbits, 1 << out_idx, n_outputs)
        )

    seen_points = set()

    def pin_rest_point(state: _SynthState) -> None:
        """Pin Z = code(state), Y = entry outputs at a resting total state."""
        key = state
        if key in seen_points:
            return
        seen_points.add(key)
        vec = total_vector(state.inputs, index_of[state])
        point = Cube.minterm(vec)
        for k in range(n_states):
            add_value(point, k, 1 if k == index_of[state] else 0)
        for j in range(n_y):
            add_value(point, n_states + j, state.outputs[j])

    for src, burst, outburst, dst in synth_edges:
        q = index_of[src]
        t = index_of[dst]
        a = src.inputs
        b = dst.inputs
        t_start = total_vector(a, q)
        t_end = total_vector(b, q)
        transitions.append(Transition(t_start, t_end))
        # The transition cube: burst inputs free, rest fixed at A, state = q.
        x_lits = [0] * n_x
        for i in range(n_x):
            x_lits[i] = 3 if i in burst else (2 if a[i] else 1)
        cube = total_cube(x_lits, q)
        endpoint = Cube.minterm(t_end)
        interior = cube_sharp(cube, endpoint)
        # Next-state bits: hold code(q) on sub-bursts, code(t) at endpoint.
        for k in range(n_states):
            old = 1 if k == q else 0
            new = 1 if k == t else 0
            if old == new:
                add_value(cube, k, old)
            else:
                for piece in interior:
                    add_value(piece, k, old)
                add_value(endpoint, k, new)
        # Outputs: hold old value on sub-bursts, toggle at endpoint.
        for j in range(n_y):
            old = src.outputs[j]
            new = dst.outputs[j]
            if old == new:
                add_value(cube, n_states + j, old)
            else:
                for piece in interior:
                    add_value(piece, n_states + j, old)
                add_value(endpoint, n_states + j, new)
        pin_rest_point(dst)

    # Initial state rest point (reachable even with no incoming edge).
    initial = synth_states[0]
    pin_rest_point(initial)

    if failsafe:
        # Pin all outputs to 0 on the unreachable state codes: the all-zero
        # code, and every pair of simultaneously hot state bits.
        all_out = (1 << n_outputs) - 1
        zero_hot = Cube.from_literals(
            [3] * n_x + [1] * n_states, outbits=all_out, n_outputs=n_outputs
        )
        off_cubes.append(zero_hot)
        for k1 in range(n_states):
            for k2 in range(k1 + 1, n_states):
                lits = [3] * n_inputs
                lits[n_x + k1] = 2
                lits[n_x + k2] = 2
                off_cubes.append(
                    Cube.from_literals(lits, outbits=all_out, n_outputs=n_outputs)
                )

    on = Cover(n_inputs, (), n_outputs)
    on.cubes = on_cubes
    off = Cover(n_inputs, (), n_outputs)
    off.cubes = off_cubes
    on = on.deduplicate()
    off = off.deduplicate()
    instance = HazardFreeInstance(
        on, off, _dedupe_transitions(transitions), name=spec.name
    )
    return SynthesisResult(
        instance=instance,
        n_synth_states=n_states,
        n_spec_inputs=n_x,
        n_spec_outputs=n_y,
        state_names=[f"{s.spec_state}@{''.join(map(str, s.inputs))}" for s in synth_states],
        _states=synth_states,
        _edges=synth_edges,
    )


def _dedupe_transitions(transitions: List[Transition]) -> List[Transition]:
    seen = set()
    out = []
    for t in transitions:
        key = (t.start, t.end)
        if key not in seen:
            seen.add(key)
            out.append(t)
    return out


def _unroll(spec: BurstModeSpec, cap: int):
    """BFS over total states; returns (states, edges).

    Edges are ``(src_synth, input_burst, output_burst, dst_synth)``.
    """
    if not spec.states:
        raise SpecError("cannot synthesize an empty spec")
    initial = _SynthState(
        spec.initial_state, tuple(spec.initial_inputs), tuple(spec.initial_outputs)
    )
    order: List[_SynthState] = [initial]
    seen = {initial}
    edges = []
    frontier = [initial]
    while frontier:
        state = frontier.pop(0)
        for tr in spec.states[state.spec_state].transitions:
            b = tuple(
                v ^ 1 if i in tr.input_burst else v for i, v in enumerate(state.inputs)
            )
            y = tuple(
                v ^ 1 if j in tr.output_burst else v
                for j, v in enumerate(state.outputs)
            )
            dst = _SynthState(tr.target, b, y)
            if dst not in seen:
                if len(order) >= cap:
                    raise SpecError(
                        f"total-state unrolling exceeded {cap} states "
                        f"(spec {spec.name!r} re-enters states with too many "
                        "distinct polarities)"
                    )
                seen.add(dst)
                order.append(dst)
                frontier.append(dst)
            edges.append((state, tr.input_burst, tr.output_burst, dst))
    return order, edges
