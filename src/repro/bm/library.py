"""A library of hand-written burst-mode controller specifications.

Small, documented controllers in the style of the asynchronous-design
literature the paper draws its benchmarks from (SCSI port controllers, DRAM
controllers, communication interfaces).  Each is a valid burst-mode machine
that synthesizes into a solvable hazard-free minimization instance; they
are used by the examples, the test suite, and as extra benchmark fodder.

All controllers use toggle-set bursts (see :mod:`repro.bm.spec`) starting
from the all-zero input/output polarity.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.bm.spec import BurstModeSpec


def handshake() -> BurstModeSpec:
    """Four-phase handshake shim: `req` in, `ack` out.

    The smallest interesting machine: two states, both transitions a single
    input change with a single output change.
    """
    spec = BurstModeSpec(1, 1, name="handshake")
    spec.add_state("idle")
    spec.add_state("busy")
    spec.add_transition("idle", "busy", input_burst={0}, output_burst={0})
    spec.add_transition("busy", "idle", input_burst={0}, output_burst={0})
    return spec


def dma_controller() -> BurstModeSpec:
    """DMA-style bus controller (the worked example of the repo).

    Inputs: req, grant, done.  Outputs: busreq, xfer.
    idle --req+/busreq+--> arbitrating --grant+/xfer+--> transfer
    --(done+, req-)/(xfer-, busreq-)--> idle (polarities toggled).
    """
    req, grant, done = 0, 1, 2
    busreq, xfer = 0, 1
    spec = BurstModeSpec(3, 2, name="dma-controller")
    spec.add_state("idle")
    spec.add_state("arbitrating")
    spec.add_state("transfer")
    spec.add_transition("idle", "arbitrating", {req}, {busreq})
    spec.add_transition("arbitrating", "transfer", {grant}, {xfer})
    spec.add_transition("transfer", "idle", {done, req}, {xfer, busreq})
    return spec


def scsi_target_send() -> BurstModeSpec:
    """SCSI target send port (after the pscsi-tsend benchmark family).

    Inputs: cmd (start command), rdy (FIFO ready), ack (initiator ack).
    Outputs: dreq (data request), strobe (bus strobe).
    """
    cmd, rdy, ack = 0, 1, 2
    dreq, strobe = 0, 1
    spec = BurstModeSpec(3, 2, name="scsi-target-send")
    spec.add_state("wait_cmd")
    spec.add_state("fetch")
    spec.add_state("drive")
    spec.add_state("sync")
    spec.add_transition("wait_cmd", "fetch", {cmd}, {dreq})
    spec.add_transition("fetch", "drive", {rdy}, {strobe})
    spec.add_transition("drive", "sync", {ack}, {strobe, dreq})
    # release: command withdrawn while the handshake unwinds
    spec.add_transition("sync", "wait_cmd", {cmd, rdy, ack}, set())
    return spec


def dram_refresh_controller() -> BurstModeSpec:
    """DRAM refresh arbiter (after the dram-ctrl benchmark).

    Inputs: rfrq (refresh request), mrq (memory request).
    Outputs: ras, cas, grant.
    A refresh and a memory access contend; refresh wins from idle and the
    machine distinguishes the two request sources via incomparable bursts
    (maximal set property).
    """
    rfrq, mrq = 0, 1
    ras, cas, grant = 0, 1, 2
    spec = BurstModeSpec(2, 3, name="dram-refresh")
    spec.add_state("idle")
    spec.add_state("refresh")
    spec.add_state("access")
    spec.add_state("recover")
    spec.add_transition("idle", "refresh", {rfrq}, {ras, cas})
    spec.add_transition("idle", "access", {mrq}, {ras, grant})
    spec.add_transition("refresh", "recover", {rfrq}, {cas})
    spec.add_transition("access", "recover", {mrq}, {grant, cas})
    spec.add_transition("recover", "idle", {rfrq, mrq}, {ras, cas})
    return spec


def pe_send_interface() -> BurstModeSpec:
    """Processing-element send interface (after pe-send-ifc).

    Inputs: send, credit, tx_done.  Outputs: valid, busy.
    A send request arms the interface; flow-control credit launches the
    transfer, or the requester may withdraw (two incomparable bursts leave
    ``armed`` — the maximal set property at work).
    """
    send, credit, tx_done = 0, 1, 2
    valid, busy = 0, 1
    spec = BurstModeSpec(3, 2, name="pe-send-ifc")
    spec.add_state("idle")
    spec.add_state("armed")
    spec.add_state("sending")
    spec.add_transition("idle", "armed", {send}, {busy})
    spec.add_transition("armed", "sending", {credit}, {valid})
    spec.add_transition("armed", "idle", {send}, {busy})  # withdrawn
    spec.add_transition("sending", "idle", {tx_done, send}, {valid, busy})
    return spec


CONTROLLERS: Dict[str, Callable[[], BurstModeSpec]] = {
    "handshake": handshake,
    "dma-controller": dma_controller,
    "scsi-target-send": scsi_target_send,
    "dram-refresh": dram_refresh_controller,
    "pe-send-ifc": pe_send_interface,
}


def controller_names() -> List[str]:
    """Names of all library controllers."""
    return sorted(CONTROLLERS)


def build_controller(name: str) -> BurstModeSpec:
    """Instantiate a library controller by name."""
    try:
        return CONTROLLERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown controller {name!r}; available: {controller_names()}"
        ) from None
