"""Seeded random generators for hazard-free minimization instances.

Two generators:

* :func:`random_instance` — a fully defined random function plus randomly
  harvested function-hazard-free transitions.  Used by property tests and
  the optimality-gap experiment (small input counts).
* :func:`random_burst_mode_spec` — a random well-formed burst-mode machine,
  synthesized into an instance by :mod:`repro.bm.synthesis`.  Used by the
  Figure 8 benchmark suite (realistic structure, larger input counts).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.cubes.cube import Cube
from repro.cubes.cover import Cover
from repro.hazards.instance import HazardFreeInstance
from repro.hazards.transitions import Transition, function_hazard_free


def random_instance(
    n_inputs: int,
    n_outputs: int = 1,
    n_transitions: int = 4,
    seed: int = 0,
    density: float = 0.5,
    max_burst: Optional[int] = None,
    max_tries: int = 2000,
) -> HazardFreeInstance:
    """A random instance: fully defined function + hazard-free transitions.

    The function is a uniformly random ON/OFF labelling of all ``2^n``
    minterms (``density`` = ON probability), so it is defined everywhere and
    no definedness filtering is needed.  Transitions are random minterm
    pairs (burst size capped at ``max_burst``) kept only when every output
    is function-hazard-free over them.  Intended for small ``n_inputs``
    (the minterm covers are exponential in ``n``).
    """
    if n_inputs > 12:
        raise ValueError("random_instance enumerates minterms; use the "
                         "burst-mode generator for larger inputs")
    rng = random.Random(seed)
    n_points = 1 << n_inputs
    on_cubes: List[Cube] = []
    off_cubes: List[Cube] = []
    labels = []
    for m in range(n_points):
        bits = 0
        for j in range(n_outputs):
            if rng.random() < density:
                bits |= 1 << j
        labels.append(bits)
    for m in range(n_points):
        onb = labels[m]
        offb = ((1 << n_outputs) - 1) ^ onb
        if onb:
            on_cubes.append(Cube.from_index(n_inputs, m, onb, n_outputs))
        if offb:
            off_cubes.append(Cube.from_index(n_inputs, m, offb, n_outputs))
    on = Cover(n_inputs, on_cubes, n_outputs)
    off = Cover(n_inputs, off_cubes, n_outputs)
    on_by_out = [on.restrict_to_output(j) for j in range(n_outputs)]
    off_by_out = [off.restrict_to_output(j) for j in range(n_outputs)]

    transitions: List[Transition] = []
    seen = set()
    tries = 0
    while len(transitions) < n_transitions and tries < max_tries:
        tries += 1
        a = tuple(rng.randint(0, 1) for _ in range(n_inputs))
        burst = max_burst if max_burst is not None else n_inputs
        flip = rng.sample(range(n_inputs), rng.randint(1, max(1, min(burst, n_inputs))))
        b = tuple(v ^ 1 if i in flip else v for i, v in enumerate(a))
        t = Transition(a, b)
        key = (a, b)
        if key in seen:
            continue
        if all(
            function_hazard_free(t, on_by_out[j], off_by_out[j])
            for j in range(n_outputs)
        ):
            seen.add(key)
            transitions.append(t)
    return HazardFreeInstance(
        on, off, transitions, name=f"random-{n_inputs}x{n_outputs}-s{seed}"
    )


def random_burst_mode_spec(
    n_inputs: int,
    n_outputs: int,
    n_states: int,
    seed: int = 0,
    max_burst: int = 3,
    branching: int = 2,
):
    """A random well-formed burst-mode specification.

    States form a strongly connected machine: each state gets up to
    ``branching`` outgoing transitions whose input bursts satisfy the
    maximal set property (no burst a subset of a sibling burst).  Output
    bursts toggle random output subsets.
    """
    from repro.bm.spec import BurstModeSpec

    rng = random.Random(seed)
    spec = BurstModeSpec(
        n_inputs=n_inputs,
        n_outputs=n_outputs,
        name=f"bm-random-{n_inputs}x{n_outputs}-s{seed}",
    )
    for s in range(n_states):
        spec.add_state(f"s{s}")
    for s in range(n_states):
        n_out_edges = rng.randint(1, branching)
        bursts: List[frozenset] = []
        for _ in range(n_out_edges):
            for _attempt in range(20):
                size = rng.randint(1, min(max_burst, n_inputs))
                burst = frozenset(rng.sample(range(n_inputs), size))
                # maximal set property: no burst may contain another
                if all(
                    not (burst <= other or other <= burst) for other in bursts
                ):
                    bursts.append(burst)
                    break
        for burst in bursts:
            target = rng.randrange(n_states)
            out_burst = frozenset(
                j for j in range(n_outputs) if rng.random() < 0.4
            )
            spec.add_transition(
                f"s{s}", f"s{target}", input_burst=burst, output_burst=out_burst
            )
    return spec


def random_burst_mode_instance(
    n_inputs: int,
    n_outputs: int,
    n_states: int,
    seed: int = 0,
    max_burst: int = 3,
    branching: int = 2,
    max_seed_tries: int = 30,
    require_solvable: bool = True,
) -> Optional[HazardFreeInstance]:
    """A random burst-mode *instance*: spec → synthesis → solvability check.

    One-stop generator for corpus builds (:mod:`repro.corpus.generator`):
    draws :func:`random_burst_mode_spec` machines at ``seed``, ``seed+1``,
    … until synthesis succeeds and (with ``require_solvable``) Theorem 4.1
    admits a hazard-free cover, or ``max_seed_tries`` seeds are exhausted
    (then ``None``).  Deterministic for a given argument tuple.  Note the
    synthesized instance is wider than the spec: one-hot state bits are
    appended to both inputs and outputs (see :func:`repro.bm.synthesis.
    synthesize`).
    """
    from repro.bm.spec import SpecError
    from repro.bm.synthesis import synthesize
    from repro.hazards.existence import hazard_free_solution_exists

    for s in range(seed, seed + max_seed_tries):
        try:
            spec = random_burst_mode_spec(
                n_inputs,
                n_outputs,
                n_states,
                seed=s,
                max_burst=max_burst,
                branching=branching,
            )
            result = synthesize(spec)
        except SpecError:
            continue
        instance = result.instance
        if require_solvable and not hazard_free_solution_exists(instance):
            continue
        return instance
    return None
