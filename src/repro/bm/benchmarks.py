"""The synthetic Figure 8 benchmark suite.

The paper evaluates on fifteen burst-mode controller benchmarks
(cache-ctrl, dram-ctrl, pe-send-ifc, pscsi-*, sd-control, sscsi-*,
stetson-*).  The original PLA files are not distributed with the paper, so
this module generates *synthetic* burst-mode controllers with the same
names and input/output dimensions (see DESIGN.md §4): a seeded random
burst-mode spec is synthesized (``repro.bm.synthesis``) into a hazard-free
minimization instance whose total I/O dimensions match the paper's table
(spec inputs + one-hot state bits = paper inputs; state bits + spec outputs
= paper outputs).

Seeds were calibrated once (``scripts/calibrate_benchmarks.py``) so that the
total-state unrolling hits the target state count exactly and the instance
admits a hazard-free cover; they are fixed here for reproducibility.

Note: the paper's table prints full dimensions only for cache-ctrl (20/23)
and stetson-p1 (32/33); the remaining dimensions follow the sizes these
benchmark families have in the related literature (MINIMALIST / Theobald &
Nowick).  EXPERIMENTS.md records this reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bm.random_spec import random_burst_mode_spec
from repro.bm.spec import SpecError
from repro.bm.synthesis import synthesize, SynthesisResult
from repro.hazards.existence import hazard_free_solution_exists
from repro.hazards.instance import HazardFreeInstance


@dataclass(frozen=True)
class BenchmarkSpec:
    """Recipe for one synthetic benchmark circuit."""

    name: str
    #: paper's input/output dimensions for the minimization problem
    n_inputs: int
    n_outputs: int
    #: synthesized (total) state count; spec inputs = n_inputs - states etc.
    n_states: int
    #: spec-level machine shape
    n_spec_states: int
    max_burst: int
    branching: int
    seed: int
    #: marks circuits the paper's exact minimizer could not solve
    exact_failed_in_paper: Optional[str] = None  # stage name or None
    #: fail-safe state encoding (non-one-hot codes pinned OFF); the three
    #: paper-failing circuits keep the unreachable codes don't-care, which
    #: is the regime where the exact flow's prime generation explodes
    failsafe: bool = True

    @property
    def n_spec_inputs(self) -> int:
        return self.n_inputs - self.n_states

    @property
    def n_spec_outputs(self) -> int:
        return self.n_outputs - self.n_states


# Calibrated suite: seeds found by scripts/calibrate_benchmarks.py.
BENCHMARKS: List[BenchmarkSpec] = [
    BenchmarkSpec("cache-ctrl", 20, 23, 10, 6, 3, 2, 13, "transform", failsafe=False),
    BenchmarkSpec("dram-ctrl", 9, 10, 4, 3, 2, 2, 3),
    BenchmarkSpec("pe-send-ifc", 12, 13, 5, 4, 3, 2, 90),
    BenchmarkSpec("pscsi-ircv", 8, 8, 3, 2, 2, 2, 2),
    BenchmarkSpec("pscsi-isend", 10, 10, 4, 3, 2, 2, 4),
    BenchmarkSpec("pscsi-pscsi", 16, 17, 8, 5, 3, 2, 17, "covering", failsafe=False),
    BenchmarkSpec("pscsi-tsend", 10, 10, 4, 3, 2, 2, 12),
    BenchmarkSpec("pscsi-tsend-bm", 11, 11, 4, 3, 3, 2, 16),
    BenchmarkSpec("sd-control", 18, 23, 9, 5, 3, 2, 54),
    BenchmarkSpec("sscsi-isend-bm", 9, 9, 3, 2, 3, 2, 2),
    BenchmarkSpec("sscsi-trcv-bm", 9, 9, 3, 2, 3, 2, 21),
    BenchmarkSpec("sscsi-tsend-bm", 9, 9, 3, 2, 3, 2, 22),
    BenchmarkSpec("stetson-p1", 32, 33, 14, 8, 4, 2, 18, "primes", failsafe=False),
    BenchmarkSpec("stetson-p2", 18, 22, 9, 5, 3, 2, 32),
    BenchmarkSpec("stetson-p3", 6, 6, 2, 2, 2, 2, 1),
]

_BY_NAME: Dict[str, BenchmarkSpec] = {b.name: b for b in BENCHMARKS}


def find_seed(bench: BenchmarkSpec, max_seed: int = 500) -> Optional[int]:
    """Search for a seed hitting the target state count with a solvable
    instance (used by the calibration script)."""
    for seed in range(max_seed):
        try:
            result = _build(bench, seed)
        except SpecError:
            continue
        if result is None:
            continue
        return seed
    return None


def _build(bench: BenchmarkSpec, seed: int) -> Optional[SynthesisResult]:
    spec = random_burst_mode_spec(
        bench.n_spec_inputs,
        bench.n_spec_outputs,
        bench.n_spec_states,
        seed=seed,
        max_burst=bench.max_burst,
        branching=bench.branching,
    )
    spec.name = bench.name
    result = synthesize(
        spec, max_synth_states=bench.n_states, failsafe=bench.failsafe
    )
    if result.n_synth_states != bench.n_states:
        return None
    if not hazard_free_solution_exists(result.instance):
        return None
    return result


def build_benchmark(name: str) -> HazardFreeInstance:
    """Build one suite instance by its paper name."""
    bench = _BY_NAME.get(name)
    if bench is None:
        raise KeyError(f"unknown benchmark {name!r}; see BENCHMARKS")
    result = _build(bench, bench.seed)
    if result is None:
        raise RuntimeError(
            f"calibrated seed for {name!r} no longer reproduces the instance; "
            "re-run scripts/calibrate_benchmarks.py"
        )
    assert result.instance.n_inputs == bench.n_inputs
    assert result.instance.n_outputs == bench.n_outputs
    return result.instance


def build_benchmark_synthesis(name: str) -> SynthesisResult:
    """Build one suite circuit, returning the full synthesis result
    (instance + unrolled total-state graph, for closed-loop simulation)."""
    bench = _BY_NAME.get(name)
    if bench is None:
        raise KeyError(f"unknown benchmark {name!r}; see BENCHMARKS")
    result = _build(bench, bench.seed)
    if result is None:
        raise RuntimeError(
            f"calibrated seed for {name!r} no longer reproduces the instance"
        )
    return result


def benchmark_suite(names: Optional[List[str]] = None) -> List[HazardFreeInstance]:
    """Build the whole suite (or a named subset), in table order."""
    selected = BENCHMARKS if names is None else [_BY_NAME[n] for n in names]
    return [build_benchmark(b.name) for b in selected]
