"""Graphviz DOT export for burst-mode specifications and total-state graphs.

EDA front-ends render controller specs for review; this module emits plain
DOT text (no graphviz dependency) for a spec's state graph and for the
synthesized total-state (polarity-unrolled) graph.
"""

from __future__ import annotations

from typing import List

from repro.bm.spec import BurstModeSpec
from repro.bm.synthesis import SynthesisResult


def _burst_label(indices, prefix: str) -> str:
    return ", ".join(f"{prefix}{i}" for i in sorted(indices)) or "—"


def spec_to_dot(spec: BurstModeSpec) -> str:
    """DOT text for a burst-mode spec (states + labelled bursts)."""
    lines: List[str] = [
        f'digraph "{spec.name}" {{',
        "  rankdir=LR;",
        '  node [shape=ellipse, fontname="Helvetica"];',
        '  edge [fontname="Helvetica", fontsize=10];',
    ]
    initial = spec.initial_state
    for name in spec.states:
        shape = ', peripheries=2' if name == initial else ""
        lines.append(f'  "{name}" [label="{name}"{shape}];')
    for state in spec.states.values():
        for t in state.transitions:
            label = (
                f"{_burst_label(t.input_burst, 'x')} / "
                f"{_burst_label(t.output_burst, 'y')}"
            )
            lines.append(f'  "{t.source}" -> "{t.target}" [label="{label}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"


def total_state_graph_to_dot(result: SynthesisResult) -> str:
    """DOT text for the polarity-unrolled total-state graph."""
    states, edges = result.unrolled()
    name_of = {
        s: f"{s.spec_state}@{''.join(map(str, s.inputs))}" for s in states
    }
    lines: List[str] = [
        'digraph "total-states" {',
        "  rankdir=LR;",
        '  node [shape=box, fontname="Helvetica", fontsize=10];',
        '  edge [fontname="Helvetica", fontsize=9];',
    ]
    for i, s in enumerate(states):
        peripheries = ", peripheries=2" if i == 0 else ""
        outs = "".join(map(str, s.outputs))
        lines.append(
            f'  "{name_of[s]}" [label="{name_of[s]}\\nout={outs}"{peripheries}];'
        )
    for src, burst, outburst, dst in edges:
        label = (
            f"{_burst_label(burst, 'x')} / {_burst_label(outburst, 'y')}"
        )
        lines.append(
            f'  "{name_of[src]}" -> "{name_of[dst]}" [label="{label}"];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
