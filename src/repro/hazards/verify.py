"""Hazard-free cover verification: the Theorem 2.11 checker.

Given an instance and a candidate multi-output cover, checks the three
conditions of the Hazard-Free Covering theorem:

  (a) no cube of the cover intersects the OFF-set of its outputs;
  (b) every required cube is contained in some single cube of the cover
      (with a matching output);
  (c) no cube intersects a privileged cube of one of its outputs illegally.

This is the library's ground-truth oracle: every minimizer's result is
checked against it in the test suite and the benchmark harness, and the
gate-level simulators in :mod:`repro.simulate` provide an independent
dynamic cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cubes.cube import Cube
from repro.cubes.cover import Cover
from repro.hazards.dhf import illegally_intersects
from repro.hazards.instance import HazardFreeInstance


@dataclass(frozen=True)
class HazardFreeViolation:
    """One violated condition of Theorem 2.11."""

    condition: str  # "off-intersection" | "uncovered-required" | "illegal-intersection"
    output: int
    cube: Optional[Cube] = None
    other: Optional[Cube] = None
    detail: str = ""

    def __str__(self) -> str:
        return f"{self.condition}@out{self.output}: {self.detail}"


def verify_hazard_free_cover(
    instance: HazardFreeInstance, cover: Cover, collect_all: bool = False
) -> List[HazardFreeViolation]:
    """All Theorem 2.11 violations of ``cover`` (empty list = hazard-free).

    With ``collect_all`` false (default) the check stops at the first
    violation of each condition per output, which is cheaper on large
    instances; the returned list is still empty exactly when the cover is a
    valid hazard-free cover.
    """
    violations: List[HazardFreeViolation] = []

    # (a) OFF-set disjointness per output.
    for j in range(instance.n_outputs):
        off_j = instance.off_for_output(j)
        for c in cover:
            if not c.has_output(j):
                continue
            for o in off_j:
                if c.intersects_input(o):
                    violations.append(
                        HazardFreeViolation(
                            "off-intersection",
                            j,
                            c,
                            o,
                            f"cover cube {c.input_string()} meets OFF cube "
                            f"{o.input_string()}",
                        )
                    )
                    if not collect_all:
                        break
            else:
                continue
            if not collect_all:
                break

    # (b) required-cube containment.
    for q in instance.required_cubes():
        contained = any(
            c.has_output(q.output) and c.contains_input(q.cube) for c in cover
        )
        if not contained:
            violations.append(
                HazardFreeViolation(
                    "uncovered-required",
                    q.output,
                    q.cube,
                    None,
                    f"required cube {q.cube.input_string()} not contained in "
                    "any cover cube",
                )
            )
            if not collect_all:
                break

    # (c) no illegal intersections.
    outer_done = False
    for p in instance.privileged_cubes():
        for c in cover:
            if not c.has_output(p.output):
                continue
            if illegally_intersects(Cube(c.n_inputs, c.inbits, 1, 1), p):
                violations.append(
                    HazardFreeViolation(
                        "illegal-intersection",
                        p.output,
                        c,
                        p.cube,
                        f"cover cube {c.input_string()} illegally intersects "
                        f"privileged cube {p.cube.input_string()} "
                        f"(start {p.start.input_string()})",
                    )
                )
                if not collect_all:
                    outer_done = True
                    break
        if outer_done:
            break
    return violations


def is_hazard_free_cover(instance: HazardFreeInstance, cover: Cover) -> bool:
    """Convenience wrapper: True iff Theorem 2.11 holds for the cover."""
    return not verify_hazard_free_cover(instance, cover)
