"""Hazard theory for multiple-input changes (paper §2, §3.2, §4).

Defines specified input transitions, function-hazard checks, required and
privileged cubes, dhf-implicants and the ``supercube_dhf`` operator, the
hazard-free cover verifier (Theorem 2.11) and the existence check
(Theorem 4.1).
"""

from repro.hazards.transitions import (
    Transition,
    TransitionKind,
    classify_transition,
    function_hazard_free,
)
from repro.hazards.instance import HazardFreeInstance, RequiredCube, PrivilegedCube
from repro.hazards.required import maximal_on_subcubes, minimal_hitting_sets
from repro.hazards.dhf import (
    supercube_dhf,
    is_dhf_implicant,
    illegally_intersects,
)
from repro.hazards.verify import verify_hazard_free_cover, HazardFreeViolation
from repro.hazards.existence import hazard_free_solution_exists, existence_report

__all__ = [
    "Transition",
    "TransitionKind",
    "classify_transition",
    "function_hazard_free",
    "HazardFreeInstance",
    "RequiredCube",
    "PrivilegedCube",
    "maximal_on_subcubes",
    "minimal_hitting_sets",
    "supercube_dhf",
    "is_dhf_implicant",
    "illegally_intersects",
    "verify_hazard_free_cover",
    "HazardFreeViolation",
    "hazard_free_solution_exists",
    "existence_report",
]
