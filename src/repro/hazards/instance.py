"""Hazard-free minimization problem instances.

A :class:`HazardFreeInstance` bundles a (possibly multi-output) Boolean
function — given as ON and OFF covers; everything else is don't-care — with
a set of specified multiple-input-change transitions.  From it we derive the
three objects every algorithm in the library consumes (paper §3.1):

* the set ``Q`` of required cubes (with their output index),
* the set ``P`` of privileged cubes with their start points,
* the OFF-set ``R``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cubes.cube import Cube
from repro.cubes.cover import Cover
from repro.espresso.tautology import tautology
from repro.guard.errors import MalformedInstance
from repro.hazards.transitions import (
    Transition,
    TransitionKind,
    classify_transition,
    function_hazard_free,
)
from repro.hazards.required import maximal_on_subcubes


@dataclass(frozen=True)
class RequiredCube:
    """A cube that must be contained in a single cube of any hazard-free cover.

    ``cube`` is the input part (single-output encoding); ``output`` the index
    of the output function it belongs to; ``transition`` the specified
    transition it was derived from (for diagnostics).
    """

    cube: Cube
    output: int
    transition: Optional[Transition] = None

    def __str__(self) -> str:
        return f"req[{self.cube.input_string()} @out{self.output}]"


@dataclass(frozen=True)
class PrivilegedCube:
    """A 1→0 transition cube: intersecting it without covering its start
    point makes an implicant hazardous (Definition 2.10)."""

    cube: Cube
    start: Cube  # minterm cube of the transition's start point
    output: int
    transition: Optional[Transition] = None

    def __str__(self) -> str:
        return (
            f"priv[{self.cube.input_string()} start={self.start.input_string()}"
            f" @out{self.output}]"
        )


class InstanceError(MalformedInstance):
    """Raised when an instance violates the model's preconditions.

    Part of the :class:`~repro.guard.errors.MalformedInstance` family (still
    a ``ValueError``), so the CLI reports it as a user-input error (exit 4).
    """


class HazardFreeInstance:
    """A function plus specified transitions, ready for minimization.

    Parameters
    ----------
    on, off:
        Multi-output covers of the ON and OFF sets.  Points in neither cover
        are don't-cares; a specified transition cube must be fully defined
        (every point ON or OFF for every output).
    transitions:
        The specified multiple-input changes (shared by all outputs).
    validate:
        When true (default) the constructor checks well-formedness:
        ON/OFF disjointness, full definedness on transition cubes, and
        function-hazard freedom of every (transition, output) pair.
    """

    def __init__(
        self,
        on: Cover,
        off: Cover,
        transitions: Sequence[Transition],
        name: str = "instance",
        validate: bool = True,
    ):
        if on.n_inputs != off.n_inputs or on.n_outputs != off.n_outputs:
            raise InstanceError("ON and OFF covers must share a shape")
        self.on = on
        self.off = off
        self.transitions = list(transitions)
        self.name = name
        self.n_inputs = on.n_inputs
        self.n_outputs = on.n_outputs
        self._on_by_output = [on.restrict_to_output(j) for j in range(self.n_outputs)]
        self._off_by_output = [off.restrict_to_output(j) for j in range(self.n_outputs)]
        if validate:
            self.validate()

    # ------------------------------------------------------------------
    # Function access
    # ------------------------------------------------------------------

    def on_for_output(self, j: int) -> Cover:
        """Single-output ON cover of output ``j``."""
        return self._on_by_output[j]

    def off_for_output(self, j: int) -> Cover:
        """Single-output OFF cover of output ``j``."""
        return self._off_by_output[j]

    def value(self, vec: Sequence[int], j: int) -> Optional[bool]:
        """Output ``j``'s value on an input vector (None = don't-care)."""
        if self._on_by_output[j].evaluate(vec):
            return True
        if self._off_by_output[j].evaluate(vec):
            return False
        return None

    def kind(self, transition: Transition, j: int) -> TransitionKind:
        """The transition type of output ``j`` over ``transition``."""
        sv = self.value(transition.start, j)
        ev = self.value(transition.end, j)
        if sv is None or ev is None:
            raise InstanceError(
                f"transition {transition} endpoint undefined for output {j}"
            )
        return classify_transition(transition, sv, ev)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check the preconditions of the hazard-free minimization model."""
        for j in range(self.n_outputs):
            on_j, off_j = self._on_by_output[j], self._off_by_output[j]
            for c in on_j:
                for o in off_j:
                    if c.intersects_input(o):
                        raise InstanceError(
                            f"ON and OFF sets of output {j} intersect: "
                            f"{c.input_string()} ∩ {o.input_string()}"
                        )
        for t in self.transitions:
            if len(t.start) != self.n_inputs:
                raise InstanceError(f"transition {t} has wrong width")
            t_cube = Cube(self.n_inputs, t.cube.inbits, 1, 1)
            for j in range(self.n_outputs):
                on_j, off_j = self._on_by_output[j], self._off_by_output[j]
                union = Cover(self.n_inputs, (), 1)
                union.cubes = list(on_j.cubes) + list(off_j.cubes)
                if not tautology(union.cofactor(t_cube)):
                    raise InstanceError(
                        f"function not fully defined on {t} for output {j}"
                    )
                if not function_hazard_free(t, on_j, off_j):
                    raise InstanceError(
                        f"transition {t} has a function hazard on output {j}"
                    )

    # ------------------------------------------------------------------
    # Derived sets (memoized)
    # ------------------------------------------------------------------

    def required_cubes(self) -> List[RequiredCube]:
        """The set ``Q`` of required cubes over all outputs (Definition 2.9)."""
        if not hasattr(self, "_required"):
            required: List[RequiredCube] = []
            seen = set()
            for t in self.transitions:
                for j in range(self.n_outputs):
                    kind = self.kind(t, j)
                    if kind is TransitionKind.STATIC_ONE:
                        cubes = [t.cube]
                    elif kind is TransitionKind.FALLING:
                        cubes = maximal_on_subcubes(t, self._off_by_output[j])
                    elif kind is TransitionKind.RISING:
                        cubes = maximal_on_subcubes(
                            t.reversed(), self._off_by_output[j]
                        )
                    else:
                        continue
                    for c in cubes:
                        key = (c.inbits, j)
                        if key not in seen:
                            seen.add(key)
                            required.append(RequiredCube(c, j, t))
            self._required = required
        return list(self._required)

    def privileged_cubes(self) -> List[PrivilegedCube]:
        """The set ``P`` of privileged cubes over all outputs (Definition 2.10)."""
        if not hasattr(self, "_privileged"):
            privileged: List[PrivilegedCube] = []
            seen = set()
            for t in self.transitions:
                for j in range(self.n_outputs):
                    kind = self.kind(t, j)
                    if kind is TransitionKind.FALLING:
                        norm = t
                    elif kind is TransitionKind.RISING:
                        norm = t.reversed()
                    else:
                        continue
                    key = (norm.cube.inbits, norm.start_cube().inbits, j)
                    if key not in seen:
                        seen.add(key)
                        privileged.append(
                            PrivilegedCube(norm.cube, norm.start_cube(), j, norm)
                        )
            self._privileged = privileged
        return list(self._privileged)

    def privileged_for_output(self, j: int) -> List[PrivilegedCube]:
        """Privileged cubes restricted to output ``j``."""
        return [p for p in self.privileged_cubes() if p.output == j]

    def required_for_output(self, j: int) -> List[RequiredCube]:
        """Required cubes restricted to output ``j``."""
        return [q for q in self.required_cubes() if q.output == j]

    # ------------------------------------------------------------------

    def restrict_to_output(self, j: int) -> "HazardFreeInstance":
        """A single-output instance for output ``j`` (shared transitions)."""
        inst = HazardFreeInstance(
            self._on_by_output[j],
            self._off_by_output[j],
            self.transitions,
            name=f"{self.name}.out{j}",
            validate=False,
        )
        return inst

    def __repr__(self) -> str:
        return (
            f"HazardFreeInstance({self.name}: {self.n_inputs} in / "
            f"{self.n_outputs} out, {len(self.transitions)} transitions)"
        )
