"""Required-cube generation (Definition 2.9) via minimal hitting sets.

For a 1→0 transition ``[A, B]`` the required cubes are the maximal subcubes
``[A, X]`` on which the function stays 1.  Freeing a set ``S`` of changing
variables is safe iff the resulting cube avoids every OFF cube; an OFF cube
``o`` meeting the transition cube blocks exactly the freed-sets
``S ⊇ D_o = {changing i : A_i ∉ o_i}``.  The maximal safe sets are therefore
the complements (within the changing set) of the *minimal hitting sets* of
``{D_o}``, which we enumerate with Berge's incremental algorithm.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.cubes.cube import Cube, LITERAL_DC
from repro.cubes.cover import Cover
from repro.hazards.transitions import Transition


def minimal_hitting_sets(sets: Sequence[FrozenSet[int]]) -> List[FrozenSet[int]]:
    """All minimal hitting sets of a family of non-empty sets.

    Berge's incremental construction: maintain the minimal hitting sets of a
    prefix of the family; to add a set ``D``, extend each current hitting set
    that misses ``D`` by every element of ``D`` and re-minimize.
    """
    for d in sets:
        if not d:
            raise ValueError("cannot hit an empty set")
    current: List[FrozenSet[int]] = [frozenset()]
    # Process only the minimal sets: a hitting set of D' ⊆ D also hits D.
    pruned = _minimal_sets(sets)
    for d in pruned:
        extended: Set[FrozenSet[int]] = set()
        for h in current:
            if h & d:
                extended.add(h)
            else:
                for x in d:
                    extended.add(h | {x})
        current = _minimal_sets(list(extended))
    return current


def _minimal_sets(sets: Iterable[FrozenSet[int]]) -> List[FrozenSet[int]]:
    unique = sorted(set(sets), key=lambda s: (len(s), sorted(s)))
    kept: List[FrozenSet[int]] = []
    for s in unique:
        if not any(k <= s for k in kept):
            kept.append(s)
    return kept


def maximal_on_subcubes(
    transition: Transition, off: Cover
) -> List[Cube]:
    """The required cubes of a 1→0 transition: maximal ON subcubes ``[A, X]``.

    ``off`` is the single-output OFF cover.  The transition is assumed
    function-hazard-free with ``f(A)=1`` and ``f(B)=0``.
    """
    start, end = transition.start, transition.end
    changing = transition.changing
    t_cube = transition.cube
    start_cube = Cube.minterm(start)
    blockers: List[FrozenSet[int]] = []
    for o in off:
        if o.is_empty or not o.intersects_input(t_cube):
            continue
        d = frozenset(
            i for i in changing if not (o.literal(i) >> (1 if start[i] else 0)) & 1
        )
        if not d:
            raise ValueError(
                "OFF cube contains the start point of a 1->0 transition; "
                "the instance is ill-formed (f(A) must be 1)"
            )
        blockers.append(d)
    if not blockers:
        raise ValueError(
            "no OFF cube meets the transition cube of a 1->0 transition; "
            "the end point must be OFF"
        )
    hitting = minimal_hitting_sets(blockers)
    cubes: List[Cube] = []
    changing_set = set(changing)
    for h in hitting:
        freed = changing_set - h
        cube = start_cube
        for i in freed:
            cube = cube.with_literal(i, LITERAL_DC)
        cubes.append(cube)
    return sorted(cubes)


def maximal_on_subcubes_brute(transition: Transition, on: Cover) -> List[Cube]:
    """Exhaustive oracle for :func:`maximal_on_subcubes` (small n only).

    Enumerates every subset of changing variables, keeps those whose cube
    ``[A, X]`` lies inside the ON cover, and returns the maximal ones.
    """
    import itertools

    start = transition.start
    changing = transition.changing
    good: List[Tuple[FrozenSet[int], Cube]] = []
    for r in range(len(changing) + 1):
        for combo in itertools.combinations(changing, r):
            cube = Cube.minterm(start)
            for i in combo:
                cube = cube.with_literal(i, LITERAL_DC)
            if all(on.evaluate(v) for v in cube.minterm_vectors()):
                good.append((frozenset(combo), cube))
    maximal = [
        cube
        for s, cube in good
        if not any(s < s2 for s2, _ in good)
    ]
    return sorted(maximal)
