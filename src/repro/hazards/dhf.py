"""Dhf-implicants and the ``supercube_dhf`` operator (paper §3.2, Figure 6).

A *dhf-implicant* is an implicant that intersects no privileged cube
illegally (Definition 2.12).  ``supercube_dhf(C)`` is the smallest
dhf-implicant containing the cubes of ``C`` (Definition 3.1): repeatedly
absorb the start point of any illegally intersected privileged cube; the
result is unique because each absorption is forced.  If the grown cube ever
meets the OFF-set, no dhf-implicant containing ``C`` exists.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.cubes.cube import Cube
from repro.cubes.cover import Cover
from repro.cubes.operations import supercube_of
from repro.hazards.instance import PrivilegedCube


def illegally_intersects(cube: Cube, privileged: PrivilegedCube) -> bool:
    """True iff ``cube`` meets the privileged cube without its start point.

    Operates on input parts; callers must pre-filter privileged cubes to the
    output(s) the cube participates in.
    """
    return cube.intersects_input(privileged.cube) and not cube.contains_input(
        privileged.start
    )


def is_dhf_implicant(
    cube: Cube, privileged: Sequence[PrivilegedCube], off: Optional[Cover] = None
) -> bool:
    """True iff ``cube`` is a dhf-implicant w.r.t. the given privileged cubes.

    When ``off`` is provided, implicant-ness (OFF-set disjointness) is
    checked as well.
    """
    if off is not None and any(cube.intersects_input(o) for o in off):
        return False
    return not any(illegally_intersects(cube, p) for p in privileged)


def supercube_dhf(
    cubes: Iterable[Cube],
    privileged: Sequence[PrivilegedCube],
    off: Cover,
) -> Optional[Cube]:
    """The smallest dhf-implicant containing all of ``cubes`` (Figure 6).

    Returns ``None`` ("undefined") when the forced expansion chain runs into
    the OFF-set.  ``privileged`` must already be restricted to the relevant
    output; ``off`` is that output's OFF cover.
    """
    r = supercube_of(cubes)
    if r is None:
        raise ValueError("supercube_dhf of an empty cube collection")
    changed = True
    while changed:
        changed = False
        for p in privileged:
            if illegally_intersects(r, p):
                r = r.supercube(p.start)
                changed = True
    if any(r.intersects_input(o) for o in off):
        return None
    return r


def canonical_required_cube(
    cube: Cube, privileged: Sequence[PrivilegedCube], off: Cover
) -> Optional[Cube]:
    """The canonical required cube: ``supercube_dhf({cube})`` (paper §3.2)."""
    return supercube_dhf([cube], privileged, off)
