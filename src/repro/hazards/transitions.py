"""Specified input transitions and function-hazard analysis.

A *multiple-input change* is a transition from input minterm ``A`` to ``B``;
during the transition the inputs may change monotonically in any order, so
the circuit can observe any minterm of the transition cube ``[A, B]``
(Definition 2.1).  A function must change monotonically over a specified
transition (no function hazard, Definitions 2.2/2.3) for any implementation
to be glitch-free.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.cubes.cube import Cube
from repro.cubes.cover import Cover
from repro.cubes.operations import transition_cube, changing_vars


class TransitionKind(enum.Enum):
    """The four monotonic transition types of an output over ``[A, B]``."""

    STATIC_ZERO = "0->0"
    STATIC_ONE = "1->1"
    FALLING = "1->0"
    RISING = "0->1"


@dataclass(frozen=True)
class Transition:
    """A specified multiple-input change from minterm ``start`` to ``end``."""

    start: Tuple[int, ...]
    end: Tuple[int, ...]

    def __post_init__(self):
        if len(self.start) != len(self.end):
            raise ValueError("start and end must have equal width")
        if any(v not in (0, 1) for v in self.start + self.end):
            raise ValueError("transition endpoints must be 0/1 vectors")

    @property
    def n_inputs(self) -> int:
        return len(self.start)

    @property
    def cube(self) -> Cube:
        """The transition cube ``[start, end]`` (input part only)."""
        return transition_cube(self.start, self.end)

    @property
    def changing(self) -> Tuple[int, ...]:
        """Indices of the input variables that change."""
        return changing_vars(self.start, self.end)

    def reversed(self) -> "Transition":
        """The transition traversed in the opposite direction."""
        return Transition(self.end, self.start)

    def start_cube(self) -> Cube:
        return Cube.minterm(self.start)

    def end_cube(self) -> Cube:
        return Cube.minterm(self.end)

    def __str__(self) -> str:
        return f"{''.join(map(str, self.start))}->{''.join(map(str, self.end))}"


def classify_transition(
    transition: Transition, start_value: bool, end_value: bool
) -> TransitionKind:
    """Classify an output's behaviour over a transition by its endpoint values."""
    if start_value and end_value:
        return TransitionKind.STATIC_ONE
    if start_value and not end_value:
        return TransitionKind.FALLING
    if not start_value and end_value:
        return TransitionKind.RISING
    return TransitionKind.STATIC_ZERO


def _blocker_sets(
    start: Sequence[int],
    end: Sequence[int],
    cover: Cover,
    t_cube: Cube,
) -> list:
    """For each cover cube meeting ``[start, end]``: the changed-variable sets.

    Returns ``(D, E)`` pairs where ``D`` is the set of changing variables that
    *must* have flipped for a point of the cube to be reached
    (``{i : start_i ∉ cube_i}``) and ``E`` those that *may* have flipped
    (``{i : end_i ∈ cube_i}``).  Points of the cube inside the transition
    cube correspond exactly to changed-sets ``S`` with ``D ⊆ S ⊆ E``.
    """
    changing = changing_vars(start, end)
    result = []
    for c in cover:
        if c.is_empty or not c.intersects_input(t_cube):
            continue
        d = frozenset(
            i for i in changing if not (c.literal(i) >> (1 if start[i] else 0)) & 1
        )
        e = frozenset(
            i for i in changing if (c.literal(i) >> (1 if end[i] else 0)) & 1
        )
        result.append((d, e))
    return result


def function_hazard_free(
    transition: Transition,
    on: Cover,
    off: Cover,
    kind: Optional[TransitionKind] = None,
) -> bool:
    """True iff the (single-output) function is function-hazard-free over the
    transition.

    ``on`` and ``off`` are the single-output ON and OFF covers.  The function
    must be fully defined on the transition cube (checked by
    :meth:`repro.hazards.instance.HazardFreeInstance.validate`, not here).

    * static transitions: the transition cube must lie entirely in the
      ON-set (1→1) or OFF-set (0→0);
    * dynamic transitions (1→0 after normalization): the function must fall
      monotonically — no OFF point of the transition cube may be reachable
      *before* an ON point.  Using changed-variable sets this is the pair
      condition: there must be no ON cube ``n`` and OFF cube ``o`` meeting
      the transition cube with ``D_o ⊆ E_n``.
    """
    t_cube = transition.cube
    if kind is None:
        sv = on.evaluate(transition.start)
        ev = on.evaluate(transition.end)
        kind = classify_transition(transition, sv, ev)
    if kind is TransitionKind.STATIC_ONE:
        return not any(o.intersects_input(t_cube) for o in off if not o.is_empty)
    if kind is TransitionKind.STATIC_ZERO:
        return not any(c.intersects_input(t_cube) for c in on if not c.is_empty)
    if kind is TransitionKind.RISING:
        return function_hazard_free(
            transition.reversed(), on, off, TransitionKind.FALLING
        )
    # FALLING: f(start)=1, f(end)=0.
    off_sets = _blocker_sets(transition.start, transition.end, off, t_cube)
    on_sets = _blocker_sets(transition.start, transition.end, on, t_cube)
    for d_o, _ in off_sets:
        for _, e_n in on_sets:
            if d_o <= e_n:
                return False
    return True


def function_hazard_free_brute(
    transition: Transition, on: Cover, off: Cover
) -> bool:
    """Exhaustive function-hazard check (test oracle, exponential).

    Walks every pair of points in the transition cube and applies
    Definitions 2.2/2.3 directly.
    """
    start, end = transition.start, transition.end
    sv, ev = on.evaluate(start), on.evaluate(end)

    def value(vec):
        return on.evaluate(vec)

    def reachable_between(a, b):
        """Minterms of [a, b]."""
        return list(transition_cube(a, b).minterm_vectors())

    points = reachable_between(start, end)
    if sv == ev:
        return all(value(p) == sv for p in points)
    # dynamic: hazard iff some p with f(p)=f(end) can still reach q with
    # f(q)=f(start)
    for p in points:
        if value(p) != ev:
            continue
        for q in reachable_between(p, end):
            if value(q) == sv:
                return False
    return True
