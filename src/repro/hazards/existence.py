"""Existence of a hazard-free cover (paper §4, Theorem 4.1).

A hazard-free cover exists iff ``supercube_dhf(q)`` is defined for every
required cube ``q``.  Unlike the exact method — which can only decide
existence after generating *all* dhf-prime implicants — this check is a few
forced supercube expansions per required cube.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cubes.cube import Cube
from repro.hazards.dhf import supercube_dhf
from repro.hazards.instance import HazardFreeInstance, RequiredCube


@dataclass
class ExistenceReport:
    """Outcome of the Theorem 4.1 existence check."""

    exists: bool
    #: required cubes whose dhf-supercube is undefined (empty iff exists)
    failures: List[RequiredCube] = field(default_factory=list)
    #: per-required-cube canonical expansions (for diagnostics)
    canonical: List[Tuple[RequiredCube, Optional[Cube]]] = field(default_factory=list)


def existence_report(instance: HazardFreeInstance) -> ExistenceReport:
    """Run the existence check, returning canonical cubes and failures."""
    failures: List[RequiredCube] = []
    canonical: List[Tuple[RequiredCube, Optional[Cube]]] = []
    priv_by_output = {
        j: instance.privileged_for_output(j) for j in range(instance.n_outputs)
    }
    for q in instance.required_cubes():
        sup = supercube_dhf(
            [q.cube], priv_by_output[q.output], instance.off_for_output(q.output)
        )
        canonical.append((q, sup))
        if sup is None:
            failures.append(q)
    return ExistenceReport(exists=not failures, failures=failures, canonical=canonical)


def hazard_free_solution_exists(instance: HazardFreeInstance) -> bool:
    """True iff the instance admits a hazard-free cover (Theorem 4.1)."""
    return existence_report(instance).exists
