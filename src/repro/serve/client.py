"""Blocking client for the minimization daemon.

A thin convenience over one TCP connection: requests go out as NDJSON
lines, responses come back in order (the protocol guarantees
per-connection ordering).  Used by the test suites, ``scripts/loadgen.py``
and ``scripts/serve_smoke.py``; external callers can just as well speak
the protocol directly (see ``docs/SERVICE.md``).
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Optional

from repro.serve.protocol import MAX_LINE_BYTES


class ServeClient:
    """One connection to a daemon; context-manager friendly."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7777,
        timeout_s: float = 120.0,
    ):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._fh = self._sock.makefile("rwb")
        self._next_id = 0

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._fh.close()
        finally:
            self._sock.close()

    # ------------------------------------------------------------------

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one raw request dict, wait for its response line."""
        self._fh.write((json.dumps(message) + "\n").encode())
        self._fh.flush()
        line = self._fh.readline(MAX_LINE_BYTES + 2)
        if not line:
            raise ConnectionError("daemon closed the connection")
        return json.loads(line)

    def send_raw(self, line: bytes) -> Dict[str, Any]:
        """Send pre-encoded bytes (protocol tests); returns the response."""
        self._fh.write(line)
        self._fh.flush()
        reply = self._fh.readline(MAX_LINE_BYTES + 2)
        if not reply:
            raise ConnectionError("daemon closed the connection")
        return json.loads(reply)

    def _id(self) -> str:
        self._next_id += 1
        return f"c{self._next_id}"

    def minimize(
        self,
        pla_text: str,
        options: Optional[Dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
        budget_s: Optional[float] = None,
        checked: bool = False,
        no_cache: bool = False,
        inject: Optional[Dict[str, Any]] = None,
        req_id: Optional[str] = None,
        warm_key: Optional[str] = None,
        session: bool = False,
    ) -> Dict[str, Any]:
        message: Dict[str, Any] = {
            "op": "minimize",
            "id": req_id or self._id(),
            "pla": pla_text,
        }
        if options:
            message["options"] = options
        if timeout_s is not None:
            message["timeout_s"] = timeout_s
        if budget_s is not None:
            message["budget_s"] = budget_s
        if checked:
            message["checked"] = True
        if no_cache:
            message["no_cache"] = True
        if inject is not None:
            message["inject"] = inject
        if warm_key is not None:
            message["warm_key"] = warm_key
        if session:
            message["session"] = True
        return self.request(message)

    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping", "id": self._id()})

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats", "id": self._id()})

    def shutdown(self) -> Dict[str, Any]:
        return self.request({"op": "shutdown", "id": self._id()})
