"""Canonical instance keys: content addressing modulo symmetry.

Two requests that differ only by a relabeling of input variables — an
*input permutation* and/or a *polarity flip* (the two bijective rewrites of
:mod:`repro.proptest.metamorphic`) — describe the same minimization
problem: solvability, the required/privileged cube structure, and minimized
cover cardinality are all invariant, and a hazard-free cover of one maps to
a hazard-free cover of the other through the same relabeling.  The serve
cache therefore keys results by a **canonical form**: the lexicographically
smallest serialization of the instance over the symmetry group
``S_n x Z_2^n`` (all input permutations crossed with per-variable
complementation).

Computing that minimum naively costs ``n! * 2^n`` serializations, so
:func:`canonicalize` prunes with per-variable *column signatures* — for
variable ``i`` under polarity ``p``, the multiset of ``i``'s literals over
the ON rows, OFF rows, and transition endpoints.  A column's content does
not depend on how *other* variables are labeled, so the signature is
group-invariant: it fixes each variable's polarity (smaller signature wins)
and a variable ordering, and only genuine ties — variables or polarities
with *identical* signatures — are enumerated.  Random instances have
essentially no ties; the pathological fully-symmetric ones are capped by
``max_candidates``, beyond which the instance falls back to an exact-match
key (its own sorted serialization, marked distinctly).  The fallback is
*sound* — equivalent instances may then miss the cache, but a cache hit
never returns a cover for a different function, and whether an instance
overflows is itself group-invariant.

The properties the cache relies on are pinned by
``tests/test_serve_canon.py``: every permutation/flip rewrite of an
instance hashes to the same key, distinct instances do not collide, and
:meth:`CanonicalForm.cover_from_canonical` maps cached covers back into
the requester's variable labeling hazard-free.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from itertools import permutations, product
from math import factorial
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cubes.cover import Cover
from repro.cubes.cube import LITERAL_ONE, LITERAL_ZERO
from repro.hazards.instance import HazardFreeInstance
from repro.proptest.metamorphic import (
    flip_cover,
    flip_instance,
    permute_cover,
    permute_instance,
)

#: candidate-serialization budget before falling back to exact-match keys;
#: covers full symmetry up to 6 variables (6! * 2^6 = 46080 > cap only for
#: totally indistinguishable columns, which serialize identically anyway)
DEFAULT_MAX_CANDIDATES = 20_000

_LIT_CHAR = {0: "~", 1: "0", 2: "1", 3: "-"}
_FLIP_LIT = {LITERAL_ZERO: LITERAL_ONE, LITERAL_ONE: LITERAL_ZERO}


def _flip_lit(lit: int, p: int) -> int:
    return _FLIP_LIT.get(lit, lit) if p else lit


@dataclass(frozen=True)
class CanonicalForm:
    """One instance's canonical key plus the transform that produced it.

    ``perm``/``flip_mask`` map the *original* instance onto the canonical
    form: flip the variables in ``flip_mask`` first, then relabel so that
    canonical variable ``i`` carries original variable ``perm[i]``.  With
    ``overflow`` the symmetry search was capped and the transform is the
    identity — the key then matches byte-identical instances only.
    """

    key: str
    text: str
    perm: Tuple[int, ...]
    flip_mask: int
    overflow: bool
    candidates: int

    def cover_to_canonical(self, cover: Cover) -> Cover:
        """Map a cover of the original instance into canonical labeling."""
        return permute_cover(flip_cover(cover, self.flip_mask), self.perm)

    def cover_from_canonical(self, cover: Cover) -> Cover:
        """Map a canonically-labeled cover back onto the original instance.

        This is how a cache hit computed for an *equivalent* instance is
        served: the cached cover lives in canonical labeling; pushing it
        through the inverse transform yields a hazard-free cover of the
        requester's instance (metamorphic invariance, PR 4).
        """
        inverse = [0] * len(self.perm)
        for position, var in enumerate(self.perm):
            inverse[var] = position
        return flip_cover(permute_cover(cover, inverse), self.flip_mask)

    def canonical_instance(self, instance: HazardFreeInstance) -> HazardFreeInstance:
        """Materialize the canonical representative (tests / diagnostics)."""
        return permute_instance(
            flip_instance(instance, self.flip_mask), self.perm
        )


def _column_data(instance: HazardFreeInstance):
    """Per-cube literal tuples and per-transition endpoint pairs."""
    on_rows = [(c.literals(), c.output_string()) for c in instance.on]
    off_rows = [(c.literals(), c.output_string()) for c in instance.off]
    trans_rows = [tuple(zip(t.start, t.end)) for t in instance.transitions]
    return on_rows, off_rows, trans_rows


def _column_signature(on_rows, off_rows, trans_rows, i: int, p: int):
    """Group-invariant signature of variable ``i`` under polarity ``p``."""
    return (
        tuple(sorted((_flip_lit(lits[i], p), out) for lits, out in on_rows)),
        tuple(sorted((_flip_lit(lits[i], p), out) for lits, out in off_rows)),
        tuple(sorted((s ^ p, e ^ p) for row in trans_rows for s, e in [row[i]])),
    )


def _serialize(
    instance: HazardFreeInstance,
    on_rows,
    off_rows,
    trans_rows,
    perm: Sequence[int],
    flips: Sequence[int],
) -> str:
    """Row-order-independent serialization under one transform."""

    def cube_row(lits, out) -> str:
        return (
            "".join(
                _LIT_CHAR[_flip_lit(lits[v], flips[v])] for v in perm
            )
            + "|"
            + out
        )

    def trans_row(row) -> str:
        return "".join(
            f"{row[v][0] ^ flips[v]}{row[v][1] ^ flips[v]}" for v in perm
        )

    parts = [
        f"{instance.n_inputs},{instance.n_outputs}",
        ";".join(sorted(cube_row(lits, out) for lits, out in on_rows)),
        ";".join(sorted(cube_row(lits, out) for lits, out in off_rows)),
        ";".join(sorted(trans_row(row) for row in trans_rows)),
    ]
    return "\n".join(parts)


def canonicalize(
    instance: HazardFreeInstance,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
) -> CanonicalForm:
    """Compute the canonical form of an instance (see module docstring)."""
    n = instance.n_inputs
    on_rows, off_rows, trans_rows = _column_data(instance)

    polarity_choices: List[Tuple[int, ...]] = []
    chosen_sigs = []
    for i in range(n):
        s0 = _column_signature(on_rows, off_rows, trans_rows, i, 0)
        s1 = _column_signature(on_rows, off_rows, trans_rows, i, 1)
        if s0 < s1:
            polarity_choices.append((0,))
            chosen_sigs.append(s0)
        elif s1 < s0:
            polarity_choices.append((1,))
            chosen_sigs.append(s1)
        else:
            polarity_choices.append((0, 1))
            chosen_sigs.append(s0)

    # Variables ordered by signature; equal signatures form tie groups
    # whose internal order (and ambiguous polarities) must be searched.
    groups: Dict[object, List[int]] = {}
    for i in range(n):
        groups.setdefault(chosen_sigs[i], []).append(i)
    ordered_groups = [groups[sig] for sig in sorted(groups)]

    count = 1
    for choices in polarity_choices:
        count *= len(choices)
    for group in ordered_groups:
        count *= factorial(len(group))

    if count > max_candidates:
        identity = tuple(range(n))
        text = "sym-overflow\n" + _serialize(
            instance, on_rows, off_rows, trans_rows, identity, [0] * n
        )
        return CanonicalForm(
            key=_digest(text),
            text=text,
            perm=identity,
            flip_mask=0,
            overflow=True,
            candidates=count,
        )

    best_text: Optional[str] = None
    best_perm: Optional[Tuple[int, ...]] = None
    best_flips: Optional[Tuple[int, ...]] = None
    for flips in product(*polarity_choices):
        for group_orders in product(
            *(permutations(group) for group in ordered_groups)
        ):
            perm = tuple(v for group in group_orders for v in group)
            text = _serialize(
                instance, on_rows, off_rows, trans_rows, perm, flips
            )
            if best_text is None or text < best_text:
                best_text, best_perm, best_flips = text, perm, flips

    flip_mask = 0
    for i, p in enumerate(best_flips):
        if p:
            flip_mask |= 1 << i
    text = "canon\n" + best_text
    return CanonicalForm(
        key=_digest(text),
        text=text,
        perm=best_perm,
        flip_mask=flip_mask,
        overflow=False,
        candidates=count,
    )


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def canonical_instance_key(
    instance: HazardFreeInstance,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
) -> str:
    """The content-addressed key of an instance modulo input permutation
    and polarity flip — equal for every such rewrite of the same instance,
    distinct (cryptographically) for genuinely different instances."""
    return canonicalize(instance, max_candidates=max_candidates).key
