"""The minimization daemon: asyncio NDJSON server over the supervisor.

The server owns nothing clever — all policy lives in
:class:`repro.serve.supervisor.Supervisor`.  What lives here:

* **Framing**: one request per line (:mod:`repro.serve.protocol`),
  responses written back in request order per connection, connections
  fully concurrent.  A malformed line gets a ``protocol_error`` response;
  an over-long line gets one too, and then the connection is closed —
  once a line exceeds the limit the framing itself is untrustworthy.
* **Lifecycle**: ``SIGTERM``/``SIGINT`` (and the ``shutdown`` op, when
  permitted) start a *drain* — the listening socket stops accepting, new
  requests on live connections are answered ``shutting_down``, in-flight
  jobs run to completion (bounded by ``drain_timeout_s``), then the
  process exits.
* **Observability**: one flat span per request (op, status, cache
  disposition) on a shared tracer, exportable with ``--trace-out``;
  the metrics snapshot is exportable with ``--metrics-out`` in the same
  schema ``scripts/bench_gate.py`` compares.

``serve_main`` is the CLI entry (``espresso-hf serve``);
:func:`start_in_thread` runs the same daemon on a background thread for
tests and ``scripts/loadgen.py``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
import threading
from typing import Any, Dict, Optional

from repro.obs import MetricsRegistry, Span, Tracer, write_jsonl
from repro.serve.protocol import (
    ProtocolError,
    Request,
    encode,
    parse_request,
    response,
)
from repro.serve.supervisor import ServeConfig, Supervisor


class MinimizationServer:
    """One daemon instance: listener + supervisor + lifecycle."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.config = config or ServeConfig()
        self.registry = registry or MetricsRegistry()
        self.supervisor = Supervisor(self.config, self.registry)
        self.tracer = Tracer()
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = None  # asyncio.Event, created on the loop
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------

    async def start(self) -> None:
        self._shutdown = asyncio.Event()
        await self.supervisor.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_line_bytes,
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]

    async def serve_until_shutdown(self) -> bool:
        """Block until a shutdown is requested, then drain. True = clean."""
        await self._shutdown.wait()
        return await self.shutdown()

    async def shutdown(self) -> bool:
        """Stop accepting, drain in-flight jobs, stop the workers."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        clean = await self.supervisor.drain()
        # One settle tick: handlers whose futures just resolved still need
        # to write their final reply before the event loop goes away.
        await asyncio.sleep(0.1)
        return clean

    def request_shutdown(self) -> None:
        if self._shutdown is not None:
            self._shutdown.set()

    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.registry.counter("serve.connections").inc()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    asyncio.IncompleteReadError,
                    ValueError,
                ):
                    # Over-long line: answer once, then drop the
                    # connection — byte framing is no longer trustworthy.
                    self.registry.counter("serve.protocol_errors").inc()
                    writer.write(
                        encode(
                            response(
                                None,
                                "protocol_error",
                                error="request line exceeds "
                                f"{self.config.max_line_bytes} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                reply = await self._handle_line(line.decode(errors="replace"))
                writer.write(encode(reply))
                await writer.drain()
                if reply.get("op") == "shutdown" and reply.get("ok"):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_line(self, line: str) -> Dict[str, Any]:
        t0 = self.tracer.elapsed_s()
        try:
            req = parse_request(line)
        except ProtocolError as exc:
            self.registry.counter("serve.protocol_errors").inc()
            reply = response(None, "protocol_error", error=str(exc))
            self._record_span("serve.request", t0, op="?", status=reply["status"])
            return reply
        reply = await self._dispatch(req)
        attrs: Dict[str, Any] = {
            "op": req.op,
            "status": reply.get("status", "?"),
            "cached": bool(reply.get("cached")),
        }
        if reply.get("warm") is not None:
            # Distinguish warm-started requests from cold ones per span
            # (docs/WARMSTART.md): "identical" | "warm" | "cold".
            attrs["warm"] = reply["warm"]
        self._record_span("serve.request", t0, **attrs)
        return reply

    async def _dispatch(self, req: Request) -> Dict[str, Any]:
        if req.op == "ping":
            return response(req.id, "ok", op="ping")
        if req.op == "stats":
            return response(req.id, "ok", op="stats", stats=self.supervisor.stats())
        if req.op == "shutdown":
            if not self.config.allow_remote_shutdown:
                return response(
                    req.id, "error", op="shutdown",
                    error="remote shutdown disabled",
                )
            self.request_shutdown()
            return response(req.id, "ok", op="shutdown", draining=True)
        return await self.supervisor.handle_minimize(req)

    def _record_span(self, name: str, start_s: float, **attrs: Any) -> None:
        # Flat spans appended directly: concurrent requests overlap, so
        # the tracer's nesting stack (built for one sequential pipeline)
        # does not apply here.
        tracer = self.tracer
        tracer.spans.append(
            Span(
                name=name,
                span_id=len(tracer.spans) + 1,
                parent_id=None,
                start_s=start_s,
                end_s=tracer.elapsed_s(),
                attrs=dict(attrs),
                pid=tracer.pid,
            )
        )


# ----------------------------------------------------------------------
# Embedded daemon (tests, loadgen)
# ----------------------------------------------------------------------


class ServerHandle:
    """A daemon running on a background thread, stoppable from the host."""

    def __init__(self, server: MinimizationServer, loop, thread):
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def registry(self) -> MetricsRegistry:
        return self.server.registry

    def stop(self, timeout_s: float = 60.0) -> None:
        """Request a drain and join the server thread."""
        self._loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(timeout=timeout_s)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise RuntimeError("daemon thread failed to drain in time")


def start_in_thread(
    config: Optional[ServeConfig] = None,
    registry: Optional[MetricsRegistry] = None,
) -> ServerHandle:
    """Run a daemon on a daemon thread; returns once it is listening."""
    server = MinimizationServer(config, registry)
    started = threading.Event()
    startup_error: list = []
    loop_box: list = []

    def _run() -> None:
        async def _amain() -> None:
            loop_box.append(asyncio.get_event_loop())
            try:
                await server.start()
            except Exception as exc:  # noqa: BLE001 - surface to caller
                startup_error.append(exc)
                started.set()
                return
            started.set()
            await server.serve_until_shutdown()

        asyncio.run(_amain())

    thread = threading.Thread(target=_run, name="espresso-hf-serve", daemon=True)
    thread.start()
    if not started.wait(timeout=30.0):  # pragma: no cover - defensive
        raise RuntimeError("daemon failed to start listening")
    if startup_error:
        thread.join(timeout=5.0)
        raise startup_error[0]
    return ServerHandle(server, loop_box[0], thread)


# ----------------------------------------------------------------------
# CLI entry: ``espresso-hf serve``
# ----------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="espresso-hf serve",
        description="Minimization-as-a-service daemon (NDJSON over TCP).",
    )
    defaults = ServeConfig()
    parser.add_argument("--host", default=defaults.host)
    parser.add_argument("--port", type=int, default=defaults.port,
                        help="0 picks an ephemeral port (announced on stdout)")
    parser.add_argument("--workers", type=int, default=defaults.workers)
    parser.add_argument("--queue-limit", type=int, default=defaults.queue_limit)
    parser.add_argument("--max-wait", type=float, default=defaults.max_wait_s,
                        metavar="S", help="shed when estimated wait exceeds this")
    parser.add_argument("--job-timeout", type=float,
                        default=defaults.job_timeout_s, metavar="S")
    parser.add_argument("--budget", type=float, default=None, metavar="S",
                        help="default cooperative budget per job")
    parser.add_argument("--max-retries", type=int, default=defaults.max_retries)
    parser.add_argument("--quarantine-threshold", type=int,
                        default=defaults.quarantine_threshold)
    parser.add_argument("--cache-entries", type=int,
                        default=defaults.cache_entries)
    parser.add_argument("--session-entries", type=int,
                        default=defaults.session_entries,
                        help="warm-start session store capacity")
    parser.add_argument("--max-inputs", type=int, default=defaults.max_inputs)
    parser.add_argument("--max-cubes", type=int, default=defaults.max_cubes)
    parser.add_argument("--bundle-dir", default=defaults.bundle_dir)
    parser.add_argument("--drain-timeout", type=float,
                        default=defaults.drain_timeout_s, metavar="S")
    parser.add_argument("--checked", action="store_true")
    parser.add_argument("--allow-test-faults", action="store_true",
                        help="honour the 'inject' request field (tests only)")
    parser.add_argument("--no-remote-shutdown", action="store_true",
                        help="ignore the 'shutdown' op")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the final metrics snapshot as JSON")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write request spans as JSONL")
    parser.add_argument("--seed", type=int, default=0)
    return parser


def _config_from_args(args: argparse.Namespace) -> ServeConfig:
    return ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        max_wait_s=args.max_wait,
        max_inputs=args.max_inputs,
        max_cubes=args.max_cubes,
        job_timeout_s=args.job_timeout,
        budget_s=args.budget,
        max_retries=args.max_retries,
        quarantine_threshold=args.quarantine_threshold,
        cache_entries=args.cache_entries,
        session_entries=args.session_entries,
        bundle_dir=args.bundle_dir,
        drain_timeout_s=args.drain_timeout,
        checked=args.checked,
        allow_test_faults=args.allow_test_faults,
        allow_remote_shutdown=not args.no_remote_shutdown,
        seed=args.seed,
    )


async def _amain(config: ServeConfig, server: MinimizationServer) -> bool:
    await server.start()
    loop = asyncio.get_event_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, server.request_shutdown)
        except (NotImplementedError, RuntimeError, ValueError):
            # Non-main thread or platform without signal support: the
            # shutdown op / handle.stop() path still works.
            pass
    print(
        f"serve: listening on {server.host}:{server.port} "
        f"(workers={config.workers}, queue={config.queue_limit})",
        flush=True,
    )
    clean = await server.serve_until_shutdown()
    return clean


def serve_main(argv=None) -> int:
    """Entry point for ``espresso-hf serve``."""
    args = _build_parser().parse_args(argv)
    config = _config_from_args(args)
    server = MinimizationServer(config)
    clean = asyncio.run(_amain(config, server))
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            json.dump(server.registry.snapshot(), fh, indent=1, sort_keys=True)
    if args.trace_out:
        write_jsonl(args.trace_out, server.tracer)
    stats = server.supervisor.stats()
    print(
        f"serve: drained {'cleanly' if clean else 'WITH TIMEOUT'} "
        f"(cache {stats['cache']['hits']} hits / "
        f"{stats['cache']['misses']} misses, "
        f"{stats['quarantined']} quarantined)",
        file=sys.stderr,
        flush=True,
    )
    return 0 if clean else 1
