"""Job supervision: admission, dedup, retry, quarantine, degradation.

The :class:`Supervisor` is the part of the service that has to survive the
real world.  Every ``minimize`` request flows through one decision ladder,
and every decision is counted through the shared
:class:`~repro.obs.metrics.MetricsRegistry` (``serve.*`` namespace, see
``docs/SERVICE.md``):

1. **Refuse** while draining (``shutting_down``) — shutdown never strands
   a request silently.
2. **Parse & bound** in a worker thread: malformed PLA text is answered
   (``malformed``), oversized instances are shed *before* any expensive
   derived-set computation (``shed``, reason ``oversized``).
3. **Canonicalize** (:mod:`repro.serve.canon`) and check the
   **quarantine**: an instance that already killed
   ``quarantine_threshold`` workers is refused with its repro bundle —
   a poison job is evidence, not a retry loop.
4. **Cache** (:mod:`repro.serve.cache`): a hit is served without
   minimizing — the cached canonical cover is mapped into the requester's
   variable labeling.
5. **Coalesce**: an identical job already in flight is awaited, not
   re-run; both requesters get the one result.
6. **Admit or shed**: a bounded queue plus an estimated-wait bound
   (EWMA of recent job times); shed responses carry ``retry_after_s``.
7. **Run** on an isolated worker process (:func:`repro.guard.runner.run_one`)
   with a wall-clock deadline; *worker death* — and only worker death,
   which is the one retry-safe failure in the
   :mod:`repro.guard.errors` taxonomy — is retried on a fresh process
   under exponential backoff with jitter, at most ``max_retries`` times,
   with the crash count feeding the quarantine.
8. **Serve degraded results explicitly**: a budget-exhausted run returns
   its best *verified* snapshot with ``status="degraded"`` rather than
   failing the request.

Workers are **single-shot processes**: each attempt forks a fresh
interpreter, so "automatic respawn" is structural — there is no pool
process whose corpse can wedge the service (see
:func:`repro.guard.runner.run_pool` for the same argument).
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.guard.bundle import options_from_dict, options_to_dict, write_bundle
from repro.guard.errors import MalformedInstance
from repro.obs import MetricsRegistry
from repro.obs.metrics import TIME_BUCKETS_S
from repro.serve.cache import (
    CACHEABLE_STATUSES,
    MalformedCache,
    ResultCache,
    options_fingerprint,
)
from repro.session.store import SessionStore
from repro.serve.canon import CanonicalForm, canonicalize
from repro.serve.protocol import COVER_STATUSES, Request, response


@dataclass
class ServeConfig:
    """Operating envelope of the daemon (see ``docs/SERVICE.md``)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is announced on stdout
    workers: int = 2
    queue_limit: int = 32
    max_wait_s: float = 30.0
    max_inputs: int = 24
    max_cubes: int = 2048
    max_transitions: int = 1024
    job_timeout_s: float = 60.0
    budget_s: Optional[float] = None
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    quarantine_threshold: int = 2
    cache_entries: int = 1024
    session_entries: int = 256
    malformed_cache_entries: int = 1024
    canon_memo_entries: int = 512
    bundle_dir: str = "artifacts"
    drain_timeout_s: float = 30.0
    allow_test_faults: bool = False
    allow_remote_shutdown: bool = True
    checked: bool = False
    seed: int = 0
    initial_job_estimate_s: float = 0.2
    max_line_bytes: int = 4 * 1024 * 1024


@dataclass
class _Job:
    """One unit of work headed for an isolated worker process."""

    cache_key: tuple
    pla_text: str
    name: str
    canon: CanonicalForm
    instance: Any
    options_dict: Dict[str, Any]
    checked: bool
    no_cache: bool
    timeout_s: float
    inject: Optional[Dict[str, Any]]
    #: serialized MinimizationSession looked up from the session store
    #: (``warm_key`` request field); None runs cold
    warm_session: Optional[Dict[str, Any]] = None
    #: ship a session back on the row and store it under the canonical key
    capture_session: bool = False
    #: request text is byte-identical to the text that produced the
    #: session — the worker's planner may skip signature re-derivation
    warm_text_match: bool = False
    future: "asyncio.Future" = field(repr=False, default=None)
    enqueued_at: float = 0.0


class Supervisor:
    """Fault-tolerant scheduler over single-shot worker processes."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.config = config or ServeConfig()
        self.registry = registry or MetricsRegistry()
        self.cache = ResultCache(self.config.cache_entries)
        self.cache.on_evict = lambda: self._count("serve.cache_evictions")
        self.malformed_cache = MalformedCache(
            self.config.malformed_cache_entries
        )
        self.sessions = SessionStore(self.config.session_entries)
        # Canonicalization is a pure function of the PLA text, so repeated
        # submissions of byte-identical text (edit workloads resubmit the
        # same circuit many times) can skip parse + bounds + canonicalize
        # entirely.  Keyed by text digest; LRU-bounded.
        self._canon_memo: "OrderedDict[str, Tuple[CanonicalForm, str]]" = (
            OrderedDict()
        )
        self._canon_memo_lock = threading.Lock()
        self._queue: "asyncio.Queue[_Job]" = asyncio.Queue()
        self._inflight: Dict[tuple, asyncio.Future] = {}
        self._open_futures: set = set()
        self._crash_counts: Dict[tuple, int] = {}
        self._quarantined: Dict[tuple, Optional[str]] = {}
        self._rng = random.Random(self.config.seed)
        self._workers: list = []
        self._draining = False
        self._open_jobs = 0
        self._job_ewma_s = self.config.initial_job_estimate_s

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        for i in range(max(1, self.config.workers)):
            self._workers.append(
                asyncio.ensure_future(self._worker_loop(i))
            )

    @property
    def draining(self) -> bool:
        return self._draining

    async def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Refuse new work, wait for in-flight jobs, stop the workers.

        Returns True when every in-flight job completed inside the
        timeout.  Workers are cancelled either way — after a clean drain
        they are idle; after a timed-out drain whatever job is still
        running is abandoned (its subprocess dies with the daemon).
        """
        self._draining = True
        timeout = self.config.drain_timeout_s if timeout_s is None else timeout_s
        pending = [f for f in self._open_futures if not f.done()]
        clean = True
        if pending:
            done, not_done = await asyncio.wait(pending, timeout=timeout)
            clean = not not_done
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        return clean

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------

    async def handle_minimize(self, req: Request) -> Dict[str, Any]:
        """The full decision ladder for one minimize request."""
        t0 = time.perf_counter()
        resp = await self._handle_minimize(req)
        self.registry.histogram(
            "serve.request_seconds", TIME_BUCKETS_S
        ).observe(time.perf_counter() - t0)
        return resp

    async def _handle_minimize(self, req: Request) -> Dict[str, Any]:
        cfg = self.config
        if self._draining:
            self._count("serve.refused_shutdown")
            return response(
                req.id, "shutting_down", error="daemon is draining"
            )

        # Negative cache: a deterministic parse rejection of this exact
        # text was already answered once — coalesce repeats onto it
        # without paying the prepare thread again.  Fault-injected and
        # no_cache requests opt out, mirroring the positive cache.
        use_negative = not req.no_cache and req.inject is None
        if use_negative:
            cached_error = self.malformed_cache.get(
                MalformedCache.key_for(req.pla)
            )
            if cached_error is not None:
                self._count("serve.malformed")
                self._count("serve.malformed_cached")
                return response(
                    req.id, "malformed", error=cached_error, cached=True
                )

        try:
            prepared = await asyncio.to_thread(self._prepare, req)
        except MalformedInstance as exc:
            self._count("serve.malformed")
            if use_negative:
                self.malformed_cache.put(
                    MalformedCache.key_for(req.pla), str(exc)
                )
            return response(req.id, "malformed", error=str(exc))
        except _Oversized as exc:
            self._count("serve.shed_oversized")
            return response(
                req.id, "shed", reason="oversized", error=str(exc)
            )
        except Exception as exc:  # noqa: BLE001 - answer, never drop
            self._count("serve.internal_errors")
            return response(
                req.id, "error", error=f"{type(exc).__name__}: {exc}"
            )

        job = prepared
        key = job.cache_key

        if key in self._quarantined:
            self._count("serve.quarantined_refusals")
            return response(
                req.id,
                "quarantined",
                error="instance previously killed "
                f"{self._crash_counts.get(key, 0)} workers",
                bundle_path=self._quarantined[key],
                key=key[0],
            )

        if not job.no_cache:
            entry = self.cache.get(key)
            if entry is not None:
                self._count("serve.cache_hits")
                return self._respond_from_canonical(
                    req, job, entry, cached=True
                )
            self._count("serve.cache_misses")

        # no_cache (and any fault-injected request, which implies it)
        # also opts out of coalescing: those are independent experiments,
        # not interchangeable results.
        inflight = None if job.no_cache else self._inflight.get(key)
        if inflight is not None and not inflight.done():
            self._count("serve.coalesced")
            outcome = await asyncio.shield(inflight)
            return self._respond_from_canonical(
                req, job, outcome, cached=False, coalesced=True
            )

        # Admission control: bounded queue depth, bounded estimated wait.
        if self._open_jobs >= cfg.queue_limit:
            self._count("serve.shed_queue")
            return response(
                req.id,
                "shed",
                reason="queue_full",
                retry_after_s=round(self._estimated_wait_s(), 3),
            )
        estimated = self._estimated_wait_s()
        if estimated > cfg.max_wait_s:
            self._count("serve.shed_wait")
            return response(
                req.id,
                "shed",
                reason="overloaded",
                retry_after_s=round(estimated, 3),
            )

        self._count("serve.admitted")
        loop = asyncio.get_event_loop()
        job.future = loop.create_future()
        job.enqueued_at = time.perf_counter()
        self._open_futures.add(job.future)
        if not job.no_cache:
            self._inflight[key] = job.future
        self._open_jobs += 1
        self.registry.gauge("serve.queue_depth").set(self._queue.qsize() + 1)
        self.registry.gauge("serve.inflight").set(self._open_jobs)
        await self._queue.put(job)
        # Hard upper bound so a supervisor bug can never hang a client:
        # every attempt is itself deadline-capped, so this only fires if
        # the worker machinery wedges entirely.
        bound = (cfg.max_retries + 1) * (
            job.timeout_s + cfg.backoff_cap_s
        ) + 30.0
        try:
            outcome = await asyncio.wait_for(
                asyncio.shield(job.future), timeout=bound
            )
        except asyncio.TimeoutError:  # pragma: no cover - defensive
            self._count("serve.internal_errors")
            return response(
                req.id, "error", error="supervisor deadline exceeded"
            )
        return self._respond_from_canonical(req, job, outcome, cached=False)

    # ------------------------------------------------------------------

    def _prepare(self, req: Request) -> _Job:
        """Parse, bound-check, and canonicalize (runs in a thread)."""
        from repro.pla import parse_pla

        cfg = self.config
        digest = MalformedCache.key_for(req.pla)
        with self._canon_memo_lock:
            memo = self._canon_memo.get(digest)
            if memo is not None:
                self._canon_memo.move_to_end(digest)
        if memo is not None:
            # Byte-identical text was prepared before: parse, bounds, and
            # canonicalize are all pure functions of the text, so the
            # stored result is exact.  The instance itself is not kept
            # (the worker re-parses in its own process anyway).
            canon, name = memo
            instance = None
            self._count("serve.canon_memo_hits")
        else:
            # Recover the conventional leading "# name" comment so served
            # covers are byte-identical to offline runs of the same text.
            name = "request"
            stripped = req.pla.lstrip()
            if stripped.startswith("#"):
                candidate = stripped.splitlines()[0][1:].strip()
                if candidate:
                    name = candidate.split()[0]
            try:
                pla = parse_pla(req.pla, name=name)
            except ValueError as exc:
                raise MalformedInstance(str(exc)) from exc
            n_cubes = len(pla.on) + len(pla.off)
            if (
                pla.n_inputs > cfg.max_inputs
                or n_cubes > cfg.max_cubes
                or len(pla.transitions) > cfg.max_transitions
            ):
                raise _Oversized(
                    f"instance exceeds service limits ({pla.n_inputs} "
                    f"inputs, {n_cubes} cubes, {len(pla.transitions)} "
                    f"transitions; limits {cfg.max_inputs}/{cfg.max_cubes}/"
                    f"{cfg.max_transitions})"
                )
            try:
                instance = pla.to_instance()
            except ValueError as exc:
                raise MalformedInstance(str(exc)) from exc
            canon = canonicalize(instance)
            name = instance.name
            with self._canon_memo_lock:
                self._canon_memo[digest] = (canon, name)
                while len(self._canon_memo) > cfg.canon_memo_entries:
                    self._canon_memo.popitem(last=False)

        options_dict = dict(req.options or {})
        budget_s = req.budget_s if req.budget_s is not None else cfg.budget_s
        if budget_s is not None:
            options_dict["budget"] = {
                "wall_s": budget_s,
                "max_iterations": None,
                "max_checkpoints": None,
            }
        # Validate the options snapshot early: a bad field is the
        # requester's error, not a worker crash three retries later.
        options_from_dict(options_dict)
        checked = bool(req.checked or cfg.checked)
        fingerprint = options_fingerprint(
            dict(options_dict, checked=checked)
        )
        inject = req.inject if cfg.allow_test_faults else None
        timeout_s = min(
            float(req.timeout_s or cfg.job_timeout_s), cfg.job_timeout_s
        )
        warm_session = None
        warm_text_match = False
        if req.warm_key:
            entry = self.sessions.get(req.warm_key)
            if entry is None:
                # Unknown/evicted key: run cold, tell the operator.
                self._count("warmstart.fallbacks")
            elif (
                isinstance(entry, dict)
                and "session" in entry
                and "text_sha" in entry
            ):
                warm_session = entry["session"]
                # Byte-identical text parses deterministically to an
                # identical instance, so the worker's planner may treat
                # the session as provably identical and skip signature
                # re-derivation (the Theorem 2.11 verify still runs).
                warm_text_match = entry["text_sha"] == digest
            else:  # pragma: no cover - legacy raw-session entries
                warm_session = entry
        return _Job(
            cache_key=(canon.key, fingerprint),
            pla_text=req.pla,
            name=name,
            canon=canon,
            instance=instance,
            options_dict=options_dict,
            checked=checked,
            no_cache=bool(req.no_cache) or inject is not None,
            timeout_s=timeout_s,
            inject=inject,
            warm_session=warm_session,
            # A warm_key request keeps the chain alive: its result is
            # captured too, so the client can keep editing.
            capture_session=bool(req.session or req.warm_key),
            warm_text_match=warm_text_match,
        )

    def _respond_from_canonical(
        self,
        req: Request,
        job: _Job,
        outcome: Dict[str, Any],
        cached: bool,
        coalesced: bool = False,
    ) -> Dict[str, Any]:
        """Map a canonical-space outcome into the requester's labeling."""
        status = outcome["status"]
        fields: Dict[str, Any] = {
            "key": job.cache_key[0],
            "cached": cached,
        }
        if coalesced:
            fields["coalesced"] = True
        for name in (
            "error",
            "bundle_path",
            "attempts",
            "time_s",
            "num_cubes",
            "num_literals",
            "warm",
        ):
            if outcome.get(name) is not None:
                fields[name] = outcome[name]
        if job.capture_session and (
            outcome.get("session_stored") or job.cache_key[0] in self.sessions
        ):
            fields["warm_key"] = job.cache_key[0]
        if status in COVER_STATUSES and outcome.get("cover_pla"):
            from repro.pla import format_cover, parse_pla

            canonical_cover = parse_pla(outcome["cover_pla"]).on
            cover = job.canon.cover_from_canonical(canonical_cover)
            fields["cover_pla"] = format_cover(
                cover, pla_type="f", name=f"{job.name} minimized"
            )
        if status in ("degraded", "budget_exceeded"):
            self._count("serve.degraded_served")
        return response(req.id, status, **fields)

    def _estimated_wait_s(self) -> float:
        workers = max(1, self.config.workers)
        return self._open_jobs * self._job_ewma_s / workers

    def _count(self, name: str, n: int = 1) -> None:
        self.registry.counter(name).inc(n)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    async def _worker_loop(self, index: int) -> None:
        while True:
            job = await self._queue.get()
            self.registry.gauge("serve.queue_depth").set(self._queue.qsize())
            started = time.perf_counter()
            self.registry.histogram(
                "serve.queue_wait_seconds", TIME_BUCKETS_S
            ).observe(started - job.enqueued_at)
            try:
                outcome = await self._run_job(job)
            except asyncio.CancelledError:
                if job.future and not job.future.done():
                    job.future.set_result(
                        {"status": "error", "error": "daemon shut down"}
                    )
                raise
            except Exception as exc:  # noqa: BLE001 - resolve, never hang
                self._count("serve.internal_errors")
                outcome = {
                    "status": "error",
                    "error": f"{type(exc).__name__}: {exc}",
                }
            elapsed = time.perf_counter() - started
            self._job_ewma_s = 0.7 * self._job_ewma_s + 0.3 * elapsed
            self._open_jobs -= 1
            self.registry.gauge("serve.inflight").set(self._open_jobs)
            self._open_futures.discard(job.future)
            if self._inflight.get(job.cache_key) is job.future:
                del self._inflight[job.cache_key]
            # The session rides the outcome only across the worker
            # boundary: it is stored server-side under the canonical key
            # and never shipped to the client (the ``warm_key`` response
            # field names it instead).
            session = outcome.pop("session", None)
            if session is not None and outcome["status"] == "ok":
                # The producing text's digest rides along so a later
                # byte-identical resubmission can be proven identical
                # without re-deriving signatures.
                self.sessions.put(
                    job.cache_key[0],
                    {
                        "session": session,
                        "text_sha": MalformedCache.key_for(job.pla_text),
                    },
                )
                outcome["session_stored"] = True
            if (
                not job.no_cache
                and outcome["status"] in CACHEABLE_STATUSES
            ):
                # Cache entries outlive this request: strip the per-run
                # warm-start disposition so a later cache hit does not
                # replay it.
                self.cache.put(
                    job.cache_key,
                    {
                        k: v
                        for k, v in outcome.items()
                        if k not in ("warm", "session_stored")
                    },
                )
            if not job.future.done():
                job.future.set_result(outcome)

    async def _run_job(self, job: _Job) -> Dict[str, Any]:
        """Run one job with bounded retries on worker death."""
        from repro.guard.runner import pla_payload, run_one

        cfg = self.config
        attempt = 0
        while True:
            payload = pla_payload(
                job.pla_text,
                name=job.name,
                options=None,
                checked=job.checked,
                verify=True,
                warm_session=job.warm_session,
                capture_session=job.capture_session,
                warm_text_match=job.warm_text_match,
            )
            payload["options"] = dict(job.options_dict)
            if job.inject is not None:
                payload["inject"] = dict(job.inject)
            payload["attempt"] = attempt
            row = await asyncio.to_thread(
                run_one,
                payload,
                timeout_s=job.timeout_s,
                bundle_dir=cfg.bundle_dir,
            )
            status = row["status"]
            if status != "worker_crashed":
                # The worker survived and reported: whatever the verdict,
                # this instance is not poison.  Only *consecutive* deaths
                # (within or across requests) count toward quarantine.
                self._crash_counts.pop(job.cache_key, None)
                return self._outcome_from_row(job, row, attempt)

            self._count("serve.worker_crashes")
            crashes = self._crash_counts.get(job.cache_key, 0) + 1
            self._crash_counts[job.cache_key] = crashes
            if crashes >= cfg.quarantine_threshold:
                bundle_path = self._quarantine(job, crashes, row)
                return {
                    "status": "quarantined",
                    "error": f"poison job: killed {crashes} workers "
                    f"({row.get('error')})",
                    "bundle_path": bundle_path,
                    "attempts": attempt + 1,
                }
            if attempt >= cfg.max_retries:
                return {
                    "status": "worker_crashed",
                    "error": row.get("error"),
                    "attempts": attempt + 1,
                }
            attempt += 1
            self._count("serve.retries")
            backoff = min(
                cfg.backoff_cap_s,
                cfg.backoff_base_s * (2 ** (attempt - 1)),
            ) * (0.5 + 0.5 * self._rng.random())
            await asyncio.sleep(backoff)

    def _outcome_from_row(
        self, job: _Job, row: Dict[str, Any], attempt: int
    ) -> Dict[str, Any]:
        """Canonical-space outcome for a row the worker reported itself."""
        status = row["status"]
        counter = {
            "ok": "serve.completed_ok",
            "degraded": "serve.completed_degraded",
            "budget_exceeded": "serve.completed_degraded",
            "no_solution": "serve.no_solution",
            "malformed": "serve.malformed",
            "timeout": "serve.timeouts",
            "invariant_violation": "serve.invariant_violations",
            "crash": "serve.worker_errors",
        }.get(status, "serve.worker_errors")
        self._count(counter)
        outcome: Dict[str, Any] = {
            "status": status if status != "crash" else "error",
            "error": row.get("error"),
            "bundle_path": row.get("bundle_path"),
            "attempts": attempt + 1,
            "time_s": row.get("time_s"),
            "num_cubes": row.get("num_cubes"),
            "num_literals": row.get("num_literals"),
            "cover_pla": None,
        }
        if row.get("warm") is not None:
            outcome["warm"] = row["warm"]
        if row.get("session") is not None:
            outcome["session"] = row["session"]
        if job.warm_session is not None:
            # Warm-start disposition counters (docs/OBSERVABILITY.md):
            # a run that used the session (memo import or identical-mode
            # short-circuit) is a hit; a planner fallback counts like a
            # store miss.
            warm = row.get("warm")
            if warm in ("warm", "identical"):
                self._count("warmstart.hits")
            elif warm == "cold" or warm is None:
                self._count("warmstart.fallbacks")
            reverified = (row.get("counters") or {}).get(
                "warm_cubes_reverified", 0
            )
            if reverified:
                self._count("warmstart.cubes_reverified", int(reverified))
        if status in COVER_STATUSES and row.get("cover_pla"):
            from repro.pla import format_cover, parse_pla

            cover = parse_pla(row["cover_pla"]).on
            canonical = job.canon.cover_to_canonical(cover)
            outcome["cover_pla"] = format_cover(
                canonical, pla_type="f", name="canonical"
            )
        return outcome

    def _quarantine(
        self, job: _Job, crashes: int, row: Dict[str, Any]
    ) -> Optional[str]:
        """Record a poison job: refuse future submissions, keep evidence."""
        self._count("serve.quarantined")
        bundle_path: Optional[str] = None
        try:
            instance = job.instance
            if instance is None:
                # The job was prepared from the canonicalization memo;
                # rebuild the instance from the text for the bundle.
                from repro.pla import parse_pla

                instance = parse_pla(
                    job.pla_text, name=job.name
                ).to_instance()
            bundle_path = write_bundle(
                instance,
                failure_kind="crash",
                failure_message=(
                    f"poison job: killed {crashes} workers; last death: "
                    f"{row.get('error')}"
                ),
                options=options_from_dict(job.options_dict),
                bundle_dir=self.config.bundle_dir,
            )
        except Exception:  # noqa: BLE001 - quarantine must not fail the reply
            pass
        self._quarantined[job.cache_key] = bundle_path
        return bundle_path

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "queue_depth": self._queue.qsize(),
            "open_jobs": self._open_jobs,
            "inflight": len(self._inflight),
            "draining": self._draining,
            "estimated_wait_s": round(self._estimated_wait_s(), 4),
            "cache": self.cache.stats(),
            "malformed_cache": self.malformed_cache.stats(),
            "sessions": self.sessions.stats(),
            "canon_memo_entries": len(self._canon_memo),
            "quarantined": len(self._quarantined),
            "metrics": self.registry.snapshot(),
        }


class _Oversized(Exception):
    """Instance exceeds the admission size limits (shed, not malformed)."""
