"""Wire protocol of the minimization service: newline-delimited JSON.

One request per line, one response per line, UTF-8, ``\\n``-terminated.
The framing is deliberately primitive — any language with a socket and a
JSON parser is a client — and every connection is independent: requests on
one connection are answered in order, connections are concurrent.

Requests
--------

``{"op": "minimize", "id": "r1", "pla": "<extended PLA text>", ...}``
    Minimize one instance (the same ``.type fr`` + ``.trans`` format the
    CLI reads).  Optional fields: ``options`` (a JSON
    :func:`~repro.guard.bundle.options_to_dict` snapshot), ``timeout_s``
    (per-job wall cap), ``budget_s`` (cooperative budget — exhausting it
    yields a *degraded* best-verified cover, not a failure), ``checked``
    (phase-boundary invariants on), ``no_cache`` (bypass the result
    cache), ``inject`` (test-only fault seam, honoured only when the
    daemon runs with ``--allow-test-faults``), ``session`` (capture a
    warm-start session server-side; the response's ``warm_key`` names
    it), ``warm_key`` (seed this run from a previously captured session —
    see ``docs/WARMSTART.md``; an unknown or unusable key degrades to a
    cold run, never an error).
``{"op": "ping"}``
    Liveness probe; echoes the protocol version.
``{"op": "stats"}``
    Queue/cache/quarantine state plus a full metrics snapshot.
``{"op": "shutdown"}``
    Graceful drain (when the daemon allows remote shutdown).

Responses
---------

Every response carries ``id`` (echoed), ``ok`` (bool) and ``status`` — one
of :data:`RESPONSE_STATUSES`; see ``docs/SERVICE.md`` for the full failure
semantics.  Malformed lines are answered with ``status="protocol_error"``
when the line parses far enough to answer at all; an over-long line kills
the connection (the framing is already lost).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

PROTOCOL_VERSION = 1

#: refuse request lines longer than this (framing guard, not a size cap —
#: instance size limits are admission control's job)
MAX_LINE_BYTES = 4 * 1024 * 1024

REQUEST_OPS = ("minimize", "ping", "stats", "shutdown")

#: every status a response can carry
RESPONSE_STATUSES = (
    "ok",            # minimized (cover attached)
    "degraded",      # budget ran out; best *verified* cover attached
    "budget_exceeded",
    "no_solution",   # Theorem 4.1: no hazard-free cover exists
    "malformed",     # bad PLA text / ill-formed instance
    "timeout",       # per-job wall cap exceeded
    "worker_crashed",  # worker died and retries ran out
    "quarantined",   # poison job: killed too many workers, see bundle
    "shed",          # admission control refused (queue/wait/size limits)
    "shutting_down", # daemon is draining; no new work accepted
    "error",         # unexpected internal failure
    "protocol_error",
)

#: statuses that still attach a usable hazard-free cover
COVER_STATUSES = ("ok", "degraded", "budget_exceeded")


class ProtocolError(ValueError):
    """A request line that cannot be honoured (bad JSON, bad fields)."""


@dataclass
class Request:
    """One validated ``minimize`` request."""

    op: str
    id: Optional[str] = None
    pla: str = ""
    options: Dict[str, Any] = field(default_factory=dict)
    timeout_s: Optional[float] = None
    budget_s: Optional[float] = None
    checked: bool = False
    no_cache: bool = False
    inject: Optional[Dict[str, Any]] = None
    warm_key: Optional[str] = None
    session: bool = False


def parse_request(line: str) -> Request:
    """Validate one request line into a :class:`Request`.

    Raises :class:`ProtocolError` with a human-readable reason on any
    malformed line; the server turns that into a ``protocol_error``
    response rather than dropping the connection.
    """
    try:
        data = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ProtocolError("request must be a JSON object")
    op = data.get("op")
    if op not in REQUEST_OPS:
        raise ProtocolError(
            f"unknown op {op!r} (expected one of {', '.join(REQUEST_OPS)})"
        )
    req_id = data.get("id")
    if req_id is not None and not isinstance(req_id, (str, int)):
        raise ProtocolError("id must be a string or integer")
    if op != "minimize":
        return Request(op=op, id=req_id)
    pla = data.get("pla")
    if not isinstance(pla, str) or not pla.strip():
        raise ProtocolError("minimize requires a non-empty 'pla' string")
    options = data.get("options") or {}
    if not isinstance(options, dict):
        raise ProtocolError("options must be a JSON object")
    inject = data.get("inject")
    if inject is not None and not isinstance(inject, dict):
        raise ProtocolError("inject must be a JSON object")
    for key in ("timeout_s", "budget_s"):
        value = data.get(key)
        if value is not None and (
            not isinstance(value, (int, float)) or value <= 0
        ):
            raise ProtocolError(f"{key} must be a positive number")
    warm_key = data.get("warm_key")
    if warm_key is not None and not isinstance(warm_key, str):
        raise ProtocolError("warm_key must be a string")
    return Request(
        op="minimize",
        id=req_id,
        pla=pla,
        options=options,
        timeout_s=data.get("timeout_s"),
        budget_s=data.get("budget_s"),
        checked=bool(data.get("checked", False)),
        no_cache=bool(data.get("no_cache", False)),
        inject=inject,
        warm_key=warm_key,
        session=bool(data.get("session", False)),
    )


def encode(message: Dict[str, Any]) -> bytes:
    """Serialize one response (or request) as an NDJSON line."""
    return (json.dumps(message, sort_keys=True) + "\n").encode()


def response(
    req_id: Optional[str],
    status: str,
    **fields: Any,
) -> Dict[str, Any]:
    """Build a response dict with the mandatory envelope fields."""
    assert status in RESPONSE_STATUSES, status
    message: Dict[str, Any] = {
        "id": req_id,
        "ok": status in COVER_STATUSES or status == "no_solution",
        "status": status,
        "v": PROTOCOL_VERSION,
    }
    message.update(fields)
    return message
