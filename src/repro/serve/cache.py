"""Canonical-key result cache: bounded LRU over minimization outcomes.

Entries are keyed by ``(canonical instance key, options fingerprint)`` —
see :mod:`repro.serve.canon` for the instance side; the options
fingerprint hashes the :func:`~repro.guard.bundle.options_to_dict`
snapshot so a ``--checked`` run and a stage-subset run never share an
entry with the default pipeline.

What gets cached is deliberately narrow: ``ok`` covers (stored in
*canonical* variable labeling, so one entry serves every
permutation/polarity rewrite of the instance) and ``no_solution``
verdicts (Theorem 4.1 is a property of the function, equally invariant).
Degraded, timed-out, crashed, or fault-injected outcomes are never
cached — they describe one run, not the instance.

:class:`MalformedCache` is the *negative* side: deterministic
``malformed`` rejections happen at parse time, **before** canonicalization
can produce a key, so they are keyed by a digest of the raw request text.
Without it every resubmission of the same bad text re-paid a full parse in
the prepare thread; with it repeated rejections coalesce onto one cached
answer.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

#: outcome statuses that are safe to cache (instance properties, not
#: run accidents)
CACHEABLE_STATUSES = ("ok", "no_solution")

CacheKey = Tuple[str, str]


def options_fingerprint(options_dict: Dict[str, Any]) -> str:
    """Stable digest of an options snapshot (budget configuration included)."""
    return hashlib.sha256(
        json.dumps(options_dict or {}, sort_keys=True).encode()
    ).hexdigest()[:16]


class ResultCache:
    """Bounded LRU mapping cache keys to canonical-space outcomes.

    An entry is a plain dict: ``{"status", "cover_pla", "num_cubes",
    "num_literals", "error"}`` with ``cover_pla`` in canonical labeling
    (``None`` for ``no_solution``).  Eviction is least-recently-*used*:
    every hit refreshes the entry.
    """

    def __init__(self, max_entries: int = 1024):
        if max_entries < 1:
            raise ValueError("cache needs at least one entry")
        self.max_entries = max_entries
        self._entries: "OrderedDict[CacheKey, Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: optional zero-arg callback fired once per eviction — the
        #: supervisor hangs its ``serve.cache_evictions`` metrics counter
        #: here so operators see cache pressure without polling stats
        self.on_evict = None

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey) -> Optional[Dict[str, Any]]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: CacheKey, entry: Dict[str, Any]) -> None:
        if entry.get("status") not in CACHEABLE_STATUSES:
            raise ValueError(
                f"refusing to cache status {entry.get('status')!r}"
            )
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict()

    def stats(self) -> Dict[str, Any]:
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class MalformedCache:
    """Bounded LRU negative cache over deterministic parse rejections.

    Maps a digest of the raw PLA request text (:meth:`key_for`) to the
    rejection message the parser produced.  Only *pre-run* rejections
    belong here — parsing is a pure function of the text, so the verdict
    is deterministic; mid-run or fault-injected ``malformed`` outcomes
    describe one run and are never negatively cached.  Entries are tiny
    (digest + message), so the default capacity is generous relative to
    the positive cache.
    """

    def __init__(self, max_entries: int = 1024):
        if max_entries < 1:
            raise ValueError("cache needs at least one entry")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, str]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key_for(pla_text: str) -> str:
        """Digest of the raw request text (pre-canonicalization keyspace)."""
        return hashlib.sha256(pla_text.encode()).hexdigest()[:32]

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[str]:
        error = self._entries.get(key)
        if error is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return error

    def put(self, key: str, error: str) -> None:
        self._entries[key] = str(error)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats(self) -> Dict[str, Any]:
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
