"""Minimization-as-a-service: a fault-tolerant daemon over the guard layer.

``repro.serve`` turns the offline minimizer into a long-running service
(``espresso-hf serve``) without weakening any of the correctness story:

* :mod:`repro.serve.canon` — content-addressed instance keys modulo the
  PR-4 metamorphic equivalences (input permutation × polarity flip), so
  equivalent requests share one cache entry and cached covers map back
  into each requester's labeling;
* :mod:`repro.serve.cache` — bounded LRU over canonical-space outcomes;
* :mod:`repro.serve.protocol` — the NDJSON wire format;
* :mod:`repro.serve.supervisor` — admission control, in-flight dedup,
  per-job deadlines, retry-on-worker-death with backoff, poison-job
  quarantine, graceful drain;
* :mod:`repro.serve.daemon` — the asyncio listener and CLI entry;
* :mod:`repro.serve.client` — a blocking client for tests and tools.

See ``docs/SERVICE.md`` for the protocol and failure semantics.
"""

from repro.serve.cache import ResultCache, options_fingerprint
from repro.serve.canon import (
    CanonicalForm,
    canonical_instance_key,
    canonicalize,
)
from repro.serve.client import ServeClient
from repro.serve.daemon import (
    MinimizationServer,
    ServerHandle,
    serve_main,
    start_in_thread,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    parse_request,
    response,
)
from repro.serve.supervisor import ServeConfig, Supervisor

__all__ = [
    "CanonicalForm",
    "canonicalize",
    "canonical_instance_key",
    "ResultCache",
    "options_fingerprint",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "parse_request",
    "response",
    "ServeConfig",
    "Supervisor",
    "MinimizationServer",
    "ServerHandle",
    "serve_main",
    "start_in_thread",
    "ServeClient",
]
