"""``espresso-hf detect`` / ``espresso-hf transform`` subcommands.

Dispatched from :func:`repro.cli.main` before the minimizer's argparse
(the ``serve`` idiom), so foreign circuits are first-class traffic::

    espresso-hf detect circuit.net                # verdict per transition
    espresso-hf detect cover.pla --algebra        # + 8-valued advisory
    espresso-hf detect circuit.net --mode exhaustive --json report.json
    espresso-hf transform circuit.net -o fixed.net
    espresso-hf transform spec.pla --pla-out uf.pla --mode complete

Inputs are sniffed: PLA text (``.i``/``.type`` directives) is read as a
specification whose ON cover realizes the network under test;
``.net`` text (``.inputs``/gate lines, see ``docs/FORMAT.md``) is parsed
as a netlist with optional ``.trans`` transitions.

Exit codes follow the shared taxonomy (``docs/FAILURES.md``): 0 clean /
success, 3 hazard or functional mismatch found (detect) or verification
failed (transform), 4 malformed input, 5 budget exhausted before a
definitive answer.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

from repro.detect.detector import (
    DetectionReport,
    DetectOptions,
    detect_netlist,
)
from repro.detect.netlist import Netlist, NetlistError
from repro.detect.nlformat import format_netlist, parse_netlist
from repro.guard.budget import RunBudget
from repro.guard.errors import BudgetExceeded, MalformedInstance
from repro.hazards.transitions import Transition
from repro.obs.metrics import MetricsRegistry

EXIT_OK = 0
EXIT_USAGE = 1
EXIT_VERIFY_FAILED = 3
EXIT_MALFORMED = 4
EXIT_BUDGET = 5


def _sniff_pla(text: str) -> bool:
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.split()[0] in (".i", ".o", ".type", ".ilb", ".ob", ".p"):
            return True
        if line.startswith(".model") or line.startswith(".inputs"):
            return False
    return False


def _load(path: str, forced: Optional[str]):
    """Read a circuit file: returns (netlist, on, off, transitions)."""
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise MalformedInstance(f"cannot read {path}: {exc}")
    kind = forced or ("pla" if _sniff_pla(text) else "net")
    if kind == "pla":
        from repro.pla.reader import parse_pla

        instance = parse_pla(text, name=path).to_instance()
        netlist = Netlist.from_cover(instance.on, name=instance.name)
        return netlist, instance.on, instance.off, list(instance.transitions)
    netlist, transitions = parse_netlist(text, name=path)
    from repro.transform.extract import extract_covers

    on, off = extract_covers(netlist)
    return netlist, on, off, transitions


def _print_report(report: DetectionReport, quiet: bool) -> None:
    bad = report.hazards + report.mismatches
    if not quiet:
        for v in report.verdicts:
            line = (
                f"{''.join(map(str, v.transition.start))} -> "
                f"{''.join(map(str, v.transition.end))} out={v.output}: "
                f"{v.status}"
            )
            if not v.exhaustive:
                line += f" (sampled {v.points_checked}/{v.points_total})"
            if v.algebra is not None:
                line += f" [algebra {v.algebra}]"
            print(line)
    for v in bad:
        w = v.witness
        print(
            f"witness: output {w.output} at point {w.point} "
            f"(pair {''.join(map(str, w.start))} -> "
            f"{''.join(map(str, w.end))}): expected {w.expected}, "
            f"observed {w.observed}; unstable gates: "
            f"{', '.join(w.unstable_gates) or '-'}"
        )
    verdict = "HAZARD-FREE" if report.hazard_free else "HAZARDOUS"
    extra = " (budget exhausted; partial)" if report.budget_exhausted else ""
    print(f"{report.name}: {verdict}{extra}")


def detect_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="espresso-hf detect",
        description="Gate-level hazard detection for AND/OR/NOT netlists "
        "(docs/DETECTION.md).",
    )
    parser.add_argument("input", help=".net netlist or PLA file")
    parser.add_argument(
        "--format",
        choices=("auto", "net", "pla"),
        default="auto",
        help="force the input format (default: sniff)",
    )
    parser.add_argument(
        "--mode",
        choices=("auto", "exhaustive", "sampled"),
        default="auto",
        help="point enumeration mode (default auto = sampled with cap)",
    )
    parser.add_argument(
        "--max-points",
        type=int,
        default=DetectOptions.max_points,
        metavar="N",
        help="per-transition ternary-point cap in sampled mode",
    )
    parser.add_argument("--seed", type=int, default=0, help="sampling seed")
    parser.add_argument(
        "--algebra",
        action="store_true",
        help="annotate verdicts with the advisory 8-valued class",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="wall-clock budget; partial reports exit 5",
    )
    parser.add_argument("--json", help="write the full report as JSON here")
    parser.add_argument(
        "--quiet", action="store_true", help="print only failures and summary"
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return EXIT_OK if exc.code in (0, None) else EXIT_USAGE

    try:
        netlist, on, off, transitions = _load(
            args.input, None if args.format == "auto" else args.format
        )
        if not transitions:
            raise MalformedInstance(
                f"{args.input}: no transitions to check; add .trans lines "
                "(see docs/FORMAT.md)"
            )
        registry = MetricsRegistry()
        options = DetectOptions(
            mode=args.mode,
            max_points=args.max_points,
            seed=args.seed,
            algebra=args.algebra,
            budget=RunBudget(wall_s=args.timeout) if args.timeout else None,
            registry=registry,
        )
        report = detect_netlist(netlist, on, off, transitions, options)
    except MalformedInstance as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_MALFORMED
    except BudgetExceeded as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BUDGET

    _print_report(report, args.quiet)
    if args.json:
        payload = report.as_dict()
        payload["metrics"] = registry.snapshot()
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if not report.hazard_free:
        return EXIT_VERIFY_FAILED
    if report.budget_exhausted:
        return EXIT_BUDGET
    return EXIT_OK


def transform_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="espresso-hf transform",
        description="Hazard-free u(f) rewrite of a netlist or PLA spec "
        "(docs/DETECTION.md).",
    )
    parser.add_argument("input", help=".net netlist or PLA file")
    parser.add_argument(
        "--format",
        choices=("auto", "net", "pla"),
        default="auto",
        help="force the input format (default: sniff)",
    )
    parser.add_argument(
        "--mode",
        choices=("auto", "transitions", "complete"),
        default="auto",
        help="transition-scoped rewrite or complete sum "
        "(default: transitions when the input specifies any)",
    )
    parser.add_argument(
        "-o", "--output", help="write the rewritten netlist (.net) here"
    )
    parser.add_argument("--pla-out", help="also write the cover as PLA here")
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="wall-clock budget for the rewrite",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip re-running the detector on the result",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the size report"
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return EXIT_OK if exc.code in (0, None) else EXIT_USAGE

    from repro.hazards.instance import HazardFreeInstance
    from repro.transform.uf import transform_instance

    try:
        netlist, on, off, transitions = _load(
            args.input, None if args.format == "auto" else args.format
        )
        mode = args.mode
        if mode == "auto":
            mode = "transitions" if transitions else "complete"
        if mode == "transitions" and not transitions:
            raise MalformedInstance(
                f"{args.input}: transition-scoped rewrite needs .trans lines"
            )
        budget = RunBudget(wall_s=args.timeout) if args.timeout else None
        instance = HazardFreeInstance(
            on,
            off,
            list(transitions) if mode == "transitions" else [],
            name=netlist.name,
            validate=(mode == "transitions"),
        )
        result = transform_instance(instance, mode=mode, budget=budget)
    except MalformedInstance as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_MALFORMED
    except BudgetExceeded as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BUDGET

    if not args.quiet:
        print(
            f"{netlist.name}: {netlist.num_gates} gates depth "
            f"{netlist.depth}  ->  u(f) {result.num_gates} gates depth "
            f"{result.depth} ({result.num_cubes} cubes, mode {result.mode}, "
            f"{result.elapsed_s * 1000:.1f} ms)"
        )
    if not args.no_verify:
        if transitions:
            report = detect_netlist(
                result.netlist, on, off, transitions, DetectOptions()
            )
            if not report.hazard_free:
                _print_report(report, quiet=True)
                return EXIT_VERIFY_FAILED
            if not args.quiet:
                print(
                    f"verified hazard-free over {len(report.verdicts)} "
                    "verdicts"
                )
        elif not args.quiet:
            print("no transitions specified; detector verification skipped")
    text = format_netlist(
        result.netlist, transitions if mode == "transitions" else ()
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
    elif not args.pla_out:
        sys.stdout.write(text)
    if args.pla_out:
        from repro.pla.writer import format_cover

        with open(args.pla_out, "w", encoding="utf-8") as fh:
            fh.write(format_cover(result.cover, name=netlist.name))
    return EXIT_OK
