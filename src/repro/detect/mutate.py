"""Netlist defect injection: the detector's oracle-sensitivity seam.

Mirrors :mod:`repro.proptest.faults` at the netlist level: each defect is
a small, *plausible* miscompilation — the kind of bug a cover-to-gates
lowering could really have — applied through the
:attr:`~repro.detect.detector.DetectOptions.netlist_decorator` seam.
The mutation suite (``tests/test_oracle_sensitivity.py``) asserts every
defect is flagged by at least one oracle: the ternary detector, the
Monte-Carlo simulator, or the Theorem 2.11 verifier (via
:meth:`~repro.detect.netlist.Netlist.as_cover` on two-level netlists).

Defects are deterministic given a seed, and every constructor returns a
**new** netlist — the input is never modified.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.detect.netlist import Gate, Netlist, NetlistError


@dataclass(frozen=True)
class NetlistDefect:
    """One named way of corrupting a netlist."""

    name: str
    description: str
    apply: Callable[[Netlist, random.Random], Optional[Netlist]]

    def mutate(self, netlist: Netlist, seed: int = 0) -> Optional[Netlist]:
        """A corrupted copy, or ``None`` when the defect has no site."""
        return self.apply(netlist, random.Random(seed))


def _rebuild(netlist: Netlist, gates: List[Gate]) -> Netlist:
    return Netlist(
        netlist.n_inputs, gates, netlist.outputs,
        name=f"{netlist.name}+defect",
    )


def _and_gate_sites(netlist: Netlist) -> List[int]:
    return [
        i
        for i, g in enumerate(netlist.gates)
        if g.op == "and" and len(g.fanin) >= 1
    ]


def _dropped_gate(netlist: Netlist, rng: random.Random) -> Optional[Netlist]:
    """Remove one AND term from an OR: a product silently lost."""
    sites: List[Tuple[int, int]] = []
    for i, g in enumerate(netlist.gates):
        if g.op == "or" and len(g.fanin) >= 2:
            for pos in range(len(g.fanin)):
                sites.append((i, pos))
    if not sites:
        return None
    i, pos = rng.choice(sites)
    gates = list(netlist.gates)
    g = gates[i]
    gates[i] = Gate(g.name, g.op, g.fanin[:pos] + g.fanin[pos + 1:])
    return _rebuild(netlist, gates)


def _flipped_phase(netlist: Netlist, rng: random.Random) -> Optional[Netlist]:
    """Swap one literal's polarity inside an AND (x ↔ x̄)."""
    sites: List[Tuple[int, int]] = []
    for i in _and_gate_sites(netlist):
        for pos, f in enumerate(netlist.gates[i].fanin):
            fg = netlist.gates[f]
            if fg.op == "input" or (
                fg.op == "not"
                and netlist.gates[fg.fanin[0]].op == "input"
            ):
                sites.append((i, pos))
    if not sites:
        return None
    i, pos = rng.choice(sites)
    gates = list(netlist.gates)
    g = gates[i]
    f = g.fanin[pos]
    fg = gates[f]
    if fg.op == "not":
        flipped = fg.fanin[0]  # x̄ → x
        fanin = g.fanin[:pos] + (flipped,) + g.fanin[pos + 1:]
        gates[i] = Gate(g.name, g.op, fanin)
        return _rebuild(netlist, gates)
    # x → x̄: reuse an existing NOT of this input or append one.  The
    # appended gate lands after ``i``, so rebuild with the NOT inserted
    # right before the AND to keep the list topological.
    for cand, cg in enumerate(gates):
        if cg.op == "not" and cg.fanin == (f,) and cand < i:
            fanin = g.fanin[:pos] + (cand,) + g.fanin[pos + 1:]
            gates[i] = Gate(g.name, g.op, fanin)
            return _rebuild(netlist, gates)
    inserted = i  # new NOT takes index i; later indices shift by one
    new_not = Gate(f"{gates[f].name}_flip", "not", (f,))

    def shift(idx: int) -> int:
        return idx + 1 if idx >= inserted else idx

    rebuilt: List[Gate] = []
    for k, cg in enumerate(gates):
        if k == inserted:
            rebuilt.append(new_not)
        rebuilt.append(Gate(cg.name, cg.op, tuple(shift(x) for x in cg.fanin)))
    g2 = rebuilt[inserted + 1]
    fanin = g2.fanin[:pos] + (inserted,) + g2.fanin[pos + 1:]
    rebuilt[inserted + 1] = Gate(g2.name, g2.op, fanin)
    outputs = tuple(shift(o) for o in netlist.outputs)
    return Netlist(
        netlist.n_inputs, rebuilt, outputs, name=f"{netlist.name}+defect"
    )


def _widened_cube(netlist: Netlist, rng: random.Random) -> Optional[Netlist]:
    """Drop one literal from an AND: the product covers too much."""
    sites: List[Tuple[int, int]] = []
    for i in _and_gate_sites(netlist):
        if len(netlist.gates[i].fanin) >= 2:
            for pos in range(len(netlist.gates[i].fanin)):
                sites.append((i, pos))
    if not sites:
        return None
    i, pos = rng.choice(sites)
    gates = list(netlist.gates)
    g = gates[i]
    gates[i] = Gate(g.name, g.op, g.fanin[:pos] + g.fanin[pos + 1:])
    return _rebuild(netlist, gates)


#: The defect registry, mirroring :data:`repro.proptest.faults.DEFECTS`.
NETLIST_DEFECTS: Dict[str, NetlistDefect] = {
    d.name: d
    for d in (
        NetlistDefect(
            "dropped_gate",
            "an OR loses one of its AND terms (missing product)",
            _dropped_gate,
        ),
        NetlistDefect(
            "flipped_phase",
            "one AND literal swaps polarity (x for x̄)",
            _flipped_phase,
        ),
        NetlistDefect(
            "widened_cube",
            "an AND loses one literal (product covers too much)",
            _widened_cube,
        ),
    )
}


def defect_decorator(
    defect: str, seed: int = 0
) -> Callable[[Netlist], Netlist]:
    """A ``netlist_decorator`` applying one registry defect.

    Raises :class:`NetlistError` when the netlist has no site for the
    defect, so silently-clean mutants cannot masquerade as caught ones.
    """
    try:
        d = NETLIST_DEFECTS[defect]
    except KeyError:
        raise NetlistError(f"unknown netlist defect {defect!r}")

    def decorate(netlist: Netlist) -> Netlist:
        mutated = d.mutate(netlist, seed)
        if mutated is None:
            raise NetlistError(
                f"netlist {netlist.name!r} has no site for defect {defect!r}"
            )
        return mutated

    return decorate
