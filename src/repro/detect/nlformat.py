"""The ``.net`` netlist text format: parser and writer.

A deliberately small, line-oriented DeMorgan netlist exchange format so
external circuits become first-class traffic for ``espresso-hf detect``
and ``espresso-hf transform`` (documented for users in
``docs/FORMAT.md``)::

    # anything after '#' is a comment
    .model carry          # optional name
    .inputs a b c
    .outputs cout
    n1 = AND a b
    n2 = AND a c'
    cout = OR n1 n2 n3    # forward references are errors
    .trans 010 110        # optional specified transitions
    .end                  # optional

Gate operators are ``AND``/``OR``/``NOT``/``BUF``/``CONST0``/``CONST1``
(case-insensitive).  A postfix prime on an operand (``c'``) reads the
complement through a shared NOT gate, so authors never write inverter
boilerplate.  ``BUF`` introduces an alias, not a gate.

Every diagnostic is a :class:`~repro.detect.netlist.NetlistError`
carrying the 1-based line number, keeping the malformed-input exit code
(4) of the CLI taxonomy.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.detect.netlist import Gate, Netlist, NetlistError
from repro.hazards.transitions import Transition

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.\[\]-]*$")

_OPS = {"AND": "and", "OR": "or", "NOT": "not", "BUF": "buf",
        "CONST0": "const0", "CONST1": "const1"}


def _fail(line_no: int, message: str, name: str) -> NetlistError:
    return NetlistError(f"{name}, line {line_no}: {message}")


def _check_name(token: str, line_no: int, name: str) -> str:
    if not _NAME_RE.match(token):
        raise _fail(line_no, f"invalid signal name {token!r}", name)
    return token


def parse_netlist(
    text: str, name: str = "netlist"
) -> Tuple[Netlist, List[Transition]]:
    """Parse ``.net`` text into a netlist and its specified transitions."""
    inputs: List[str] = []
    output_names: List[Tuple[str, int]] = []  # (name, line)
    gates: List[Gate] = []
    signal: Dict[str, int] = {}
    trans_lines: List[Tuple[str, str, int]] = []
    model = name
    seen_inputs = False
    not_cache: Dict[int, int] = {}

    def resolve(token: str, line_no: int) -> int:
        prime = token.endswith("'")
        base = token[:-1] if prime else token
        if base not in signal:
            raise _fail(
                line_no,
                f"unknown signal {base!r} (forward references are not "
                "allowed; define gates before use)",
                model,
            )
        idx = signal[base]
        if not prime:
            return idx
        if idx not in not_cache:
            not_cache[idx] = len(gates)
            nname = f"{base}_n"
            suffix = 2
            while nname in signal:
                nname = f"{base}_n{suffix}"
                suffix += 1
            gates.append(Gate(nname, "not", (idx,)))
            signal[nname] = not_cache[idx]
        return not_cache[idx]

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            if directive == ".model":
                if len(parts) != 2:
                    raise _fail(line_no, ".model takes one name", model)
                model = parts[1]
            elif directive == ".inputs":
                if seen_inputs:
                    raise _fail(line_no, "duplicate .inputs line", model)
                seen_inputs = True
                if len(parts) < 2:
                    raise _fail(line_no, ".inputs needs at least one name", model)
                for tok in parts[1:]:
                    _check_name(tok, line_no, model)
                    if tok in signal:
                        raise _fail(
                            line_no, f"duplicate input {tok!r}", model
                        )
                    signal[tok] = len(gates)
                    gates.append(Gate(tok, "input"))
                    inputs.append(tok)
            elif directive == ".outputs":
                if len(parts) < 2:
                    raise _fail(line_no, ".outputs needs at least one name", model)
                for tok in parts[1:]:
                    output_names.append((tok, line_no))
            elif directive == ".trans":
                if len(parts) != 3:
                    raise _fail(
                        line_no, ".trans takes two binary vectors", model
                    )
                trans_lines.append((parts[1], parts[2], line_no))
            elif directive == ".end":
                break
            else:
                raise _fail(line_no, f"unknown directive {directive!r}", model)
            continue
        if "=" not in line:
            raise _fail(
                line_no,
                f"expected 'name = OP operands...' but got {line!r}",
                model,
            )
        if not seen_inputs:
            raise _fail(line_no, "gate defined before .inputs", model)
        lhs, rhs = (s.strip() for s in line.split("=", 1))
        _check_name(lhs, line_no, model)
        if lhs in signal:
            raise _fail(line_no, f"signal {lhs!r} defined twice", model)
        rhs_parts = rhs.split()
        if not rhs_parts:
            raise _fail(line_no, f"gate {lhs!r} has no operator", model)
        op_token = rhs_parts[0].upper()
        if op_token not in _OPS:
            raise _fail(
                line_no,
                f"unknown operator {rhs_parts[0]!r} "
                f"(expected one of {', '.join(sorted(_OPS))})",
                model,
            )
        op = _OPS[op_token]
        operands = [resolve(tok, line_no) for tok in rhs_parts[1:]]
        if op == "buf":
            if len(operands) != 1:
                raise _fail(line_no, "BUF takes exactly one operand", model)
            signal[lhs] = operands[0]
            continue
        if op == "not" and len(operands) != 1:
            raise _fail(line_no, "NOT takes exactly one operand", model)
        if op in ("and", "or") and not operands:
            raise _fail(line_no, f"{op_token} needs at least one operand", model)
        if op in ("const0", "const1") and operands:
            raise _fail(line_no, f"{op_token} takes no operands", model)
        signal[lhs] = len(gates)
        gates.append(Gate(lhs, op, tuple(operands)))

    if not seen_inputs:
        raise _fail(1, "missing .inputs line", model)
    if not output_names:
        raise _fail(1, "missing .outputs line", model)
    outputs: List[int] = []
    for tok, line_no in output_names:
        if tok not in signal:
            raise _fail(line_no, f"output {tok!r} is never defined", model)
        outputs.append(signal[tok])
    netlist = Netlist(len(inputs), gates, outputs, name=model)

    transitions: List[Transition] = []
    for start_s, end_s, line_no in trans_lines:
        for vec in (start_s, end_s):
            if len(vec) != len(inputs) or any(c not in "01" for c in vec):
                raise _fail(
                    line_no,
                    f".trans vector {vec!r} is not a {len(inputs)}-bit "
                    "binary string",
                    model,
                )
        transitions.append(
            Transition(
                tuple(int(c) for c in start_s),
                tuple(int(c) for c in end_s),
            )
        )
    return netlist, transitions


def format_netlist(
    netlist: Netlist, transitions: Sequence[Transition] = ()
) -> str:
    """Serialize a netlist (and optional transitions) as ``.net`` text.

    ``parse_netlist(format_netlist(n))`` reproduces the netlist up to
    NOT-gate sharing.
    """
    lines = [f".model {netlist.name}"]
    input_gates = netlist.gates[: netlist.n_inputs]
    lines.append(".inputs " + " ".join(g.name for g in input_gates))
    out_names = [netlist.gates[o].name for o in netlist.outputs]
    lines.append(".outputs " + " ".join(out_names))
    for g in netlist.gates[netlist.n_inputs:]:
        operands = " ".join(netlist.gates[f].name for f in g.fanin)
        op = g.op.upper()
        lines.append(f"{g.name} = {op} {operands}".rstrip())
    for t in transitions:
        s = "".join(map(str, t.start))
        e = "".join(map(str, t.end))
        lines.append(f".trans {s} {e}")
    lines.append(".end")
    return "\n".join(lines) + "\n"
