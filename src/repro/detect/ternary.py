"""Ternary points, hazard derivatives, and function-stability checks.

The detector's semantics come from the modern hazard-complexity line
(Ikenmeyer et al., "On the complexity of hazard-free circuits";
Komarath/Saurabh, "On the complexity of detecting hazards"):

* A **ternary point** ``x ∈ {0, 1, X}ⁿ`` models a moment where the
  ``X``-inputs are unstable.  A circuit ``C`` has a *hazard* at ``x``
  iff Kleene evaluation gives ``C(x) = X`` while the boolean function
  ``f`` it implements is constant on every resolution of ``x`` — i.e.
  the hazard-free extension has a definite value the gates fail to
  produce.
* The **hazard derivative** of ``C`` at base point ``a`` in direction
  ``b`` (a set of unstable inputs) is computed by the chain rule
  (:func:`derivative_gates`): each wire carries a pair ``(value, dv)``
  where ``value`` is the binary evaluation at ``a`` and ``dv = 1``
  means the wire can be unstable.  The chain rule is *exactly* Kleene
  evaluation in pair form — :func:`derivative_gates` and
  :meth:`~repro.detect.netlist.Netlist.eval_gates_ternary` agree wire
  for wire, which the differential suite asserts — so a hazard at ``x``
  is precisely "chain-rule derivative 1 but true derivative 0".

The *true* derivative needs function knowledge: :func:`stable_value`
answers "is ``f`` constant on the cube of resolutions of ``x``?" from
ON/OFF covers via cofactor + tautology (exact, no enumeration), with
:func:`stable_value_brute` as the small-n oracle.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.cubes.cube import Cube, LITERAL_DC, LITERAL_ONE, LITERAL_ZERO
from repro.cubes.cover import Cover
from repro.espresso.tautology import tautology
from repro.detect.netlist import Netlist

#: A ternary vector: entries 0, 1, or None (= X, unstable).
TernaryPoint = Tuple[Optional[int], ...]


def point_cube(point: Sequence[Optional[int]]) -> Cube:
    """The cube of resolutions of a ternary point (X ↦ don't-care)."""
    cube = Cube.from_string("-" * len(point)) if point else Cube(0, 0)
    for i, v in enumerate(point):
        if v is not None:
            cube = cube.with_literal(i, LITERAL_ONE if v else LITERAL_ZERO)
    return cube


def point_string(point: Sequence[Optional[int]]) -> str:
    """Render a ternary point as e.g. ``"1X0X"``."""
    return "".join("X" if v is None else str(v) for v in point)


def parse_point(text: str) -> TernaryPoint:
    """Inverse of :func:`point_string` (accepts ``x``, ``X``, ``-``)."""
    out: List[Optional[int]] = []
    for ch in text:
        if ch in "xX-":
            out.append(None)
        elif ch in "01":
            out.append(int(ch))
        else:
            raise ValueError(f"bad ternary digit {ch!r} in {text!r}")
    return tuple(out)


def stable_value(
    point: Sequence[Optional[int]], on: Cover, off: Cover, output: int = 0
) -> Optional[int]:
    """The hazard-free extension ``f̃(point)`` given ON/OFF covers.

    Returns 1 if ``f`` is 1 on every resolution, 0 if 0 on every
    resolution, and ``None`` when ``f`` genuinely varies (or leaves the
    specified domain) over the resolutions.
    """
    cube = point_cube(point)
    if tautology(on.restrict_to_output(output).cofactor(cube)):
        return 1
    if tautology(off.restrict_to_output(output).cofactor(cube)):
        return 0
    return None


def stable_value_brute(
    point: Sequence[Optional[int]], on: Cover, output: int = 0
) -> Optional[int]:
    """Enumeration oracle for :func:`stable_value` on fully specified
    functions (resolves every X both ways; exponential in the X count)."""
    values = set()
    for vec in point_cube(point).minterm_vectors():
        values.add(bool(on.evaluate(vec, output)))
        if len(values) == 2:
            return None
    return 1 if values.pop() else 0


def derivative_gates(
    netlist: Netlist,
    base: Sequence[int],
    unstable: Sequence[int],
) -> List[Tuple[int, int]]:
    """Hazard-derivative pairs ``(value, dv)`` for every gate.

    ``base`` is a binary input vector; ``unstable`` lists the input
    indices carrying derivative 1.  AND composes as
    ``dv = (da & db) | (da & vb) | (db & va)`` with ``v = va & vb`` —
    the chain rule of Ikenmeyer et al. — OR dually, NOT passes ``dv``
    through.
    """
    netlist._check_inputs(base)
    unstable_set = set(unstable)
    pairs: List[Tuple[int, int]] = []
    for i, g in enumerate(netlist.gates):
        if g.op == "input":
            pairs.append((1 if base[i] else 0, 1 if i in unstable_set else 0))
        elif g.op == "const0":
            pairs.append((0, 0))
        elif g.op == "const1":
            pairs.append((1, 0))
        elif g.op == "not":
            v, d = pairs[g.fanin[0]]
            pairs.append((1 - v, d))
        elif g.op == "and":
            v, d = 1, 0
            for f in g.fanin:
                vf, df = pairs[f]
                d = (d & df) | (d & vf) | (df & v)
                v = v & vf
            pairs.append((v, d))
        else:  # or
            v, d = 0, 0
            for f in g.fanin:
                vf, df = pairs[f]
                d = (d & df) | (d & (1 - vf)) | (df & (1 - v))
                v = v | vf
            pairs.append((v, d))
    return pairs


def derivative_point(
    base: Sequence[int], unstable: Sequence[int]
) -> TernaryPoint:
    """The ternary point matching a (base, unstable-set) derivative query."""
    unstable_set = set(unstable)
    return tuple(
        None if i in unstable_set else (1 if v else 0)
        for i, v in enumerate(base)
    )
