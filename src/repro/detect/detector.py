"""The gate-level hazard detector: per-transition verdicts with witnesses.

Semantics (see ``docs/DETECTION.md``): for a specified transition
``[A, B]`` the detector examines the transition's **ternary points** —
stable inputs pinned to their ``A`` value, each changing input set to its
start value, its end value, or ``X``.  At every point where the function
is provably stable (:func:`~repro.detect.ternary.stable_value` over the
ON/OFF covers) the netlist must produce that stable value under Kleene
evaluation; an ``X`` output is a hazard, a wrong definite value is a
functional mismatch.  Vertex points (no ``X``) double as functional
endpoint checks.

Two modes:

* **exhaustive** — all ``3^k`` points of a ``k``-variable transition;
* **sampled** — a seeded random subset capped by
  :attr:`DetectOptions.max_points`, automatically exhaustive whenever
  ``3^k`` fits the cap, cooperating with :class:`repro.guard.RunBudget`
  checkpoints and degrading gracefully to a partial report
  (``budget_exhausted=True``) when a cap blows.

Every hazard verdict carries a concrete witness: the ternary point, the
resolved sub-transition endpoints (an input pair exhibiting the glitch),
and the unstable-gate trace through the netlist.

The model judges *logic* hazards visible to unstable-input (ternary)
analysis.  It is exact for static transitions; for dynamic transitions
the Theorem 2.11 conditions additionally police monotone multi-input-
change interleavings (privileged cubes) that no ternary point can see —
the optional 8-valued ``algebra`` advisory covers that side,
conservatively for multi-level netlists.  ``docs/DETECTION.md`` spells
out the triage rules the differential suite enforces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cubes.cover import Cover
from repro.detect.netlist import Netlist
from repro.detect.ternary import point_string, stable_value
from repro.guard.budget import RunBudget
from repro.guard.errors import BudgetExceeded
from repro.hazards.instance import HazardFreeInstance
from repro.hazards.transitions import Transition
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import current_tracer
from repro.simulate.algebra import W, input_class, wand, wnot, wor

#: Verdict statuses, from best to worst.
STATUS_CLEAN = "clean"
STATUS_UNCONSTRAINED = "unconstrained"
STATUS_SKIPPED = "skipped"
STATUS_MISMATCH = "functional_mismatch"
STATUS_HAZARD = "hazard"

#: How many unstable gates a witness trace records at most.
TRACE_LIMIT = 16

#: Budget checkpoints run every this many examined points.
CHECK_EVERY = 64


@dataclass(frozen=True)
class HazardWitness:
    """A concrete exhibit for one hazard or mismatch verdict."""

    output: int
    point: str  # ternary point, e.g. "1X0X"
    start: Tuple[int, ...]  # resolved sub-transition endpoints
    end: Tuple[int, ...]
    expected: int  # the stable function value at the point
    observed: str  # "X" for a hazard, "0"/"1" for a mismatch
    unstable_gates: Tuple[str, ...] = ()

    def as_dict(self) -> Dict[str, object]:
        return {
            "output": self.output,
            "point": self.point,
            "start": "".join(map(str, self.start)),
            "end": "".join(map(str, self.end)),
            "expected": self.expected,
            "observed": self.observed,
            "unstable_gates": list(self.unstable_gates),
        }


@dataclass(frozen=True)
class TransitionVerdict:
    """The detector's answer for one (transition, output) pair."""

    transition: Transition
    output: int
    status: str
    points_total: int
    points_checked: int
    exhaustive: bool
    witness: Optional[HazardWitness] = None
    algebra: Optional[str] = None  # advisory 8-valued class name

    def as_dict(self) -> Dict[str, object]:
        d: Dict[str, object] = {
            "start": "".join(map(str, self.transition.start)),
            "end": "".join(map(str, self.transition.end)),
            "output": self.output,
            "status": self.status,
            "points_total": self.points_total,
            "points_checked": self.points_checked,
            "exhaustive": self.exhaustive,
        }
        if self.witness is not None:
            d["witness"] = self.witness.as_dict()
        if self.algebra is not None:
            d["algebra"] = self.algebra
        return d


@dataclass
class DetectionReport:
    """All verdicts for one netlist plus aggregate outcome."""

    name: str
    verdicts: List[TransitionVerdict] = field(default_factory=list)
    budget_exhausted: bool = False

    @property
    def hazards(self) -> List[TransitionVerdict]:
        return [v for v in self.verdicts if v.status == STATUS_HAZARD]

    @property
    def mismatches(self) -> List[TransitionVerdict]:
        return [v for v in self.verdicts if v.status == STATUS_MISMATCH]

    @property
    def hazard_free(self) -> bool:
        """No hazard and no mismatch among the checked verdicts."""
        return not self.hazards and not self.mismatches

    @property
    def complete(self) -> bool:
        """Every verdict exhaustive and none skipped."""
        return not self.budget_exhausted and all(
            v.exhaustive and v.status != STATUS_SKIPPED for v in self.verdicts
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "hazard_free": self.hazard_free,
            "complete": self.complete,
            "budget_exhausted": self.budget_exhausted,
            "verdicts": [v.as_dict() for v in self.verdicts],
        }


@dataclass
class DetectOptions:
    """Knobs for :func:`detect_netlist`.

    ``mode`` is ``"exhaustive"`` (always enumerate all ``3^k`` points;
    may be slow for wide transitions), ``"sampled"`` (seeded random
    subset of at most ``max_points`` points, exhaustive when the
    transition fits), or ``"auto"`` (alias for ``"sampled"``).
    ``netlist_decorator`` is the fault-injection seam mirroring
    :func:`repro.proptest.faults.fault_decorator`: it rewrites the
    netlist before detection and exists so mutation suites can prove the
    oracles notice.
    """

    mode: str = "auto"
    max_points: int = 2187  # 3^7
    seed: int = 0
    algebra: bool = False
    budget: Optional[RunBudget] = None
    registry: Optional[MetricsRegistry] = None
    netlist_decorator: Optional[Callable[[Netlist], Netlist]] = None

    def __post_init__(self):
        if self.mode not in ("auto", "exhaustive", "sampled"):
            raise ValueError(f"unknown detect mode {self.mode!r}")
        if self.max_points < 1:
            raise ValueError("max_points must be positive")


class _Counters:
    """Thin veneer so the hot loop never branches on registry presence."""

    def __init__(self, registry: Optional[MetricsRegistry]):
        if registry is None:
            self.points = self.hazards = self.mismatches = None
            self.transitions = self.skipped = None
        else:
            self.points = registry.counter("detect.points_checked")
            self.hazards = registry.counter("detect.hazards_found")
            self.mismatches = registry.counter("detect.mismatches_found")
            self.transitions = registry.counter("detect.transitions_checked")
            self.skipped = registry.counter("detect.transitions_skipped")

    @staticmethod
    def bump(counter, n: int = 1) -> None:
        if counter is not None:
            counter.inc(n)


def _transition_points(
    transition: Transition,
    mode: str,
    max_points: int,
    rng: random.Random,
) -> Tuple[Iterable[Tuple[int, ...]], int, bool]:
    """Yield trit assignments for the changing variables.

    A trit is 0 (start value), 1 (end value), or 2 (``X``).  Returns
    ``(iterator, total, exhaustive)``.
    """
    k = len(transition.changing)
    total = 3 ** k
    if mode == "exhaustive" or total <= max_points:
        def full():
            assign = [0] * k
            while True:
                yield tuple(assign)
                for i in range(k):
                    assign[i] += 1
                    if assign[i] < 3:
                        break
                    assign[i] = 0
                else:
                    return
        return full(), total, True

    def sampled():
        # The endpoints and the all-X point are always examined.
        yield (0,) * k
        yield (1,) * k
        yield (2,) * k
        seen = {(0,) * k, (1,) * k, (2,) * k}
        budget = max_points - len(seen)
        attempts = 0
        while budget > 0 and attempts < 8 * max_points:
            attempts += 1
            cand = tuple(rng.randrange(3) for _ in range(k))
            if cand in seen:
                continue
            seen.add(cand)
            budget -= 1
            yield cand
    return sampled(), total, False


def _algebra_class(netlist: Netlist, transition: Transition, output: int) -> str:
    """Advisory 8-valued (Eichelberger/BDN) class of one output.

    Exact for fan-out-free netlists and two-level covers; conservative
    (may overflag) under reconvergent fan-out.
    """
    values: List[W] = []
    for i, g in enumerate(netlist.gates):
        if g.op == "input":
            values.append(input_class(transition.start[i], transition.end[i]))
        elif g.op == "const0":
            values.append(W.S0)
        elif g.op == "const1":
            values.append(W.S1)
        elif g.op == "not":
            values.append(wnot(values[g.fanin[0]]))
        elif g.op == "and":
            v = W.S1
            for f in g.fanin:
                v = wand(v, values[f])
            values.append(v)
        else:
            v = W.S0
            for f in g.fanin:
                v = wor(v, values[f])
            values.append(v)
    return values[netlist.outputs[output]].name


def _witness(
    netlist: Netlist,
    transition: Transition,
    point: Sequence[Optional[int]],
    output: int,
    expected: int,
    observed: Optional[int],
) -> HazardWitness:
    start = tuple(
        transition.start[i] if v is None else v for i, v in enumerate(point)
    )
    end = tuple(
        transition.end[i] if v is None else v for i, v in enumerate(point)
    )
    trace: List[str] = []
    if observed is None:
        gate_values = netlist.eval_gates_ternary(point)
        for idx, val in enumerate(gate_values):
            if val is None and netlist.gates[idx].op != "input":
                trace.append(netlist.gates[idx].name)
                if len(trace) >= TRACE_LIMIT:
                    break
    return HazardWitness(
        output=output,
        point=point_string(point),
        start=start,
        end=end,
        expected=expected,
        observed="X" if observed is None else str(observed),
        unstable_gates=tuple(trace),
    )


def detect_netlist(
    netlist: Netlist,
    on: Cover,
    off: Cover,
    transitions: Sequence[Transition],
    options: Optional[DetectOptions] = None,
) -> DetectionReport:
    """Judge a netlist against its specification over given transitions.

    ``on``/``off`` are the multi-output specification covers defining the
    intended function (don't-care where neither holds); the netlist's
    outputs are matched positionally against the covers' outputs.
    """
    options = options or DetectOptions()
    if options.netlist_decorator is not None:
        netlist = options.netlist_decorator(netlist)
    if on.n_outputs != netlist.n_outputs or off.n_outputs != netlist.n_outputs:
        raise ValueError(
            f"specification has {on.n_outputs} outputs but netlist "
            f"{netlist.name!r} has {netlist.n_outputs}"
        )
    counters = _Counters(options.registry)
    report = DetectionReport(name=netlist.name)
    tracer = current_tracer()
    span = tracer.start("detect", netlist=netlist.name) if tracer else None
    supports = [netlist.support(j) for j in range(netlist.n_outputs)]
    on_by_out = [on.restrict_to_output(j) for j in range(netlist.n_outputs)]
    off_by_out = [off.restrict_to_output(j) for j in range(netlist.n_outputs)]
    rng = random.Random(options.seed)
    budget = options.budget
    exhausted = False
    try:
        for t_index, t in enumerate(transitions):
            if len(t.start) != netlist.n_inputs:
                raise ValueError(
                    f"transition {t_index} has {len(t.start)} inputs, "
                    f"netlist {netlist.name!r} has {netlist.n_inputs}"
                )
            for j in range(netlist.n_outputs):
                if exhausted:
                    report.verdicts.append(
                        TransitionVerdict(
                            t, j, STATUS_SKIPPED, 3 ** len(t.changing), 0, False
                        )
                    )
                    _Counters.bump(counters.skipped)
                    continue
                try:
                    verdict = _detect_one(
                        netlist,
                        on_by_out[j],
                        off_by_out[j],
                        t,
                        j,
                        supports[j],
                        options,
                        rng,
                        counters,
                        budget,
                    )
                except BudgetExceeded:
                    exhausted = True
                    report.budget_exhausted = True
                    verdict = TransitionVerdict(
                        t, j, STATUS_SKIPPED, 3 ** len(t.changing), 0, False
                    )
                    _Counters.bump(counters.skipped)
                report.verdicts.append(verdict)
    finally:
        if tracer and span:
            tracer.finish(
                span,
                verdicts=len(report.verdicts),
                hazards=len(report.hazards),
                hazard_free=report.hazard_free,
            )
    return report


def _detect_one(
    netlist: Netlist,
    on_j: Cover,
    off_j: Cover,
    transition: Transition,
    output: int,
    support: frozenset,
    options: DetectOptions,
    rng: random.Random,
    counters: _Counters,
    budget: Optional[RunBudget],
) -> TransitionVerdict:
    changing = transition.changing
    k = len(changing)
    start, end = transition.start, transition.end
    _Counters.bump(counters.transitions)
    if budget is not None:
        budget.charge_iteration("detect")

    def spec_value(vec: Sequence[int]) -> Optional[int]:
        if on_j.evaluate(vec):
            return 1
        if off_j.evaluate(vec):
            return 0
        return None

    # A transition whose endpoint value is don't-care for this output has
    # no TransitionKind: the specification places no hazard requirement on
    # it (Theorem 2.11 derives required cubes only for defined kinds), so
    # the detector must not assert either.
    if spec_value(start) is None or spec_value(end) is None:
        return TransitionVerdict(
            transition, output, STATUS_UNCONSTRAINED, 3 ** k, 0, True
        )

    # Fast path: the output cone does not see any changing variable, so
    # only the two endpoints need a functional check.
    relevant = support & set(changing)
    mode = options.mode
    points, total, exhaustive = _transition_points(
        transition,
        "exhaustive" if mode == "exhaustive" else "sampled",
        options.max_points,
        rng,
    )
    if not relevant:
        points, exhaustive = iter(((0,) * k, (1,) * k)), True

    checked = 0
    outcome: Optional[TransitionVerdict] = None
    base = list(start)
    for assign in points:
        checked += 1
        if budget is not None and checked % CHECK_EVERY == 0:
            budget.checkpoint("detect")
        point_list: List[Optional[int]] = base[:]
        has_x = False
        for pos, trit in zip(changing, assign):
            if trit == 0:
                point_list[pos] = start[pos]
            elif trit == 1:
                point_list[pos] = end[pos]
            else:
                point_list[pos] = None
                has_x = True
        point = tuple(point_list)
        if not has_x:
            vec = point
            expected = spec_value(vec)
            if expected is None:
                continue
            got = netlist.eval_gates(vec)[netlist.outputs[output]]
            if got != expected:
                _Counters.bump(counters.mismatches)
                outcome = TransitionVerdict(
                    transition,
                    output,
                    STATUS_MISMATCH,
                    total,
                    checked,
                    exhaustive,
                    _witness(netlist, transition, point, output, expected, got),
                )
                break
            continue
        expected = stable_value(point, on_j, off_j)
        if expected is None:
            continue  # the function itself is unstable here: no assertion
        got = netlist.eval_gates_ternary(point)[netlist.outputs[output]]
        if got is None:
            _Counters.bump(counters.hazards)
            outcome = TransitionVerdict(
                transition,
                output,
                STATUS_HAZARD,
                total,
                checked,
                exhaustive,
                _witness(netlist, transition, point, output, expected, None),
            )
            break
        if got != expected:
            _Counters.bump(counters.mismatches)
            outcome = TransitionVerdict(
                transition,
                output,
                STATUS_MISMATCH,
                total,
                checked,
                exhaustive,
                _witness(netlist, transition, point, output, expected, got),
            )
            break
    _Counters.bump(counters.points, checked)
    if outcome is None:
        outcome = TransitionVerdict(
            transition, output, STATUS_CLEAN, total, checked, exhaustive
        )
    if options.algebra:
        outcome = TransitionVerdict(
            outcome.transition,
            outcome.output,
            outcome.status,
            outcome.points_total,
            outcome.points_checked,
            outcome.exhaustive,
            outcome.witness,
            _algebra_class(netlist, transition, output),
        )
    return outcome


def detect_cover(
    instance: HazardFreeInstance,
    cover: Cover,
    options: Optional[DetectOptions] = None,
    name: Optional[str] = None,
) -> DetectionReport:
    """Detect hazards in the two-level realization of ``cover`` against
    ``instance``'s function and specified transitions."""
    netlist = Netlist.from_cover(cover, name=name or instance.name)
    return detect_netlist(
        netlist, instance.on, instance.off, instance.transitions, options
    )
