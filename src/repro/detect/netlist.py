"""The gate-level netlist IR: multi-level AND/OR/NOT networks.

:class:`~repro.simulate.network.SopNetwork` hard-codes the two-level
AND-OR shape of a cover.  Detection (ROADMAP item 1) must accept *foreign*
circuits — arbitrary DeMorgan netlists — so this module provides the
general IR: a flat list of gates in topological order, binary and ternary
(Kleene) evaluation over that order, and conversions to and from covers.

Design notes
------------

* Gates are stored in one topologically sorted list; the first
  ``n_inputs`` entries are ``input`` gates.  Fan-in edges point strictly
  backwards, which the constructor enforces, so evaluation is a single
  forward sweep — no recursion, no cycle checks at runtime.
* Ternary evaluation uses the same encoding as
  :mod:`repro.simulate.ternary`: ``None`` is the unstable value ``X``; an
  AND with a controlling 0 is 0 and an OR with a controlling 1 is 1 even
  when other fan-ins are ``X``.
* ``from_cover`` builds the canonical two-level realization (shared NOT
  gates on complemented inputs, one AND per distinct product, one OR per
  output) and ``as_cover`` inverts it for any netlist that still has that
  shape — the bridge that lets two-level oracles (Theorem 2.11, the
  Monte-Carlo simulator) judge netlist-level mutations.

Malformed netlists raise :class:`NetlistError`, a
:class:`~repro.guard.errors.MalformedInstance`, so the CLI exit-code
taxonomy (exit 4) applies unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.cubes.cube import (
    Cube,
    LITERAL_DC,
    LITERAL_ONE,
    LITERAL_ZERO,
)
from repro.cubes.cover import Cover
from repro.guard.errors import MalformedInstance

#: Gate operators.  ``input`` gates have no fan-in; ``const0``/``const1``
#: are nullary constants (needed for empty and tautological covers);
#: ``not`` is unary; ``and``/``or`` take one or more fan-ins.
OPS = ("input", "and", "or", "not", "const0", "const1")

_NULLARY = ("input", "const0", "const1")


class NetlistError(MalformedInstance):
    """A structurally invalid netlist (bad fan-in, arity, name, ...)."""


@dataclass(frozen=True)
class Gate:
    """One gate: a name, an operator, and fan-in gate indices."""

    name: str
    op: str
    fanin: Tuple[int, ...] = ()

    def arity_ok(self) -> bool:
        if self.op in _NULLARY:
            return not self.fanin
        if self.op == "not":
            return len(self.fanin) == 1
        if self.op in ("and", "or"):
            return len(self.fanin) >= 1
        return False


class Netlist:
    """An AND/OR/NOT netlist in topological order.

    Parameters
    ----------
    n_inputs:
        Number of primary inputs; ``gates[:n_inputs]`` must be ``input``
        gates.
    gates:
        All gates, inputs first, each fan-in index strictly smaller than
        the gate's own index.
    outputs:
        Gate indices driving the primary outputs (repeats allowed).
    name:
        Diagnostic name used in error messages and reports.
    """

    __slots__ = ("name", "n_inputs", "gates", "outputs", "_index", "_depths")

    def __init__(
        self,
        n_inputs: int,
        gates: Sequence[Gate],
        outputs: Sequence[int],
        name: str = "netlist",
    ):
        gates = tuple(gates)
        outputs = tuple(outputs)
        if n_inputs < 0 or n_inputs > len(gates):
            raise NetlistError(
                f"{name}: n_inputs {n_inputs} out of range for "
                f"{len(gates)} gates"
            )
        index: Dict[str, int] = {}
        for i, g in enumerate(gates):
            if g.op not in OPS:
                raise NetlistError(
                    f"{name}: gate {i} ({g.name!r}): unknown op {g.op!r}"
                )
            if (g.op == "input") != (i < n_inputs):
                raise NetlistError(
                    f"{name}: gate {i} ({g.name!r}): input gates must be "
                    f"exactly the first {n_inputs} gates"
                )
            if not g.arity_ok():
                raise NetlistError(
                    f"{name}: gate {i} ({g.name!r}): op {g.op!r} cannot "
                    f"take {len(g.fanin)} fan-ins"
                )
            for f in g.fanin:
                if not (0 <= f < i):
                    raise NetlistError(
                        f"{name}: gate {i} ({g.name!r}): fan-in {f} is not "
                        f"an earlier gate (netlists must be topological)"
                    )
            if g.name in index:
                raise NetlistError(
                    f"{name}: duplicate gate name {g.name!r} "
                    f"(gates {index[g.name]} and {i})"
                )
            index[g.name] = i
        if not outputs:
            raise NetlistError(f"{name}: netlist has no outputs")
        for o in outputs:
            if not (0 <= o < len(gates)):
                raise NetlistError(
                    f"{name}: output index {o} out of range"
                )
        self.name = name
        self.n_inputs = n_inputs
        self.gates = gates
        self.outputs = outputs
        self._index = index
        self._depths: Optional[Tuple[int, ...]] = None

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    @property
    def n_outputs(self) -> int:
        return len(self.outputs)

    @property
    def num_gates(self) -> int:
        """Logic gates (everything that is not a primary input)."""
        return len(self.gates) - self.n_inputs

    @property
    def num_literals(self) -> int:
        """Total fan-in edge count over logic gates."""
        return sum(len(g.fanin) for g in self.gates)

    def gate_depths(self) -> Tuple[int, ...]:
        """Depth of every gate (inputs and constants are depth 0)."""
        if self._depths is None:
            depths: List[int] = []
            for g in self.gates:
                if g.op in _NULLARY:
                    depths.append(0)
                else:
                    depths.append(1 + max(depths[f] for f in g.fanin))
            self._depths = tuple(depths)
        return self._depths

    @property
    def depth(self) -> int:
        depths = self.gate_depths()
        return max(depths[o] for o in self.outputs)

    def support(self, output: int) -> FrozenSet[int]:
        """Primary inputs in the cone of ``outputs[output]``."""
        seen = set()
        stack = [self.outputs[output]]
        inputs = set()
        while stack:
            i = stack.pop()
            if i in seen:
                continue
            seen.add(i)
            g = self.gates[i]
            if g.op == "input":
                inputs.add(i)
            stack.extend(g.fanin)
        return frozenset(inputs)

    def gate_named(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise NetlistError(f"{self.name}: no gate named {name!r}")

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _check_inputs(self, inputs: Sequence) -> None:
        if len(inputs) != self.n_inputs:
            raise NetlistError(
                f"{self.name}: expected {self.n_inputs} input values, "
                f"got {len(inputs)}"
            )

    def eval_gates(self, inputs: Sequence[int]) -> List[int]:
        """Binary evaluation; returns the value of every gate."""
        self._check_inputs(inputs)
        values: List[int] = []
        for i, g in enumerate(self.gates):
            if g.op == "input":
                values.append(1 if inputs[i] else 0)
            elif g.op == "const0":
                values.append(0)
            elif g.op == "const1":
                values.append(1)
            elif g.op == "not":
                values.append(1 - values[g.fanin[0]])
            elif g.op == "and":
                v = 1
                for f in g.fanin:
                    v &= values[f]
                values.append(v)
            else:  # or
                v = 0
                for f in g.fanin:
                    v |= values[f]
                values.append(v)
        return values

    def evaluate(self, inputs: Sequence[int]) -> Tuple[int, ...]:
        values = self.eval_gates(inputs)
        return tuple(values[o] for o in self.outputs)

    def eval_gates_ternary(
        self, inputs: Sequence[Optional[int]]
    ) -> List[Optional[int]]:
        """Kleene ternary evaluation; ``None`` is the unstable value X."""
        self._check_inputs(inputs)
        values: List[Optional[int]] = []
        for i, g in enumerate(self.gates):
            if g.op == "input":
                x = inputs[i]
                values.append(None if x is None else (1 if x else 0))
            elif g.op == "const0":
                values.append(0)
            elif g.op == "const1":
                values.append(1)
            elif g.op == "not":
                x = values[g.fanin[0]]
                values.append(None if x is None else 1 - x)
            elif g.op == "and":
                v: Optional[int] = 1
                for f in g.fanin:
                    x = values[f]
                    if x == 0:
                        v = 0
                        break
                    if x is None:
                        v = None
                values.append(v)
            else:  # or
                v = 0
                for f in g.fanin:
                    x = values[f]
                    if x == 1:
                        v = 1
                        break
                    if x is None:
                        v = None
                values.append(v)
        return values

    def evaluate_ternary(
        self, inputs: Sequence[Optional[int]]
    ) -> Tuple[Optional[int], ...]:
        values = self.eval_gates_ternary(inputs)
        return tuple(values[o] for o in self.outputs)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_cover(cls, cover: Cover, name: str = "cover") -> "Netlist":
        """The canonical two-level AND-OR realization of a cover.

        Complemented literals go through shared NOT gates (one per input
        actually used complemented), mirroring the gate/wire structure the
        Monte-Carlo simulator assumes.  Tautological cubes become
        ``const1``; outputs with no cubes become ``const0``.
        """
        n = cover.n_inputs
        gates: List[Gate] = [Gate(f"x{i}", "input") for i in range(n)]
        not_gate: Dict[int, int] = {}
        for c in cover:
            for i in range(n):
                if c.literal(i) == LITERAL_ZERO and i not in not_gate:
                    not_gate[i] = len(gates)
                    gates.append(Gate(f"x{i}_n", "not", (i,)))
        # One AND per distinct product (shared across outputs).
        and_gate: Dict[int, int] = {}
        products: List[Tuple[int, int]] = []  # (inbits, outbits-union)
        order: Dict[int, int] = {}
        for c in cover:
            if c.is_empty or c.outbits == 0:
                continue
            if c.inbits not in order:
                order[c.inbits] = len(products)
                products.append((c.inbits, c.outbits))
            else:
                k = order[c.inbits]
                products[k] = (c.inbits, products[k][1] | c.outbits)
        const1 = None
        for k, (inbits, _) in enumerate(products):
            cube = Cube(n, inbits, 1, 1)
            fanin: List[int] = []
            for i in range(n):
                lit = cube.literal(i)
                if lit == LITERAL_ONE:
                    fanin.append(i)
                elif lit == LITERAL_ZERO:
                    fanin.append(not_gate[i])
            if not fanin:
                if const1 is None:
                    const1 = len(gates)
                    gates.append(Gate("const1", "const1"))
                and_gate[inbits] = const1
            else:
                and_gate[inbits] = len(gates)
                gates.append(Gate(f"p{k}", "and", tuple(fanin)))
        const0 = None
        outputs: List[int] = []
        for j in range(cover.n_outputs):
            fanin = [
                and_gate[inbits]
                for inbits, outbits in products
                if (outbits >> j) & 1
            ]
            if not fanin:
                if const0 is None:
                    const0 = len(gates)
                    gates.append(Gate("const0", "const0"))
                outputs.append(const0)
            elif len(fanin) == 1:
                outputs.append(fanin[0])
            else:
                outputs.append(len(gates))
                gates.append(Gate(f"f{j}", "or", tuple(fanin)))
        return cls(n, gates, outputs, name=name)

    def as_cover(self) -> Cover:
        """Invert :meth:`from_cover` for any two-level-shaped netlist.

        Each output must be a ``const``, an input literal (possibly
        through NOT gates), an AND of literals, or an OR of such terms.
        Raises :class:`NetlistError` for genuinely multi-level netlists.
        """
        n, n_out = self.n_inputs, self.n_outputs

        def literal_of(i: int) -> Tuple[int, int]:
            """Resolve gate ``i`` to ``(input index, phase)`` through NOTs."""
            phase = 1
            while self.gates[i].op == "not":
                phase = 1 - phase
                i = self.gates[i].fanin[0]
            if self.gates[i].op != "input":
                raise NetlistError(
                    f"{self.name}: gate {self.gates[i].name!r} is not a "
                    "literal; netlist is not two-level"
                )
            return i, phase

        def product_of(i: int) -> Optional[int]:
            """The inbits of gate ``i`` viewed as a product, else None."""
            g = self.gates[i]
            if g.op == "const1":
                return Cube.from_string("-" * n).inbits if n else 0
            if g.op in ("input", "not"):
                var, phase = literal_of(i)
                code = LITERAL_ONE if phase else LITERAL_ZERO
                cube = Cube.from_string("-" * n) if n else Cube(0, 0)
                return cube.with_literal(var, code).inbits
            if g.op == "and":
                cube = Cube.from_string("-" * n)
                for f in g.fanin:
                    var, phase = literal_of(f)
                    code = LITERAL_ONE if phase else LITERAL_ZERO
                    have = cube.literal(var)
                    if have != LITERAL_DC and have != code:
                        return None  # x AND NOT x: empty product
                    cube = cube.with_literal(var, code)
                return cube.inbits
            return None

        by_inbits: Dict[int, int] = {}
        for j, o in enumerate(self.outputs):
            g = self.gates[o]
            if g.op == "const0":
                continue
            terms = g.fanin if g.op == "or" else (o,)
            for t in terms:
                p = product_of(t)
                if p is None:
                    if self.gates[t].op == "or":
                        raise NetlistError(
                            f"{self.name}: nested OR under output {j}; "
                            "netlist is not two-level"
                        )
                    continue  # empty product contributes nothing
                by_inbits[p] = by_inbits.get(p, 0) | (1 << j)
        cover = Cover(n, n_outputs=n_out)
        for inbits in sorted(by_inbits):
            cover.append(Cube(n, inbits, by_inbits[inbits], n_out))
        return cover

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, inputs={self.n_inputs}, "
            f"gates={self.num_gates}, outputs={self.n_outputs}, "
            f"depth={self.depth})"
        )
