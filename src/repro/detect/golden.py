"""The frozen detection fixture: ``data/golden_detect.json``.

Mirrors the golden-pipeline idiom: one deterministic payload builder
shared by ``scripts/detect_run.py --freeze-golden`` (which writes the
file) and ``tests/test_golden_detect.py`` (which rebuilds it and demands
byte identity).  The payload freezes, for every Figure 8 benchmark, the
detector's verdict profile on the Espresso-HF cover and on the ``u(f)``
rewrite — plus the paper's worked Figure 1 example, where the 4-cube
unconstrained cover's hazard *witnesses* are pinned verbatim.

Determinism: detection runs under a fixed seed and point cap, covers
come from the deterministic minimizer, and JSON is serialized with
sorted keys by the writers — so any byte diff is a real behavior change
in the detector, the transform, or the minimizer.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.figure1 import figure1_instance, minimum_plain_cover
from repro.bm.benchmarks import BENCHMARKS, build_benchmark
from repro.detect.detector import DetectionReport, DetectOptions, detect_cover
from repro.hf import espresso_hf
from repro.transform.uf import transform_instance

#: Detection knobs pinned into the fixture.
GOLDEN_SEED = 2026
GOLDEN_MAX_POINTS = 243  # 3^5


def _options() -> DetectOptions:
    return DetectOptions(max_points=GOLDEN_MAX_POINTS, seed=GOLDEN_SEED)


def _summary(report: DetectionReport) -> Dict[str, object]:
    by_status: Dict[str, int] = {}
    for v in report.verdicts:
        by_status[v.status] = by_status.get(v.status, 0) + 1
    return {
        "hazard_free": report.hazard_free,
        "verdicts": len(report.verdicts),
        "by_status": dict(sorted(by_status.items())),
        "points_checked": sum(v.points_checked for v in report.verdicts),
    }


def _witnesses(report: DetectionReport, limit: int = 4) -> List[Dict[str, object]]:
    out = []
    for v in report.hazards + report.mismatches:
        if v.witness is not None:
            out.append(v.witness.as_dict())
        if len(out) >= limit:
            break
    return out


def golden_detect_payload() -> Dict[str, object]:
    """Build the full fixture payload (deterministic; ~5 s)."""
    circuits: Dict[str, Dict[str, object]] = {}
    for spec in BENCHMARKS:
        inst = build_benchmark(spec.name)
        hf_cover = espresso_hf(inst).cover
        hf_report = detect_cover(inst, hf_cover, _options())
        uf = transform_instance(inst)
        uf_report = detect_cover(inst, uf.cover, _options(), name=uf.netlist.name)
        circuits[spec.name] = {
            "espresso_hf": _summary(hf_report),
            "espresso_hf_cubes": len(hf_cover.cubes),
            "uf": _summary(uf_report),
            "uf_cubes": uf.num_cubes,
            "uf_depth": uf.depth,
        }
    fig1 = figure1_instance()
    plain = minimum_plain_cover(fig1)
    plain_report = detect_cover(fig1, plain, _options(), name="figure1-plain")
    hf_cover = espresso_hf(fig1).cover
    hf_report = detect_cover(fig1, hf_cover, _options(), name="figure1-hf")
    return {
        "suite": "espresso-hf-golden-detect",
        "seed": GOLDEN_SEED,
        "max_points": GOLDEN_MAX_POINTS,
        "circuits": circuits,
        "figure1": {
            "hazard_free_cover": _summary(hf_report),
            "plain_cover": _summary(plain_report),
            "plain_witnesses": _witnesses(plain_report),
        },
    }
