"""Gate-level hazard detection for arbitrary AND/OR/NOT netlists.

The "check my circuit" workload (ROADMAP item 1): where the rest of the
repository minimizes covers *we* produce, this package judges circuits
*anyone* brings:

* :mod:`repro.detect.netlist` — the multi-level :class:`Netlist` IR with
  topological binary and Kleene-ternary evaluation, generalizing the
  two-level :class:`~repro.simulate.network.SopNetwork`;
* :mod:`repro.detect.ternary` — ternary points, the hazard-derivative
  chain rule (Ikenmeyer et al.), and cover-based function-stability
  checks;
* :mod:`repro.detect.detector` — per-transition hazard verdicts with
  concrete witnesses, exhaustive and budgeted-sampling modes;
* :mod:`repro.detect.nlformat` — the ``.net`` text exchange format;
* :mod:`repro.detect.mutate` — defect injection for oracle-sensitivity
  testing.

See ``docs/DETECTION.md`` for the hazard model and its exact
relationship to the Theorem 2.11 verifier and the Monte-Carlo
simulator.
"""

from repro.detect.detector import (
    DetectionReport,
    DetectOptions,
    HazardWitness,
    STATUS_CLEAN,
    STATUS_HAZARD,
    STATUS_MISMATCH,
    STATUS_SKIPPED,
    STATUS_UNCONSTRAINED,
    TransitionVerdict,
    detect_cover,
    detect_netlist,
)
from repro.detect.mutate import (
    NETLIST_DEFECTS,
    NetlistDefect,
    defect_decorator,
)
from repro.detect.netlist import Gate, Netlist, NetlistError
from repro.detect.nlformat import format_netlist, parse_netlist
from repro.detect.ternary import (
    derivative_gates,
    derivative_point,
    parse_point,
    point_cube,
    point_string,
    stable_value,
    stable_value_brute,
)

__all__ = [
    "Gate",
    "Netlist",
    "NetlistError",
    "parse_netlist",
    "format_netlist",
    "DetectOptions",
    "DetectionReport",
    "TransitionVerdict",
    "HazardWitness",
    "detect_netlist",
    "detect_cover",
    "STATUS_CLEAN",
    "STATUS_HAZARD",
    "STATUS_MISMATCH",
    "STATUS_SKIPPED",
    "STATUS_UNCONSTRAINED",
    "derivative_gates",
    "derivative_point",
    "point_cube",
    "point_string",
    "parse_point",
    "stable_value",
    "stable_value_brute",
    "NETLIST_DEFECTS",
    "NetlistDefect",
    "defect_decorator",
]
