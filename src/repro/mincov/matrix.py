"""Bitmask-encoded covering matrix with the classic reduction rules."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro._compat import popcount


class CoveringMatrix:
    """A unate covering problem: choose columns so every row has a chosen column.

    Rows and columns are referred to by their original indices throughout, so
    reductions never invalidate caller-side identifiers.  Internally each row
    is a bitmask over columns and each column a bitmask over rows.
    """

    def __init__(self, rows: Sequence[Iterable[int]], n_cols: int, weights: Optional[Sequence[int]] = None):
        self.n_cols = n_cols
        if weights is None:
            self.weights = [1] * n_cols
        else:
            if len(weights) != n_cols:
                raise ValueError("weights length must equal n_cols")
            self.weights = list(weights)
        self.row_masks: Dict[int, int] = {}
        self.col_masks: Dict[int, int] = {j: 0 for j in range(n_cols)}
        for i, cols in enumerate(rows):
            mask = 0
            for j in cols:
                if not 0 <= j < n_cols:
                    raise ValueError(f"column index {j} out of range")
                mask |= 1 << j
                self.col_masks[j] |= 1 << i
            self.row_masks[i] = mask
        # Columns covering no row are useless; keep them but they never win.

    # ------------------------------------------------------------------

    def copy(self) -> "CoveringMatrix":
        clone = CoveringMatrix.__new__(CoveringMatrix)
        clone.n_cols = self.n_cols
        clone.weights = self.weights  # shared, never mutated
        clone.row_masks = dict(self.row_masks)
        clone.col_masks = dict(self.col_masks)
        return clone

    @property
    def n_active_rows(self) -> int:
        return len(self.row_masks)

    @property
    def n_active_cols(self) -> int:
        return len(self.col_masks)

    def is_solved(self) -> bool:
        return not self.row_masks

    def has_infeasible_row(self) -> bool:
        active_cols = 0
        for j in self.col_masks:
            active_cols |= 1 << j
        return any((mask & active_cols) == 0 for mask in self.row_masks.values())

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def select_column(self, j: int) -> None:
        """Choose column ``j``: delete it and every row it covers."""
        rows_covered = self.col_masks.pop(j)
        for i in list(self.row_masks):
            if (rows_covered >> i) & 1:
                self._delete_row(i)

    def delete_column(self, j: int) -> None:
        """Remove column ``j`` without covering anything."""
        rows_touched = self.col_masks.pop(j)
        bit = 1 << j
        for i in list(self.row_masks):
            if (rows_touched >> i) & 1:
                self.row_masks[i] &= ~bit

    def _delete_row(self, i: int) -> None:
        mask = self.row_masks.pop(i)
        bit = 1 << i
        while mask:
            low = mask & -mask
            j = low.bit_length() - 1
            mask ^= low
            if j in self.col_masks:
                self.col_masks[j] &= ~bit

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------

    def reduce(self) -> Optional[List[int]]:
        """Apply essential-column, row-dominance and column-dominance rules
        to a fixpoint.

        Returns the list of essential columns selected along the way, or
        ``None`` if an uncoverable row was exposed (infeasible problem).
        """
        essentials: List[int] = []
        changed = True
        while changed:
            changed = False
            if self.has_infeasible_row():
                return None
            # Essential columns: a row covered by exactly one active column.
            for i, mask in list(self.row_masks.items()):
                if i not in self.row_masks:
                    continue
                live = mask & self._active_col_mask()
                if live and (live & (live - 1)) == 0:
                    j = live.bit_length() - 1
                    essentials.append(j)
                    self.select_column(j)
                    changed = True
            if self._row_dominance():
                changed = True
            if self._column_dominance():
                changed = True
        return essentials

    def _active_col_mask(self) -> int:
        mask = 0
        for j in self.col_masks:
            mask |= 1 << j
        return mask

    def _row_dominance(self) -> bool:
        """Delete rows whose column set is a superset of another row's."""
        changed = False
        items = sorted(self.row_masks.items(), key=lambda kv: popcount(kv[1]))
        active = self._active_col_mask()
        for idx, (i, mask_i) in enumerate(items):
            if i not in self.row_masks:
                continue
            live_i = mask_i & active
            for k, mask_k in items[idx + 1 :]:
                if k not in self.row_masks or i not in self.row_masks:
                    continue
                live_k = mask_k & active
                if live_i & live_k == live_i and live_i != live_k:
                    # Row k's options are a strict superset: k is dominated.
                    self._delete_row(k)
                    changed = True
                elif live_i == live_k and i != k:
                    self._delete_row(k)
                    changed = True
        return changed

    def _column_dominance(self) -> bool:
        """Delete columns dominated by a cheaper-or-equal column covering more."""
        changed = False
        cols = sorted(self.col_masks.items(), key=lambda kv: -popcount(kv[1]))
        for idx, (j, rows_j) in enumerate(cols):
            if j not in self.col_masks:
                continue
            for k, rows_k in cols:
                if k == j or k not in self.col_masks or j not in self.col_masks:
                    continue
                if rows_k == 0 and rows_j == 0:
                    continue
                if (rows_k & rows_j) == rows_k and self.weights[j] <= self.weights[k]:
                    if rows_k == rows_j and self.weights[j] == self.weights[k] and j > k:
                        continue  # deterministic tie-break: keep the lower index
                    self.delete_column(k)
                    changed = True
        # Columns covering nothing can always go.
        for j, rows_j in list(self.col_masks.items()):
            if rows_j == 0:
                self.delete_column(j)
                changed = True
        return changed

    # ------------------------------------------------------------------
    # Bounds and branching hints
    # ------------------------------------------------------------------

    def independent_row_bound(self) -> Tuple[int, List[int]]:
        """Greedy maximal-independent-set lower bound (Espresso's MIS bound).

        Returns ``(bound, row_ids)`` where the rows are pairwise disjoint in
        their column sets; any cover needs at least one distinct column per
        independent row, so the sum of each row's cheapest column is a lower
        bound on the remaining cost.
        """
        chosen: List[int] = []
        used_cols = 0
        bound = 0
        for i, mask in sorted(self.row_masks.items(), key=lambda kv: popcount(kv[1])):
            live = mask & self._active_col_mask()
            if live & used_cols:
                continue
            chosen.append(i)
            used_cols |= live
            bound += min(
                (self.weights[j] for j in _bits(live)),
                default=0,
            )
        return bound, chosen

    def branch_row(self) -> Optional[int]:
        """The row to branch on: fewest live columns (hardest to cover)."""
        best = None
        best_count = None
        active = self._active_col_mask()
        for i, mask in self.row_masks.items():
            count = popcount(mask & active)
            if best_count is None or count < best_count:
                best, best_count = i, count
        return best

    def row_columns(self, i: int) -> List[int]:
        """Live columns covering row ``i``."""
        return list(_bits(self.row_masks[i] & self._active_col_mask()))

    def best_greedy_column(self) -> Optional[int]:
        """Column maximizing rows-covered per unit weight (greedy heuristic)."""
        best = None
        best_key = None
        for j, rows_j in self.col_masks.items():
            covered = popcount(rows_j)
            if covered == 0:
                continue
            key = (covered / self.weights[j], covered, -j)
            if best_key is None or key > best_key:
                best, best_key = j, key
        return best


def _bits(mask: int):
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low
