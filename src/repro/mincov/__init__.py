"""MINCOV: unate covering solver (exact branch-and-bound and greedy modes).

This is the reproduction of Espresso's MINCOV, used by IRREDUNDANT in both
minimizers and by the exact flows to solve the prime-implicant table.
"""

from repro.mincov.matrix import CoveringMatrix
from repro.mincov.solver import solve_mincov, CoveringExplosionError

__all__ = ["CoveringMatrix", "solve_mincov", "CoveringExplosionError"]
