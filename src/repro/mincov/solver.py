"""Branch-and-bound and greedy solvers over :class:`CoveringMatrix`."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Set

from repro.mincov.matrix import CoveringMatrix
from repro._compat import popcount


class CoveringExplosionError(RuntimeError):
    """Raised when the exact solver exceeds its node budget.

    Mirrors the paper's observation that the exact flow's covering step "was
    too large" for pscsi-pscsi: the harness treats this as a failed exact run.
    """


def solve_mincov(
    rows: Sequence[Iterable[int]],
    n_cols: int,
    weights: Optional[Sequence[int]] = None,
    heuristic: bool = False,
    node_limit: Optional[int] = None,
    stats: Optional[Dict[str, int]] = None,
) -> Optional[Set[int]]:
    """Solve the unate covering problem.

    ``rows[i]`` lists the columns that cover row ``i``.  Returns a set of
    selected column indices of minimum total weight (exact mode) or a good
    small cover (heuristic mode), or ``None`` when some row is uncoverable.
    ``node_limit`` bounds branch-and-bound nodes; exceeding it raises
    :class:`CoveringExplosionError`.  When ``stats`` is given, the number of
    branch-and-bound nodes explored is written to ``stats["nodes"]`` (0 in
    heuristic mode).
    """
    matrix = CoveringMatrix(rows, n_cols, weights)
    if heuristic:
        if stats is not None:
            stats["nodes"] = 0
        return _solve_greedy(matrix)
    solver = _BranchAndBound(matrix, node_limit)
    try:
        return solver.solve()
    finally:
        if stats is not None:
            stats["nodes"] = solver.nodes


def _solve_greedy(matrix: CoveringMatrix) -> Optional[Set[int]]:
    chosen: Set[int] = set()
    essentials = matrix.reduce()
    if essentials is None:
        return None
    chosen.update(essentials)
    while not matrix.is_solved():
        j = matrix.best_greedy_column()
        if j is None:
            return None
        chosen.add(j)
        matrix.select_column(j)
        essentials = matrix.reduce()
        if essentials is None:
            return None
        chosen.update(essentials)
    return chosen


class _BranchAndBound:
    def __init__(self, matrix: CoveringMatrix, node_limit: Optional[int]):
        self.root = matrix
        self.node_limit = node_limit
        self.nodes = 0
        self.best: Optional[Set[int]] = None
        self.best_cost = float("inf")
        self.weights = matrix.weights

    def solve(self) -> Optional[Set[int]]:
        # Seed the incumbent with the greedy solution for tighter pruning.
        greedy = _solve_greedy(self.root.copy())
        if greedy is not None:
            self.best = set(greedy)
            self.best_cost = sum(self.weights[j] for j in greedy)
        self._recurse(self.root.copy(), set(), 0)
        return set(self.best) if self.best is not None else None

    def _cost(self, cols: Iterable[int]) -> int:
        return sum(self.weights[j] for j in cols)

    def _recurse(self, matrix: CoveringMatrix, chosen: Set[int], cost: int) -> None:
        self.nodes += 1
        if self.node_limit is not None and self.nodes > self.node_limit:
            raise CoveringExplosionError(
                f"covering search exceeded {self.node_limit} nodes"
            )
        essentials = matrix.reduce()
        if essentials is None:
            return
        chosen = chosen | set(essentials)
        cost += self._cost(essentials)
        if cost >= self.best_cost:
            return
        if matrix.is_solved():
            self.best = set(chosen)
            self.best_cost = cost
            return
        bound, _ = matrix.independent_row_bound()
        if cost + bound >= self.best_cost:
            return
        row = matrix.branch_row()
        if row is None:  # pragma: no cover - solved case handled above
            return
        columns = sorted(
            matrix.row_columns(row),
            key=lambda j: (-popcount(matrix.col_masks[j]), self.weights[j], j),
        )
        if not columns:
            return
        for j in columns:
            child = matrix.copy()
            child.select_column(j)
            self._recurse(child, chosen | {j}, cost + self.weights[j])
        # Not selecting any column of `row` can never satisfy it: no third branch.
