"""Espresso-II EXPAND: enlarge each cube into a prime, absorbing others."""

from __future__ import annotations

from typing import List, Optional

from repro.cubes.cube import Cube, LITERAL_DC
from repro.cubes.cover import Cover


def cube_clear_of(cube: Cube, off: Cover) -> bool:
    """True iff ``cube`` intersects no cube of the OFF-set cover."""
    return not any(cube.intersects_input(o) for o in off)


def expand_cover(cover: Cover, off: Cover) -> Cover:
    """Expand every cube of ``cover`` against the OFF-set ``off``.

    Primary goal (as in Espresso-II): grow each cube so that it swallows as
    many other cubes of the cover as possible, shrinking the cover's
    cardinality.  Secondary goal: raise remaining literals until the cube is
    prime.  The cover's function can only grow, never beyond ON∪DC (every
    expansion step is checked against the OFF-set).
    """
    order = sorted(
        range(len(cover.cubes)), key=lambda i: (cover.cubes[i].num_dc(), cover.cubes[i].inbits)
    )
    cubes: List[Optional[Cube]] = list(cover.cubes)
    for idx in order:
        cube = cubes[idx]
        if cube is None:
            continue
        cube = _expand_one(cube, idx, cubes, off)
        cubes[idx] = cube
    out = Cover(cover.n_inputs, (), cover.n_outputs)
    out.cubes = [c for c in cubes if c is not None]
    return out


def _expand_one(cube: Cube, idx: int, cubes: List[Optional[Cube]], off: Cover) -> Cube:
    # Phase 1: greedily absorb whole cubes ("feasibly covered" in Espresso).
    while True:
        best_j = None
        best_gain = 0
        best_sup = None
        for j, other in enumerate(cubes):
            if other is None or j == idx or cube.contains(other):
                continue
            sup = cube.supercube(other)
            if not cube_clear_of(sup, off):
                continue
            gain = sum(
                1
                for k, d in enumerate(cubes)
                if d is not None and k != idx and sup.contains(d)
            )
            if gain > best_gain:
                best_gain, best_j, best_sup = gain, j, sup
        if best_sup is None:
            break
        cube = best_sup
        for k in range(len(cubes)):
            if k != idx and cubes[k] is not None and cube.contains(cubes[k]):
                cubes[k] = None
    # Phase 2: raise single literals until prime.
    cube = expand_to_prime(cube, off)
    return cube


def expand_to_prime(cube: Cube, off: Cover) -> Cube:
    """Raise specified literals one at a time while the cube stays OFF-free."""
    changed = True
    while changed:
        changed = False
        for i in range(cube.n_inputs):
            if cube.literal(i) == LITERAL_DC:
                continue
            raised = cube.with_literal(i, LITERAL_DC)
            if cube_clear_of(raised, off):
                cube = raised
                changed = True
    return cube
