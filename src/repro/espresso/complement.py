"""Unate-recursive complementation (Espresso's COMPLEMENT operator)."""

from __future__ import annotations


from repro.cubes.cube import Cube, LITERAL_DC, LITERAL_ONE, LITERAL_ZERO, full_input_mask
from repro.cubes.cover import Cover
from repro.cubes.containment import minimize_scc
from repro.espresso.unate import select_binate_var, select_active_var


def complement_cube(cube: Cube) -> Cover:
    """De Morgan complement of a single cube (one cube per specified literal).

    Output parts are ignored; the result is a single-output-style cover of
    the input-space complement.
    """
    out = Cover(cube.n_inputs, (), cube.n_outputs)
    full_out = (1 << cube.n_outputs) - 1
    for i in range(cube.n_inputs):
        lit = cube.literal(i)
        if lit == LITERAL_DC:
            continue
        flipped = (~lit) & 3
        if flipped == 0:
            # EMPTY literal: the cube is empty, its complement is universal.
            return Cover(cube.n_inputs, [Cube.full(cube.n_inputs, cube.n_outputs)], cube.n_outputs)
        out.append(Cube.full(cube.n_inputs, cube.n_outputs).with_literal(i, flipped))
    if cube.is_empty and not out.cubes:
        out.append(Cube.full(cube.n_inputs, cube.n_outputs))
    return out


def complement(cover: Cover) -> Cover:
    """The complement of the cover's input-space union, as a cover.

    Output parts are ignored (single-output semantics); for multi-output
    functions complement each output's restriction separately.  Uses the
    unate-recursive paradigm with merge-by-containment at each node, followed
    by single-cube-containment minimization.
    """
    result = _complement_rec(cover)
    return minimize_scc(result)


def _complement_rec(cover: Cover) -> Cover:
    n = cover.n_inputs
    full = full_input_mask(n)
    live = [c for c in cover if not c.is_empty]
    if not live:
        return Cover(n, [Cube.full(n, cover.n_outputs)], cover.n_outputs)
    if any(c.inbits == full for c in live):
        return Cover(n, (), cover.n_outputs)
    if len(live) == 1:
        return complement_cube(live[0])
    work = Cover(n, (), cover.n_outputs)
    work.cubes = live
    var = select_binate_var(work)
    if var is None:
        var = select_active_var(work)
        if var is None:  # pragma: no cover - all-DC rows caught above
            return Cover(n, (), cover.n_outputs)
    comp0 = _complement_rec(_lit_cofactor(work, var, 0))
    comp1 = _complement_rec(_lit_cofactor(work, var, 1))
    out = Cover(n, (), cover.n_outputs)
    # Merge: x'·comp0 + x·comp1, lifting cubes that appear on both sides.
    ones = {c.inbits for c in comp1}
    for c in comp0:
        if c.inbits in ones:
            out.append(c)  # appears in both branches: keep free of the split var
        else:
            out.append(c.with_literal(var, LITERAL_ZERO))
    zeros = {c.inbits for c in comp0}
    for c in comp1:
        if c.inbits not in zeros:
            out.append(c.with_literal(var, LITERAL_ONE))
    return out


def _lit_cofactor(cover: Cover, var: int, value: int) -> Cover:
    lit = LITERAL_ONE if value else LITERAL_ZERO
    point = Cube.full(cover.n_inputs, cover.n_outputs).with_literal(var, lit)
    return cover.cofactor(point)
