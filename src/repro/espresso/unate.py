"""Unateness analysis and binate splitting-variable selection."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cubes.cube import LITERAL_DC, LITERAL_ONE, LITERAL_ZERO
from repro.cubes.cover import Cover


def column_counts(cover: Cover) -> List[Tuple[int, int, int]]:
    """Per input variable, the counts ``(n_zero, n_one, n_dc)`` over all cubes."""
    counts = [[0, 0, 0] for _ in range(cover.n_inputs)]
    for cube in cover:
        for i in range(cover.n_inputs):
            lit = cube.literal(i)
            if lit == LITERAL_ZERO:
                counts[i][0] += 1
            elif lit == LITERAL_ONE:
                counts[i][1] += 1
            elif lit == LITERAL_DC:
                counts[i][2] += 1
    return [tuple(c) for c in counts]


def is_unate(cover: Cover) -> bool:
    """True iff no input variable appears in both phases in the cover."""
    for n_zero, n_one, _ in column_counts(cover):
        if n_zero and n_one:
            return False
    return True


def select_binate_var(cover: Cover) -> Optional[int]:
    """The "most binate" input variable (Espresso's splitting heuristic).

    Chooses the variable appearing in both phases with the largest number of
    cubes in the minority phase (ties: most total appearances, then lowest
    index).  Returns ``None`` when the cover is unate.
    """
    best: Optional[int] = None
    best_key = None
    for i, (n_zero, n_one, _) in enumerate(column_counts(cover)):
        if n_zero and n_one:
            key = (min(n_zero, n_one), n_zero + n_one)
            if best_key is None or key > best_key:
                best_key = key
                best = i
    return best


def select_active_var(cover: Cover) -> Optional[int]:
    """Any variable that is not don't-care in every cube (``None`` if all DC)."""
    for i, (n_zero, n_one, _) in enumerate(column_counts(cover)):
        if n_zero or n_one:
            return i
    return None
