"""Generation of all prime implicants (single- and multi-output).

Single-output primes use the recursive Shannon-expansion method with
merge-by-consensus at each node and a unate terminal case (the maximal
cubes of a unate cover are exactly the primes of its function).

Multiple-output primes — pairs ``(c, O)`` of an input cube and an output
set, maximal under simultaneous containment — are built from the
single-output primes: every multi-output prime's input part is an
intersection of single-output primes (one per output in ``O``), so the
closure of the single-output primes under pairwise
(input-intersection, output-union) merges contains every implicant's
dominator, and its maximal elements are exactly the primes.  The closure is
keyed by input part with output sets accumulated by union, which keeps it
compact in practice; it can still explode combinatorially — that is the
exact method's first bottleneck (paper §5) — so both a cube budget and a
wall-clock deadline are enforced.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.cubes.cube import Cube, LITERAL_ONE, LITERAL_ZERO, empty_pairs, full_input_mask
from repro.cubes.cover import Cover
from repro.cubes.containment import maximal_cubes
from repro.espresso.unate import select_binate_var


class PrimeExplosionError(RuntimeError):
    """Raised when prime generation exceeds its cube budget or deadline.

    The exact hazard-free minimization flow has exponential worst-case
    behaviour in each of its three stages (paper §5); this error is how the
    benchmark harness observes "could not generate all prime implicants"
    (the paper's stetson-p1 failure mode).
    """


def all_primes(
    cover: Cover, limit: Optional[int] = None, deadline: Optional[float] = None
) -> List[Cube]:
    """All prime implicants of the function whose ON∪DC union is ``cover``.

    Output parts are ignored (single-output semantics).  ``limit`` bounds
    the number of live cubes at any recursion node; ``deadline`` is an
    absolute :func:`time.perf_counter` timestamp.  Exceeding either raises
    :class:`PrimeExplosionError`.
    """
    flat = Cover(cover.n_inputs, (), 1)
    flat.cubes = [Cube(cover.n_inputs, c.inbits, 1, 1) for c in cover if not c.is_empty]
    return _primes_rec(flat, limit, deadline)


def all_primes_multi(
    cover: Cover, limit: Optional[int] = None, deadline: Optional[float] = None
) -> List[Cube]:
    """All multiple-output prime implicants of a multi-output cover.

    Cubes in the result carry the (maximal) output set in ``outbits``.
    ``limit`` bounds the number of distinct input parts in the closure pool.
    """
    n, m = cover.n_inputs, cover.n_outputs
    if m == 1:
        return all_primes(cover, limit=limit, deadline=deadline)
    pool: Dict[int, int] = {}
    for j in range(m):
        restricted = Cover(n, (), 1)
        restricted.cubes = [
            Cube(n, c.inbits, 1, 1)
            for c in cover
            if c.has_output(j) and not c.is_empty
        ]
        if not restricted.cubes:
            continue
        for p in all_primes(restricted, limit=limit, deadline=deadline):
            pool[p.inbits] = pool.get(p.inbits, 0) | (1 << j)
    # Closure under (input-intersection, output-union) merges.
    frontier = list(pool.items())
    while frontier:
        _check(len(pool), limit, deadline)
        fresh: Dict[int, int] = {}
        items = list(pool.items())
        for row, (in_a, out_a) in enumerate(frontier):
            if row % 64 == 0:
                _check(len(pool) + len(fresh), limit, deadline)
            for in_b, out_b in items:
                union = out_a | out_b
                if union == out_a or union == out_b:
                    continue  # no output gained: merged cube is dominated
                meet = in_a & in_b
                if empty_pairs(meet, n):
                    continue
                have = pool.get(meet, 0) | fresh.get(meet, 0)
                if union | have != have:
                    fresh[meet] = have | union
        frontier = []
        for inbits, outbits in fresh.items():
            prev = pool.get(inbits, 0)
            if outbits | prev != prev:
                pool[inbits] = prev | outbits
                frontier.append((inbits, pool[inbits]))
    cubes = [Cube(n, inbits, outbits, m) for inbits, outbits in pool.items()]
    return maximal_cubes(cubes)


def _check(size: int, limit: Optional[int], deadline: Optional[float]) -> None:
    if limit is not None and size > limit:
        raise PrimeExplosionError(f"prime generation exceeded {limit} cubes")
    if deadline is not None and time.perf_counter() > deadline:
        raise PrimeExplosionError("prime generation exceeded its deadline")


def _primes_rec(
    cover: Cover, limit: Optional[int], deadline: Optional[float]
) -> List[Cube]:
    n = cover.n_inputs
    live = [c for c in cover if not c.is_empty]
    if not live:
        return []
    _check(len(live), limit, deadline)
    full = full_input_mask(n)
    if any(c.inbits == full for c in live):
        # Tautology: the universal cube is the only prime.
        return [Cube(n, full, live[0].outbits, cover.n_outputs)]
    work = Cover(n, (), cover.n_outputs)
    work.cubes = live
    var = select_binate_var(work)
    if var is None:
        # Unate cover: its maximal cubes are exactly the primes.
        return maximal_cubes(live)
    p0 = _primes_rec(_lit_cofactor(work, var, 0), limit, deadline)
    p1 = _primes_rec(_lit_cofactor(work, var, 1), limit, deadline)
    candidates: List[Cube] = []
    ones_keys = {c.inbits for c in p1}
    for c in p0:
        if c.inbits in ones_keys:
            candidates.append(c)
        else:
            candidates.append(c.with_literal(var, LITERAL_ZERO))
    zeros_keys = {c.inbits for c in p0}
    for c in p1:
        if c.inbits not in zeros_keys:
            candidates.append(c.with_literal(var, LITERAL_ONE))
    for a in p0:
        for b in p1:
            meet = a.intersect(b)
            if not meet.is_empty:
                candidates.append(meet)
    _check(len(candidates), limit, deadline)
    return maximal_cubes(candidates)


def _lit_cofactor(cover: Cover, var: int, value: int) -> Cover:
    lit = LITERAL_ONE if value else LITERAL_ZERO
    point = Cube.full(cover.n_inputs, cover.n_outputs).with_literal(var, lit)
    return cover.cofactor(point)
