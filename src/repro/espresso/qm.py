"""Quine-McCluskey exact minimization (small-n oracle) and exact two-level
minimization via all-primes + MINCOV.

These are the reference implementations used by the test suite to validate
the heuristic minimizers, and by the Figure 1 experiment to compute minimum
*non*-hazard-free covers.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Sequence

from repro.cubes.cube import Cube
from repro.cubes.cover import Cover
from repro.cubes.containment import maximal_cubes
from repro.espresso.primes import all_primes
from repro.mincov import solve_mincov


def quine_mccluskey(
    on_minterms: Iterable[int],
    dc_minterms: Iterable[int] = (),
    n_inputs: int = 0,
) -> List[Cube]:
    """All prime implicants by classic Quine-McCluskey minterm merging.

    Minterms are integers whose bit ``i`` is the value of input variable
    ``i``.  Exponential in ``n_inputs``; intended as a cross-check oracle.
    """
    on = set(on_minterms)
    dc = set(dc_minterms)
    if on & dc:
        raise ValueError("ON and DC minterm sets overlap")
    current = {Cube.from_index(n_inputs, m) for m in on | dc}
    primes: List[Cube] = []
    while current:
        merged_away = set()
        next_level = set()
        cubes = sorted(current)
        for a, b in itertools.combinations(cubes, 2):
            if a.input_distance(b) == 1:
                sup = a.supercube(b)
                if sup.num_minterms() == a.num_minterms() * 2:
                    next_level.add(sup)
                    merged_away.add(a)
                    merged_away.add(b)
        primes.extend(c for c in cubes if c not in merged_away)
        current = next_level
    return maximal_cubes(primes)


def exact_cover_from_primes(
    primes: Sequence[Cube],
    objects: Sequence[Cube],
    weights: Optional[Sequence[int]] = None,
    heuristic: bool = False,
) -> Optional[List[Cube]]:
    """Minimum-cost subset of ``primes`` covering every cube in ``objects``.

    An object is covered when a *single* selected prime contains it.  Returns
    ``None`` when some object is contained in no prime (no solution).
    """
    rows = []
    for obj in objects:
        cols = frozenset(j for j, p in enumerate(primes) if p.contains(obj))
        if not cols:
            return None
        rows.append(cols)
    chosen = solve_mincov(rows, len(primes), weights=weights, heuristic=heuristic)
    if chosen is None:
        return None
    return [primes[j] for j in sorted(chosen)]


def exact_minimize(
    on_cover: Cover,
    dc_cover: Optional[Cover] = None,
    heuristic_cover: bool = False,
) -> Cover:
    """Exact (minimum-cardinality) two-level minimization, single output.

    Generates all primes of ON∪DC, then solves the prime-implicant covering
    problem over the ON-set cubes with MINCOV.  ``heuristic_cover`` switches
    MINCOV to its greedy mode (Espresso's ``-Dmincov`` heuristic option).
    """
    n = on_cover.n_inputs
    union = Cover(n, (), 1)
    union.cubes = [Cube(n, c.inbits, 1, 1) for c in on_cover if not c.is_empty]
    if dc_cover is not None:
        union.cubes.extend(Cube(n, c.inbits, 1, 1) for c in dc_cover if not c.is_empty)
    if not union.cubes:
        return Cover(n, (), 1)
    primes = all_primes(union)
    # Cover every ON minterm: use the ON cubes split at prime boundaries.
    # Covering each ON *minterm* is required for exactness; enumerate the
    # fragments obtained by intersecting ON cubes with primes is unsound in
    # general, so fall back to minterm rows (bounded because exact_minimize
    # is only used as an oracle or on functions with few ON cubes).
    objects = _covering_objects(on_cover, primes)
    solution = exact_cover_from_primes(primes, objects)
    if solution is None:  # pragma: no cover - primes always cover the ON-set
        raise RuntimeError("internal error: ON-set not covered by its primes")
    return Cover(n, solution, 1)


def _covering_objects(on_cover: Cover, primes: Sequence[Cube]) -> List[Cube]:
    """Rows for the covering table: maximal ON fragments within single primes.

    Splitting each ON cube against prime boundaries is exact but can blow up;
    the classic, always-correct choice is one row per ON *minterm*.  We use
    minterm rows but deduplicate rows with identical prime membership, which
    keeps tables small in practice.
    """
    n = on_cover.n_inputs
    seen_signatures = {}
    objects: List[Cube] = []
    for c in on_cover:
        if c.is_empty:
            continue
        for vec in c.minterm_vectors():
            m = Cube.minterm(vec)
            sig = frozenset(j for j, p in enumerate(primes) if p.contains_input(m))
            if sig not in seen_signatures:
                seen_signatures[sig] = m
                objects.append(m)
    return objects
