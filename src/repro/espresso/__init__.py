"""Espresso-II substrate and baseline two-level minimizer.

Provides the classic unate-recursive operations (tautology, complement),
all-prime-implicant generation, the Quine-McCluskey exact oracle, and the
Espresso-II heuristic loop (EXPAND / REDUCE / IRREDUNDANT / ESSENTIALS /
LAST_GASP).  Espresso-HF (:mod:`repro.hf`) reuses this package's covering
solver and mirrors its loop structure under hazard-free constraints.
"""

from repro.espresso.tautology import tautology, cover_contains_cube
from repro.espresso.complement import complement, complement_cube
from repro.espresso.primes import all_primes, all_primes_multi
from repro.espresso.espresso import espresso, EspressoOptions
from repro.espresso.qm import quine_mccluskey, exact_minimize

__all__ = [
    "tautology",
    "cover_contains_cube",
    "complement",
    "complement_cube",
    "all_primes",
    "all_primes_multi",
    "espresso",
    "EspressoOptions",
    "quine_mccluskey",
    "exact_minimize",
]
