"""Espresso-II LAST_GASP: escape local minima with independent reductions."""

from __future__ import annotations

from typing import List, Optional

from repro.cubes.cube import Cube
from repro.cubes.cover import Cover
from repro.espresso.expand import cube_clear_of, expand_to_prime
from repro.espresso.irredundant import irredundant_cover
from repro.espresso.reduce_ import max_reduce


def last_gasp(cover: Cover, dc: Optional[Cover], off: Cover) -> Cover:
    """Try one more cover-size reduction after the inner loop converges.

    Every cube is *independently* maximally reduced (against all the other
    original cubes, not the partially reduced ones).  If the supercube of two
    reduced cubes is OFF-free, that merged prime can replace both; all such
    candidates are added and IRREDUNDANT picks a smaller cover if one exists.
    """
    reduced: List[Cube] = []
    for idx, cube in enumerate(cover.cubes):
        others = Cover(cover.n_inputs, (), cover.n_outputs)
        others.cubes = [c for k, c in enumerate(cover.cubes) if k != idx]
        if dc is not None:
            others.cubes = others.cubes + list(dc.cubes)
        r = max_reduce(cube, others)
        if r is not None:
            reduced.append(r)
    candidates: List[Cube] = []
    for i in range(len(reduced)):
        for j in range(i + 1, len(reduced)):
            sup = reduced[i].supercube(reduced[j])
            if cube_clear_of(sup, off):
                candidates.append(expand_to_prime(sup, off))
    if not candidates:
        return cover
    trial = cover.copy()
    trial.extend(candidates)
    trial = irredundant_cover(trial.deduplicate(), dc)
    return trial if len(trial) < len(cover) else cover
