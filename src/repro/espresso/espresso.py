"""The Espresso-II heuristic two-level minimizer (baseline, non-hazard-free).

This is the algorithm Espresso-HF is modelled on (paper §3.1): iterate
EXPAND / REDUCE / IRREDUNDANT until the cover stops shrinking, escape local
minima with LAST_GASP, and pull out essential primes early to shrink the
problem.  Single-output semantics; multi-output functions are minimized per
output by :func:`espresso_multi`.

Like Espresso-HF, the loop runs on the shared pass-pipeline framework
(:mod:`repro.pipeline`): the same :class:`~repro.pipeline.manager.PassManager`
and the same :class:`~repro.pipeline.base.FixedPoint` vocabulary drive both
minimizers, so the nested do/while structure is written once.  The baseline
has no guard runtime — no budget, no checked mode — so the corresponding
hooks are inert here and the driver still returns a plain
:class:`~repro.cubes.cover.Cover`.
"""

from __future__ import annotations

import warnings
from dataclasses import InitVar, dataclass
from typing import List, Optional

from repro.cubes.cube import Cube
from repro.cubes.cover import Cover
from repro.cubes.containment import minimize_scc
from repro.espresso.complement import complement
from repro.espresso.essential import essential_primes
from repro.espresso.expand import expand_cover
from repro.espresso.irredundant import irredundant_cover
from repro.espresso.lastgasp import last_gasp
from repro.espresso.reduce_ import reduce_cover
from repro.espresso.tautology import cover_contains_cube
from repro.pipeline import FixedPoint, PassManager, PipelineState, Step


@dataclass
class EspressoOptions:
    """Tuning knobs for the Espresso loop.

    ``max_outer_iterations`` caps the outer REDUCE/EXPAND/IRREDUNDANT +
    LAST_GASP loop, matching
    :attr:`repro.hf.espresso_hf.EspressoHFOptions.max_outer_iterations`.
    ``max_iterations`` is the deprecated pre-unification name and still
    works as a constructor argument and attribute alias.
    """

    use_essentials: bool = True
    use_last_gasp: bool = True
    max_outer_iterations: int = 20
    max_iterations: InitVar[Optional[int]] = None

    def __post_init__(self, max_iterations: Optional[int]) -> None:
        if max_iterations is not None:
            warnings.warn(
                "EspressoOptions.max_iterations is deprecated; use "
                "max_outer_iterations",
                DeprecationWarning,
                stacklevel=3,
            )
            self.max_outer_iterations = max_iterations


def _get_max_iterations(self: EspressoOptions) -> int:
    return self.max_outer_iterations


def _set_max_iterations(self: EspressoOptions, value: int) -> None:
    self.max_outer_iterations = value


# Read/write alias so code written against the old name keeps working.
EspressoOptions.max_iterations = property(
    _get_max_iterations, _set_max_iterations
)


class EspressoState(PipelineState):
    """Pipeline state of one single-output Espresso-II run.

    ``f`` is the working cover; ``working_dc`` the don't-care cover the
    loop operators see (the original DC-set plus extracted essential
    primes); ``essentials`` the extracted primes folded back in by the
    finalize pass.  ``snapshot_cubes`` stays ``None``: the baseline has no
    guard runtime, so there is nothing to degrade to.
    """

    def __init__(
        self,
        on: Cover,
        dc: Optional[Cover],
        off: Cover,
        options: EspressoOptions,
    ):
        super().__init__()
        self.on = on
        self.dc = dc
        self.off = off
        self.options = options
        self.f = on
        self.working_dc = (
            dc.copy() if dc is not None else Cover(on.n_inputs, (), on.n_outputs)
        )
        self.essentials: List[Cube] = []

    def measure(self) -> int:
        return len(self.f)

    def cover_size(self) -> int:
        return len(self.f)


class SccPass:
    """Single-cube containment minimization (Espresso's cheap cleanup).

    The initial application also decides emptiness: an empty ON-set stops
    the pipeline immediately, like the original driver's early return.
    """

    name = "scc"

    def __init__(self, stop_if_empty: bool = False):
        self.stop_if_empty = stop_if_empty

    def run(self, state: EspressoState):
        state.f = minimize_scc(state.f)
        if self.stop_if_empty and state.f.is_empty:
            state.stop = True
            state.stopped_early = True
        return state


class EspressoExpandPass:
    """EXPAND against the OFF-set."""

    name = "expand"

    def run(self, state: EspressoState):
        state.f = expand_cover(state.f, state.off)
        return state


class EspressoIrredundantPass:
    """IRREDUNDANT within ON ∪ working-DC."""

    name = "irredundant"

    def run(self, state: EspressoState):
        state.f = irredundant_cover(state.f, state.working_dc)
        return state


class EspressoReducePass:
    """REDUCE within ON ∪ working-DC."""

    name = "reduce"

    def run(self, state: EspressoState):
        state.f = reduce_cover(state.f, state.working_dc)
        return state


class EspressoEssentialsPass:
    """Extract essential primes and move them into the don't-care set.

    Essentials are computed against the *original* DC-set; once removed
    from the working cover they join ``working_dc`` so the loop operators
    may exploit (but never drop) them.
    """

    name = "essentials"

    def run(self, state: EspressoState):
        essentials = essential_primes(state.f, state.dc)
        if essentials:
            state.essentials = essentials
            keep = [c for c in state.f.cubes if c not in essentials]
            state.f = Cover(state.f.n_inputs, keep, state.f.n_outputs)
            state.working_dc.extend(essentials)
        return state


class EspressoLastGaspPass:
    """LAST_GASP: escape a local minimum via maximally-reduced cubes."""

    name = "last_gasp"

    def run(self, state: EspressoState):
        state.f = last_gasp(state.f, state.working_dc, state.off)
        return state


class FinalizePass:
    """Fold the essential primes back in and SCC-minimize the result."""

    name = "finalize"

    def run(self, state: EspressoState):
        f = state.f.copy()
        f.extend(state.essentials)
        state.f = minimize_scc(f)
        return state


def build_espresso_pipeline(options: EspressoOptions):
    """The Espresso-II loop as a pipeline spec.

    Same shape as the Espresso-HF spec (:func:`repro.hf.espresso_hf.
    build_hf_pipeline`): initial expand/irredundant, essentials, then the
    nested inner/outer fixed points, finalize.  The baseline neither
    charges a budget nor tracks convergence — it predates the paper's
    guarded-execution concerns and reports no status.
    """
    inner = FixedPoint(
        "loop",
        body=(
            Step(EspressoReducePass()),
            Step(EspressoExpandPass()),
            Step(SccPass()),
            Step(EspressoIrredundantPass()),
        ),
    )
    outer = FixedPoint(
        "outer",
        body=(
            inner,
            Step(
                EspressoLastGaspPass(),
                enabled=lambda s: s.options.use_last_gasp,
            ),
        ),
        max_rounds=options.max_outer_iterations,
    )
    return (
        Step(SccPass(stop_if_empty=True)),
        Step(EspressoExpandPass()),
        Step(SccPass()),
        Step(EspressoIrredundantPass()),
        Step(
            EspressoEssentialsPass(),
            enabled=lambda s: s.options.use_essentials,
        ),
        outer,
        Step(FinalizePass()),
    )


def espresso(
    on: Cover,
    dc: Optional[Cover] = None,
    off: Optional[Cover] = None,
    options: Optional[EspressoOptions] = None,
) -> Cover:
    """Minimize a single-output cover heuristically (Espresso-II).

    ``on`` is the initial ON-set cover; ``dc`` the optional don't-care cover;
    ``off`` the OFF-set (computed by complementation when omitted).  Returns
    a prime, irredundant cover of the ON-set within ON∪DC.
    """
    if on.n_outputs != 1:
        raise ValueError("espresso() is single-output; use espresso_multi()")
    options = options or EspressoOptions()
    if off is None:
        union = on.copy()
        if dc is not None:
            union.extend(dc.cubes)
        off = complement(union)
    state = EspressoState(on, dc, off, options)
    PassManager().run(build_espresso_pipeline(options), state)
    return state.f


def espresso_multi(
    on: Cover,
    dc: Optional[Cover] = None,
    options: Optional[EspressoOptions] = None,
) -> Cover:
    """Minimize a multi-output cover, one output at a time.

    Cubes with identical input parts across outputs are merged afterwards so
    shared AND terms are counted once, approximating true multi-output
    minimization (full multi-valued Espresso is outside this baseline's
    scope; Espresso-HF itself is natively multi-output).
    """
    merged: dict = {}
    for j in range(on.n_outputs):
        on_j = on.restrict_to_output(j)
        dc_j = dc.restrict_to_output(j) if dc is not None else None
        result = espresso(on_j, dc_j, options=options)
        for c in result:
            merged[c.inbits] = merged.get(c.inbits, 0) | (1 << j)
    out = Cover(on.n_inputs, (), on.n_outputs)
    for inbits, outbits in sorted(merged.items()):
        out.append(Cube(on.n_inputs, inbits, outbits, on.n_outputs))
    return out


def is_cover_of(candidate: Cover, on: Cover, dc: Optional[Cover] = None, off: Optional[Cover] = None) -> bool:
    """Check that ``candidate`` covers ``on`` and avoids the OFF-set.

    Used as a verification oracle by tests and the benchmark harness.
    """
    for c in on:
        if not cover_contains_cube(candidate, c):
            return False
    if off is None:
        union = on.copy()
        if dc is not None:
            union.extend(dc.cubes)
        off = complement(union)
    for c in candidate:
        if any(c.intersects_input(o) for o in off):
            return False
    return True
