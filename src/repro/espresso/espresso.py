"""The Espresso-II heuristic two-level minimizer (baseline, non-hazard-free).

This is the algorithm Espresso-HF is modelled on (paper §3.1): iterate
EXPAND / REDUCE / IRREDUNDANT until the cover stops shrinking, escape local
minima with LAST_GASP, and pull out essential primes early to shrink the
problem.  Single-output semantics; multi-output functions are minimized per
output by :func:`espresso_multi`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cubes.cube import Cube
from repro.cubes.cover import Cover
from repro.cubes.containment import minimize_scc
from repro.espresso.complement import complement
from repro.espresso.essential import essential_primes
from repro.espresso.expand import expand_cover
from repro.espresso.irredundant import irredundant_cover
from repro.espresso.lastgasp import last_gasp
from repro.espresso.reduce_ import reduce_cover
from repro.espresso.tautology import cover_contains_cube


@dataclass
class EspressoOptions:
    """Tuning knobs for the Espresso loop."""

    use_essentials: bool = True
    use_last_gasp: bool = True
    max_iterations: int = 20


def espresso(
    on: Cover,
    dc: Optional[Cover] = None,
    off: Optional[Cover] = None,
    options: Optional[EspressoOptions] = None,
) -> Cover:
    """Minimize a single-output cover heuristically (Espresso-II).

    ``on`` is the initial ON-set cover; ``dc`` the optional don't-care cover;
    ``off`` the OFF-set (computed by complementation when omitted).  Returns
    a prime, irredundant cover of the ON-set within ON∪DC.
    """
    if on.n_outputs != 1:
        raise ValueError("espresso() is single-output; use espresso_multi()")
    options = options or EspressoOptions()
    if off is None:
        union = on.copy()
        if dc is not None:
            union.extend(dc.cubes)
        off = complement(union)
    f = minimize_scc(on)
    if f.is_empty:
        return f
    f = expand_cover(f, off)
    f = minimize_scc(f)
    f = irredundant_cover(f, dc)

    essentials: List[Cube] = []
    working_dc = dc.copy() if dc is not None else Cover(on.n_inputs, (), on.n_outputs)
    if options.use_essentials:
        essentials = essential_primes(f, dc)
        if essentials:
            keep = [c for c in f.cubes if c not in essentials]
            f = Cover(on.n_inputs, keep, on.n_outputs)
            working_dc.extend(essentials)

    for _ in range(options.max_iterations):
        size_outer = len(f)
        while True:
            size_inner = len(f)
            f = reduce_cover(f, working_dc)
            f = expand_cover(f, off)
            f = minimize_scc(f)
            f = irredundant_cover(f, working_dc)
            if len(f) >= size_inner:
                break
        if options.use_last_gasp:
            f = last_gasp(f, working_dc, off)
        if len(f) >= size_outer:
            break

    f = f.copy()
    f.extend(essentials)
    f = minimize_scc(f)
    return f


def espresso_multi(
    on: Cover,
    dc: Optional[Cover] = None,
    options: Optional[EspressoOptions] = None,
) -> Cover:
    """Minimize a multi-output cover, one output at a time.

    Cubes with identical input parts across outputs are merged afterwards so
    shared AND terms are counted once, approximating true multi-output
    minimization (full multi-valued Espresso is outside this baseline's
    scope; Espresso-HF itself is natively multi-output).
    """
    merged: dict = {}
    for j in range(on.n_outputs):
        on_j = on.restrict_to_output(j)
        dc_j = dc.restrict_to_output(j) if dc is not None else None
        result = espresso(on_j, dc_j, options=options)
        for c in result:
            merged[c.inbits] = merged.get(c.inbits, 0) | (1 << j)
    out = Cover(on.n_inputs, (), on.n_outputs)
    for inbits, outbits in sorted(merged.items()):
        out.append(Cube(on.n_inputs, inbits, outbits, on.n_outputs))
    return out


def is_cover_of(candidate: Cover, on: Cover, dc: Optional[Cover] = None, off: Optional[Cover] = None) -> bool:
    """Check that ``candidate`` covers ``on`` and avoids the OFF-set.

    Used as a verification oracle by tests and the benchmark harness.
    """
    for c in on:
        if not cover_contains_cube(candidate, c):
            return False
    if off is None:
        union = on.copy()
        if dc is not None:
            union.extend(dc.cubes)
        off = complement(union)
    for c in candidate:
        if any(c.intersects_input(o) for o in off):
            return False
    return True
