"""Essential prime detection (Espresso's ESSEN step)."""

from __future__ import annotations

from typing import List, Optional

from repro.cubes.cube import Cube
from repro.cubes.cover import Cover
from repro.cubes.operations import consensus
from repro.espresso.tautology import cover_contains_cube


def essential_primes(cover: Cover, dc: Optional[Cover] = None) -> List[Cube]:
    """The essential primes among the cubes of a prime cover.

    Uses the classic consensus-based test (Brayton et al.): a prime ``p`` is
    essential iff it is *not* covered by ``H = ∪ cons(d, p)`` over all cubes
    ``d`` of the other primes plus the don't-care set, where ``cons(d, p)``
    is ``d`` itself when the cubes intersect, their consensus when they are
    at distance one, and empty otherwise.  ``H`` over-approximates the part
    of ``p`` reachable by other implicants, so a prime not covered by ``H``
    owns an ON-minterm no other prime can cover.

    The input cover must consist of primes for the result to be meaningful.
    """
    essentials: List[Cube] = []
    for idx, p in enumerate(cover.cubes):
        h = Cover(cover.n_inputs, (), cover.n_outputs)
        rest = [c for k, c in enumerate(cover.cubes) if k != idx]
        if dc is not None:
            rest = rest + list(dc.cubes)
        for d in rest:
            dist = d.input_distance(p)
            if dist == 0:
                h.append(d)
            elif dist == 1:
                cons = consensus(d, p)
                if cons is not None:
                    h.append(cons)
        if not cover_contains_cube(h, p):
            essentials.append(p)
    return essentials
