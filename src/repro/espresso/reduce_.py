"""Espresso-II REDUCE: maximally shrink each cube while keeping a cover."""

from __future__ import annotations

from typing import Optional

from repro.cubes.cube import Cube
from repro.cubes.cover import Cover
from repro.cubes.operations import supercube_of
from repro.espresso.complement import complement


def max_reduce(cube: Cube, others: Cover) -> Optional[Cube]:
    """The smallest cube containing ``cube``'s points not covered by ``others``.

    Returns ``None`` when ``others`` already covers ``cube`` entirely (the
    cube is redundant).  This is Espresso's maximal reduction: the smallest
    cube containing ``cube ∩ complement(others)``, computed through the
    cofactor identity ``cube ∖ G = cube ∩ ¬(G cofactored by cube)``.
    """
    g_cof = others.cofactor(cube)
    comp = complement(g_cof)
    pieces = []
    for c in comp:
        meet = c.intersect(cube)
        if not meet.is_empty:
            pieces.append(meet)
    if not pieces:
        return None
    return supercube_of(pieces)


def reduce_cover(cover: Cover, dc: Optional[Cover] = None) -> Cover:
    """Reduce every cube in turn (largest first), keeping the union a cover.

    Each cube is replaced by its maximal reduction against all *current*
    other cubes plus the don't-care set, so the overall ON-set coverage is
    preserved at every step.
    """
    order = sorted(
        range(len(cover.cubes)),
        key=lambda i: (-cover.cubes[i].num_dc(), cover.cubes[i].inbits),
    )
    cubes = list(cover.cubes)
    for idx in order:
        cube = cubes[idx]
        if cube is None:
            continue
        others = Cover(cover.n_inputs, (), cover.n_outputs)
        others.cubes = [c for k, c in enumerate(cubes) if c is not None and k != idx]
        if dc is not None:
            others.cubes = others.cubes + list(dc.cubes)
        cubes[idx] = max_reduce(cube, others)
    out = Cover(cover.n_inputs, (), cover.n_outputs)
    out.cubes = [c for c in cubes if c is not None]
    return out
