"""Unate-recursive tautology check (Espresso's TAUTOLOGY operator)."""

from __future__ import annotations

from repro.cubes.cube import Cube, LITERAL_ONE, LITERAL_ZERO, dc_pairs, full_input_mask
from repro.cubes.cover import Cover
from repro.espresso.unate import select_binate_var
from repro._compat import popcount


def _has_universal_row(cover: Cover) -> bool:
    full = full_input_mask(cover.n_inputs)
    return any(c.inbits == full for c in cover)


def tautology(cover: Cover) -> bool:
    """True iff the union of the cover's cubes is the whole input space.

    Output parts are ignored: the cover is interpreted as a single-output
    cover (callers handling multi-output covers restrict per output first).
    Implements the unate-recursive paradigm: terminal cases for the empty
    cover, a universal row, vanishing minterm counts and unate covers;
    otherwise Shannon-split on the most binate variable.
    """
    if _has_universal_row(cover):
        return True
    if cover.is_empty:
        return False
    n = cover.n_inputs
    # Vanishing heuristic: not enough minterms to possibly fill the space.
    total = 0
    target = 1 << n
    for c in cover:
        total += 1 << popcount(dc_pairs(c.inbits, n))
        if total >= target:
            break
    if total < target:
        return False
    var = select_binate_var(cover)
    if var is None:
        # Unate cover with no universal row is never a tautology.
        return False
    return tautology(_literal_cofactor(cover, var, 0)) and tautology(
        _literal_cofactor(cover, var, 1)
    )


def _literal_cofactor(cover: Cover, var: int, value: int) -> Cover:
    """Cofactor of the cover with respect to a single literal ``x_var = value``."""
    lit = LITERAL_ONE if value else LITERAL_ZERO
    point = Cube.full(cover.n_inputs, cover.n_outputs).with_literal(var, lit)
    return cover.cofactor(point)


def cover_contains_cube(cover: Cover, cube: Cube) -> bool:
    """True iff ``cube`` is contained in the union of the cover's cubes.

    For multi-output shapes the containment is required for every output the
    cube participates in.  This is the standard cofactor/tautology reduction:
    ``c ⊆ F`` iff ``F`` cofactored by ``c`` is a tautology.
    """
    if cube.is_empty:
        return True
    if cover.n_outputs == 1:
        return tautology(cover.cofactor(cube))
    for j in range(cube.n_outputs):
        if not cube.has_output(j):
            continue
        restricted = Cover(cover.n_inputs, (), cover.n_outputs)
        for c in cover:
            if c.has_output(j):
                restricted.append(c)
        probe = Cube(cube.n_inputs, cube.inbits, (1 << cover.n_outputs) - 1, cover.n_outputs)
        if not tautology(restricted.cofactor(probe)):
            return False
    return True
