"""Espresso-II IRREDUNDANT: drop cubes covered by the rest of the cover."""

from __future__ import annotations

from typing import Optional

from repro.cubes.cover import Cover
from repro.espresso.tautology import cover_contains_cube


def irredundant_cover(cover: Cover, dc: Optional[Cover] = None) -> Cover:
    """An irredundant subset of ``cover`` with the same ON-set coverage.

    Cubes are examined smallest-first; a cube is dropped when the remaining
    cubes plus the don't-care set still cover it.  A single ordered pass
    yields an irredundant cover: a cube kept at its turn covers some point
    unique with respect to the then-current cover, and later deletions only
    shrink that cover further, so the kept cube stays necessary.
    """
    order = sorted(
        range(len(cover.cubes)),
        key=lambda i: (cover.cubes[i].num_dc(), cover.cubes[i].inbits),
    )
    cubes = list(cover.cubes)
    for idx in order:
        cube = cubes[idx]
        if cube is None:
            continue
        rest = Cover(cover.n_inputs, (), cover.n_outputs)
        rest.cubes = [c for k, c in enumerate(cubes) if c is not None and k != idx]
        if dc is not None:
            rest.cubes = rest.cubes + list(dc.cubes)
        if cover_contains_cube(rest, cube):
            cubes[idx] = None
    out = Cover(cover.n_inputs, (), cover.n_outputs)
    out.cubes = [c for c in cubes if c is not None]
    return out
