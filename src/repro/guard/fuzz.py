"""Randomized whole-stack validation, with failure capture as repro bundles.

This is the library form of what ``scripts/fuzz.py`` runs overnight:
generate random instances (direct and via burst-mode synthesis) and check
every cross-implementation invariant the repository maintains —

* Espresso-HF and the exact flow agree on solvability (Theorem 4.1);
* every produced cover passes the Theorem 2.11 verifier;
* Espresso-HF's cardinality is never below the exact minimum;
* the eight-valued algebra agrees the cover is clean;
* Monte-Carlo delay simulation finds no glitches.

Living in the guard package buys two things over the old script-only form:
a seeded deterministic slice runs in tier-1 CI
(``tests/test_fuzz_smoke.py``), and any failing seed is serialized as a
shrunk repro bundle instead of evaporating into an assertion message.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class FuzzOutcome:
    """Result of one fuzz iteration."""

    seed: int
    status: str  # "ok" | "unsolvable" | "skipped" | "failed"
    name: str = ""
    error: str = ""
    bundle_path: Optional[str] = None


@dataclass
class FuzzReport:
    """Aggregate over a fuzz run."""

    outcomes: List[FuzzOutcome] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def failures(self) -> List[FuzzOutcome]:
        return [o for o in self.outcomes if o.status == "failed"]

    def stats(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for o in self.outcomes:
            counts[o.status] = counts.get(o.status, 0) + 1
        return counts


def check_instance(inst, budget=None, do_exact=True, do_sim=True) -> str:
    """Cross-check one instance across every implementation; returns status.

    Raises ``AssertionError`` on any cross-implementation disagreement —
    the caller (:func:`run_fuzz`) captures that as a repro bundle.
    """
    from repro.exact import ExactBudget, ExactFailure, exact_hazard_free_minimize
    from repro.guard.errors import NoSolutionError
    from repro.hazards import hazard_free_solution_exists
    from repro.hazards.verify import verify_hazard_free_cover
    from repro.hf import espresso_hf
    from repro.simulate import SopNetwork, find_glitch
    from repro.simulate.algebra import cover_hazard_free_by_algebra

    if budget is None:
        budget = ExactBudget(
            prime_limit=20_000,
            transform_limit=50_000,
            covering_node_limit=100_000,
            time_limit_s=20,
        )
    exists = hazard_free_solution_exists(inst)
    try:
        hf = espresso_hf(inst)
    except NoSolutionError:
        assert not exists, f"{inst.name}: HF refused a solvable instance"
        if do_exact:
            try:
                exact = exact_hazard_free_minimize(inst, budget=budget)
            except ExactFailure:
                pass
            else:
                assert exact.status == "no_solution", (
                    f"{inst.name}: exact solved an unsolvable instance"
                )
        return "unsolvable"
    assert exists, f"{inst.name}: HF solved but Theorem 4.1 says unsolvable"
    violations = verify_hazard_free_cover(inst, hf.cover, collect_all=True)
    assert not violations, f"{inst.name}: {violations[:3]}"
    assert cover_hazard_free_by_algebra(inst, hf.cover), f"{inst.name}: algebra"
    if do_exact:
        try:
            exact = exact_hazard_free_minimize(inst, budget=budget)
            assert exact.status == "ok", (
                f"{inst.name}: exact says {exact.status} on an instance "
                "HF solved"
            )
            assert exact.num_cubes <= hf.num_cubes, (
                f"{inst.name}: exact {exact.num_cubes} > HF {hf.num_cubes}"
            )
            assert not verify_hazard_free_cover(inst, exact.cover)
        except ExactFailure:
            pass
    if do_sim:
        for j in range(min(inst.n_outputs, 4)):
            network = SopNetwork(hf.cover, output=j)
            for t in inst.transitions[:6]:
                glitch = find_glitch(network, t, trials=30, seed=1)
                assert glitch is None, f"{inst.name}: {glitch}"
    return "ok"


def _instance_for_seed(seed: int, index: int):
    """Deterministic instance generator: alternate direct / synthesized.

    Even indices draw through the property-testing toolkit's builder
    (:func:`repro.proptest.strategies.seeded_instance`) — the same
    construction code the Hypothesis strategies shrink, driven by a seeded
    PRNG; odd indices go through burst-mode synthesis for specification-
    shaped inputs the direct builder never produces.
    """
    from repro.bm.random_spec import random_burst_mode_spec
    from repro.bm.spec import SpecError
    from repro.bm.synthesis import synthesize
    from repro.proptest.strategies import seeded_instance

    if index % 2 == 0:
        return seeded_instance(seed), True
    try:
        spec = random_burst_mode_spec(
            2 + seed % 4, 1 + seed % 3, 2 + seed % 4, seed=seed
        )
        return synthesize(spec).instance, (index % 4 == 1)
    except SpecError:
        return None, False


def run_fuzz(
    n_iterations: int = 200,
    base_seed: int = 0,
    exact_budget=None,
    bundle_dir: Optional[str] = None,
    progress_every: int = 25,
    verbose: bool = False,
) -> FuzzReport:
    """Run the fuzz loop; failures become bundles instead of raising.

    Deterministic for a given ``(n_iterations, base_seed)``.  When
    ``bundle_dir`` is set, a failing seed's instance is delta-debugged
    against its failure and serialized there.
    """
    report = FuzzReport()
    t0 = time.perf_counter()
    for i in range(n_iterations):
        seed = base_seed + i
        inst, do_exact = _instance_for_seed(seed, i)
        if inst is None:
            report.outcomes.append(FuzzOutcome(seed=seed, status="skipped"))
            continue
        try:
            status = check_instance(inst, budget=exact_budget, do_exact=do_exact)
            report.outcomes.append(
                FuzzOutcome(seed=seed, status=status, name=inst.name)
            )
        except Exception as exc:  # noqa: BLE001 - capture, bundle, continue
            outcome = FuzzOutcome(
                seed=seed,
                status="failed",
                name=inst.name,
                error=f"{type(exc).__name__}: {exc}",
            )
            if bundle_dir:
                outcome.bundle_path = _bundle_fuzz_failure(
                    inst, outcome.error, seed, bundle_dir, exact_budget
                )
            report.outcomes.append(outcome)
        if verbose and progress_every and (i + 1) % progress_every == 0:
            print(
                f"  {i + 1}/{n_iterations} "
                f"({time.perf_counter() - t0:.0f}s) {report.stats()}",
                flush=True,
            )
    report.elapsed_s = time.perf_counter() - t0
    return report


def _bundle_fuzz_failure(
    inst, error: str, seed: int, bundle_dir: str, exact_budget
) -> Optional[str]:
    """Shrink a failing fuzz instance against its check and bundle it."""
    from repro.guard.bundle import write_bundle
    from repro.guard.shrink import shrink_instance

    def reproduces(candidate) -> bool:
        try:
            check_instance(candidate, budget=exact_budget, do_exact=False)
            return False
        except Exception:  # noqa: BLE001 - any failure reproduces
            return True

    shrink_meta: Dict = {}
    shrunk = inst
    try:
        if reproduces(inst):
            result = shrink_instance(inst, reproduces, max_evaluations=60)
            shrunk = result.instance
            shrink_meta = result.as_dict()
    except Exception:  # noqa: BLE001 - shrinking must never mask the bug
        shrunk = inst
        shrink_meta = {}
    try:
        return write_bundle(
            shrunk,
            failure_kind="crash",
            failure_message=f"fuzz seed {seed}: {error}",
            failure_phase="fuzz",
            trace=[f"fuzz-seed:{seed}"],
            shrink=shrink_meta,
            bundle_dir=bundle_dir,
        )
    except Exception:  # noqa: BLE001 - bundling is best-effort
        return None
