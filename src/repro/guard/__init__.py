"""Guarded execution runtime for the hazard-free minimizer.

The guard package wraps the Espresso-HF engine with the operational
guarantees a long batch run needs:

* :mod:`repro.guard.budget` — cooperative run budgets (wall-clock deadline
  plus deterministic iteration/checkpoint caps) with graceful degradation;
* :mod:`repro.guard.invariants` — opt-in phase-boundary invariant
  checkpoints (Theorem 2.11) and the scalar-vs-bitset coverage
  cross-check, with automatic fallback to the scalar engine;
* :mod:`repro.guard.bundle` / :mod:`repro.guard.shrink` — self-contained,
  delta-debugged failure repro bundles under ``artifacts/``;
* :mod:`repro.guard.runner` — subprocess isolation with per-item timeouts
  and structured status rows;
* :mod:`repro.guard.errors` — the error taxonomy (:class:`HFError` and
  friends) with CLI exit codes.

``errors``, ``budget`` and ``invariants`` are imported eagerly — the core
engine depends on them.  The higher layers (``bundle``, ``shrink``,
``runner``, ``fuzz``) import the engine back, so they are exposed lazily
(PEP 562) to keep ``repro.hf.context -> repro.guard.budget`` cycle-free.
"""

from repro.guard.budget import RunBudget
from repro.guard.errors import (
    BudgetExceeded,
    HFError,
    InvariantViolation,
    MalformedInstance,
    NoSolutionError,
    WorkerCrashed,
)

__all__ = [
    "RunBudget",
    "HFError",
    "NoSolutionError",
    "BudgetExceeded",
    "InvariantViolation",
    "MalformedInstance",
    "WorkerCrashed",
    # lazy (PEP 562):
    "ReproBundle",
    "write_bundle",
    "load_bundle",
    "replay_bundle",
    "probe_failure",
    "shrink_instance",
    "guarded_espresso_hf",
    "run_one",
    "run_batch",
    "run_pool",
    "benchmark_payload",
    "pla_payload",
]

_LAZY = {
    "ReproBundle": "repro.guard.bundle",
    "write_bundle": "repro.guard.bundle",
    "load_bundle": "repro.guard.bundle",
    "replay_bundle": "repro.guard.bundle",
    "probe_failure": "repro.guard.bundle",
    "shrink_instance": "repro.guard.shrink",
    "guarded_espresso_hf": "repro.guard.runner",
    "run_one": "repro.guard.runner",
    "run_batch": "repro.guard.runner",
    "run_pool": "repro.guard.runner",
    "benchmark_payload": "repro.guard.runner",
    "pla_payload": "repro.guard.runner",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
