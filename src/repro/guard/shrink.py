"""Delta-debugging shrinker for failure repro bundles.

Given a failing instance and a *reproduction predicate* (``instance ->
bool``), the shrinker greedily removes structure while the failure keeps
reproducing — hypothesis-style, so the bundle attached to a bug report is
the smallest instance the reducer could reach, not the multi-kilobyte
original:

1. **transitions** — ddmin-style: drop halves, then quarters, ... then
   single transitions;
2. **outputs** — drop one output function at a time (covers are projected,
   transitions shared);
3. **inputs** — eliminate an input variable when every transition holds it
   at one constant value, by cofactoring the ON/OFF covers on that value
   and deleting the column.

The passes repeat until a full round makes no progress.  Candidate
instances that fail *validation* (e.g. removing a transition exposes a
function hazard) simply don't reproduce and are skipped — the predicate
wrapper treats any construction error as "not reproducing".  Total
predicate evaluations are capped; each evaluation re-runs the minimizer,
so the cap bounds shrink cost on pathological inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.cubes.cube import Cube
from repro.cubes.cover import Cover
from repro.hazards.instance import HazardFreeInstance
from repro.hazards.transitions import Transition


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    instance: HazardFreeInstance
    evaluations: int = 0
    #: sizes before/after, for the bundle's shrink metadata
    original: dict = field(default_factory=dict)
    shrunk: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "original": self.original,
            "shrunk": self.shrunk,
            "evaluations": self.evaluations,
        }


def _sizes(instance: HazardFreeInstance) -> dict:
    return {
        "n_inputs": instance.n_inputs,
        "n_outputs": instance.n_outputs,
        "n_transitions": len(instance.transitions),
        "n_on": len(instance.on),
        "n_off": len(instance.off),
    }


def _rebuild(
    instance: HazardFreeInstance,
    on: Cover,
    off: Cover,
    transitions: Sequence[Transition],
    suffix: str,
) -> HazardFreeInstance:
    return HazardFreeInstance(
        on, off, list(transitions), name=f"{instance.name}{suffix}", validate=True
    )


def _with_transitions(
    instance: HazardFreeInstance, transitions: Sequence[Transition]
) -> HazardFreeInstance:
    return _rebuild(instance, instance.on, instance.off, transitions, "")


def _project_outputs(cover: Cover, keep: List[int]) -> Cover:
    """Project a multi-output cover onto a subset of outputs (renumbered)."""
    out = Cover(cover.n_inputs, (), len(keep))
    for c in cover:
        outbits = 0
        for new_j, old_j in enumerate(keep):
            if (c.outbits >> old_j) & 1:
                outbits |= 1 << new_j
        if outbits:
            out.append(Cube(cover.n_inputs, c.inbits, outbits, len(keep)))
    return out


def _drop_output(instance: HazardFreeInstance, j: int) -> Optional[HazardFreeInstance]:
    if instance.n_outputs <= 1:
        return None
    keep = [k for k in range(instance.n_outputs) if k != j]
    return _rebuild(
        instance,
        _project_outputs(instance.on, keep),
        _project_outputs(instance.off, keep),
        instance.transitions,
        "",
    )


def _drop_input(instance: HazardFreeInstance, i: int) -> Optional[HazardFreeInstance]:
    """Eliminate input ``i`` when every transition pins it to one value."""
    if instance.n_inputs <= 1:
        return None
    values = {
        (t.start[i], t.end[i]) for t in instance.transitions
    }
    if len(values) != 1:
        return None
    start_v, end_v = next(iter(values))
    if start_v != end_v:
        return None  # the input actually switches: not removable
    v = start_v

    def project(cover: Cover) -> Optional[Cover]:
        out = Cover(cover.n_inputs - 1, (), cover.n_outputs)
        for c in cover:
            s = c.input_string()
            lit = s[i]
            if lit not in ("-", "01"[v]):
                continue  # cube disjoint from the x_i = v subspace
            out.append(
                Cube.from_string(s[:i] + s[i + 1 :], c.output_string())
            )
        return out

    on = project(instance.on)
    off = project(instance.off)
    transitions = [
        Transition(t.start[:i] + t.start[i + 1 :], t.end[:i] + t.end[i + 1 :])
        for t in instance.transitions
    ]
    return _rebuild(instance, on, off, transitions, "")


def shrink_instance(
    instance: HazardFreeInstance,
    reproduces: Callable[[HazardFreeInstance], bool],
    max_evaluations: int = 200,
) -> ShrinkResult:
    """Greedily minimize ``instance`` while ``reproduces`` stays true.

    ``reproduces(instance)`` must be true for the input instance; the
    returned instance is the smallest reduction found within the
    evaluation cap.  Exceptions from candidate construction or the
    predicate count as "does not reproduce".
    """
    result = ShrinkResult(instance=instance, original=_sizes(instance))
    current = instance

    def try_candidate(build: Callable[[], Optional[HazardFreeInstance]]) -> Optional[
        HazardFreeInstance
    ]:
        if result.evaluations >= max_evaluations:
            return None
        try:
            candidate = build()
        except Exception:  # noqa: BLE001 - invalid reduction, skip
            return None
        if candidate is None:
            return None
        result.evaluations += 1
        try:
            if reproduces(candidate):
                return candidate
        except Exception:  # noqa: BLE001 - predicate crash = no repro
            return None
        return None

    progress = True
    while progress and result.evaluations < max_evaluations:
        progress = False

        # 1. transitions, ddmin-style: large chunks first.
        chunk = max(1, len(current.transitions) // 2)
        while chunk >= 1:
            i = 0
            while i < len(current.transitions):
                ts = current.transitions
                candidate_ts = ts[:i] + ts[i + chunk :]
                if not candidate_ts:
                    break  # an instance needs at least one transition to fail
                shrunk = try_candidate(
                    lambda cts=candidate_ts: _with_transitions(current, cts)
                )
                if shrunk is not None:
                    current = shrunk
                    progress = True
                else:
                    i += chunk
            chunk //= 2

        # 2. outputs, one at a time.
        j = 0
        while j < current.n_outputs and current.n_outputs > 1:
            shrunk = try_candidate(lambda jj=j: _drop_output(current, jj))
            if shrunk is not None:
                current = shrunk
                progress = True
            else:
                j += 1

        # 3. inputs pinned constant by every transition.
        i = 0
        while i < current.n_inputs and current.n_inputs > 1:
            shrunk = try_candidate(lambda ii=i: _drop_input(current, ii))
            if shrunk is not None:
                current = shrunk
                progress = True
            else:
                i += 1

    result.instance = current
    result.shrunk = _sizes(current)
    return result
