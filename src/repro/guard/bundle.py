"""Self-contained failure repro bundles.

When a guarded run fails — an invariant violation, a coverage cross-check
divergence, or an outright crash — the runtime serializes everything needed
to replay the failure into one JSON file under ``artifacts/``:

* the instance as extended PLA text (``.type fr`` + ``.trans`` lines, the
  same format the CLI reads),
* the :class:`~repro.hf.espresso_hf.EspressoHFOptions` that were active
  (budget configuration included),
* the failure kind and message,
* the phase trace up to the failure,
* shrink metadata once :mod:`repro.guard.shrink` has minimized the input.

``replay_bundle`` re-runs the bundle's instance under checked mode and
reports whether the recorded failure kind reproduces, so a bundle attached
to a bug report is executable evidence, not a prose description.
"""

from __future__ import annotations

import hashlib
import json
import os
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.guard.errors import InvariantViolation, NoSolutionError
from repro.hazards.instance import HazardFreeInstance

#: default directory for bundles, relative to the current working directory
DEFAULT_BUNDLE_DIR = "artifacts"

BUNDLE_FORMAT = "espresso-hf-repro-bundle"
BUNDLE_VERSION = 1

#: failure kinds a bundle can record / a replay can observe
FAILURE_KINDS = (
    "invariant_violation",
    "crosscheck_divergence",
    "verify_failed",
    "crash",
    "property_falsified",
)

#: EspressoHFOptions fields that serialize into a bundle (plain scalars)
_OPTION_FIELDS = (
    "use_essentials",
    "use_last_gasp",
    "make_prime",
    "exact_irredundant",
    "irredundant_node_limit",
    "max_outer_iterations",
    "jobs",
    "passes",
)


def options_to_dict(options) -> Dict[str, Any]:
    """JSON-ready snapshot of an :class:`EspressoHFOptions` (or None)."""
    if options is None:
        return {}
    out = {name: getattr(options, name) for name in _OPTION_FIELDS}
    budget = getattr(options, "budget", None)
    if budget is not None:
        out["budget"] = {
            "wall_s": budget.wall_s,
            "max_iterations": budget.max_iterations,
            "max_checkpoints": budget.max_checkpoints,
        }
    return out


def options_from_dict(data: Dict[str, Any]):
    """Rebuild :class:`EspressoHFOptions` from a bundle's options dict."""
    from repro.guard.budget import RunBudget
    from repro.hf.espresso_hf import EspressoHFOptions

    kwargs = {k: v for k, v in data.items() if k in _OPTION_FIELDS}
    if kwargs.get("passes") is not None:
        # JSON round-trips the tuple as a list.
        kwargs["passes"] = tuple(kwargs["passes"])
    options = EspressoHFOptions(**kwargs)
    if data.get("budget"):
        options.budget = RunBudget(**data["budget"])
    return options


@dataclass
class ReproBundle:
    """In-memory form of one serialized failure bundle."""

    name: str
    pla_text: str
    options: Dict[str, Any] = field(default_factory=dict)
    failure_kind: str = "crash"
    failure_message: str = ""
    failure_phase: str = ""
    trace: list = field(default_factory=list)
    shrink: Dict[str, Any] = field(default_factory=dict)
    path: Optional[str] = None

    def instance(self) -> HazardFreeInstance:
        """Parse the embedded PLA back into an instance."""
        from repro.pla import parse_pla

        return parse_pla(self.pla_text, name=self.name).to_instance()

    def as_dict(self) -> Dict[str, Any]:
        return {
            "format": BUNDLE_FORMAT,
            "version": BUNDLE_VERSION,
            "name": self.name,
            "pla": self.pla_text,
            "options": self.options,
            "failure": {
                "kind": self.failure_kind,
                "message": self.failure_message,
                "phase": self.failure_phase,
            },
            "trace": list(self.trace),
            "shrink": self.shrink,
        }


def write_bundle(
    instance: HazardFreeInstance,
    failure_kind: str,
    failure_message: str = "",
    failure_phase: str = "",
    options=None,
    trace=None,
    shrink: Optional[Dict[str, Any]] = None,
    bundle_dir: str = DEFAULT_BUNDLE_DIR,
    filename: Optional[str] = None,
) -> str:
    """Serialize a failure bundle to ``bundle_dir``; returns its path.

    By default the filename is content-addressed (instance name plus a hash
    of the PLA text and failure message), so re-runs of the same failure
    overwrite one file instead of accumulating duplicates.  An explicit
    ``filename`` pins the path instead — the property-test harness uses a
    per-test name so Hypothesis's final shrunk replay is what survives on
    disk, not every intermediate falsifying example.
    """
    from repro.pla.writer import format_pla

    pla_text = format_pla(instance)
    bundle = ReproBundle(
        name=instance.name,
        pla_text=pla_text,
        options=options_to_dict(options),
        failure_kind=failure_kind,
        failure_message=failure_message,
        failure_phase=failure_phase,
        trace=list(trace or []),
        shrink=dict(shrink or {}),
    )
    if filename is None:
        digest = hashlib.sha1(
            (pla_text + "\0" + failure_kind + "\0" + failure_message).encode()
        ).hexdigest()[:10]
        safe_name = "".join(
            c if c.isalnum() or c in "-_." else "_" for c in instance.name
        )
        filename = f"{safe_name}-{digest}.bundle"
    os.makedirs(bundle_dir, exist_ok=True)
    path = os.path.join(bundle_dir, filename)
    with open(path, "w") as fh:
        json.dump(bundle.as_dict(), fh, indent=2)
        fh.write("\n")
    return path


def load_bundle(path: str) -> ReproBundle:
    """Load a bundle file back into memory (validates the format marker)."""
    with open(path) as fh:
        data = json.load(fh)
    if data.get("format") != BUNDLE_FORMAT:
        raise ValueError(f"{path}: not an {BUNDLE_FORMAT} file")
    failure = data.get("failure", {})
    return ReproBundle(
        name=data.get("name", "bundle"),
        pla_text=data["pla"],
        options=data.get("options", {}),
        failure_kind=failure.get("kind", "crash"),
        failure_message=failure.get("message", ""),
        failure_phase=failure.get("phase", ""),
        trace=data.get("trace", []),
        shrink=data.get("shrink", {}),
        path=path,
    )


def probe_failure(
    instance: HazardFreeInstance,
    options=None,
    fault_hook: Optional[Callable[[int, int, int], int]] = None,
) -> Optional[str]:
    """Run one checked minimization and classify what (if anything) failed.

    Returns a failure kind from :data:`FAILURE_KINDS` or ``None`` when the
    run is clean.  ``fault_hook`` re-installs a coverage-engine fault
    injector (used when replaying injected-fault bundles; organic failures
    replay without one).  ``NoSolutionError`` counts as clean — it is a
    property of the input, not a fault.
    """
    from repro.hazards.verify import verify_hazard_free_cover
    from repro.hf.espresso_hf import EspressoHFOptions, espresso_hf

    base = options or EspressoHFOptions()
    probe_options = EspressoHFOptions(
        use_essentials=base.use_essentials,
        use_last_gasp=base.use_last_gasp,
        make_prime=base.make_prime,
        exact_irredundant=base.exact_irredundant,
        irredundant_node_limit=base.irredundant_node_limit,
        max_outer_iterations=base.max_outer_iterations,
        budget=None,  # replay uncapped: budgets would mask the failure
        checked=True,
        coverage_fault_hook=fault_hook,
    )
    try:
        result = espresso_hf(instance, probe_options)
    except NoSolutionError:
        return None
    except InvariantViolation:
        return "invariant_violation"
    except Exception:  # noqa: BLE001 - any crash is the finding
        return "crash"
    if result.counters.crosscheck_divergences:
        return "crosscheck_divergence"
    if verify_hazard_free_cover(instance, result.cover):
        return "verify_failed"
    return None


def replay_bundle(
    path: str,
    fault_hook: Optional[Callable[[int, int, int], int]] = None,
) -> Dict[str, Any]:
    """Re-run a bundle and report whether its failure reproduces.

    Returns ``{"reproduced": bool, "expected": kind, "observed": kind or
    None, "name": ...}``.  A replay reproduces when it observes the same
    failure kind the bundle recorded (any failure matches a recorded
    ``"crash"``).
    """
    bundle = load_bundle(path)
    try:
        instance = bundle.instance()
    except Exception as exc:  # noqa: BLE001 - malformed bundle is a result
        return {
            "name": bundle.name,
            "expected": bundle.failure_kind,
            "observed": "crash",
            "reproduced": bundle.failure_kind == "crash",
            "error": f"{type(exc).__name__}: {exc}",
        }
    options = options_from_dict(bundle.options)
    observed = probe_failure(instance, options, fault_hook=fault_hook)
    reproduced = observed == bundle.failure_kind or (
        bundle.failure_kind == "crash" and observed is not None
    )
    return {
        "name": bundle.name,
        "expected": bundle.failure_kind,
        "observed": observed,
        "reproduced": reproduced,
    }


def describe_exception(exc: BaseException, limit: int = 20) -> str:
    """Compact single-string traceback for bundle messages."""
    return "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__, limit=limit)
    ).strip()
