"""Run budgets: wall-clock deadlines and deterministic work caps.

A :class:`RunBudget` bounds one logical minimizer run.  The EXPAND / REDUCE
/ IRREDUNDANT / LAST_GASP operators call
:meth:`~repro.hf.context.HFContext.checkpoint` at cube granularity; the
checkpoint delegates here and raises
:class:`~repro.guard.errors.BudgetExceeded` the first time any cap is blown.
The driver catches the exception at the phase boundary and returns the best
cover built so far with ``status="budget_exceeded"`` — the run *degrades*,
it never hangs and never returns an unverified cover.

Two kinds of caps coexist on purpose:

* ``wall_s`` is the production knob — a hard deadline in seconds;
* ``max_iterations`` / ``max_checkpoints`` are deterministic work caps
  (outer+inner loop iterations, cooperative checkpoints).  They make budget
  exhaustion reproducible in tests and repro bundles, where a wall-clock
  deadline would be machine-dependent.

A budget instance is *stateful* and spans one logical run: the clock starts
at the first checkpoint, and :func:`repro.hf.espresso_hf_per_output` passes
the same instance to every per-output sub-run so the deadline is shared.
Use :meth:`reset` (or a fresh instance) to reuse a configuration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.guard.errors import BudgetExceeded


@dataclass
class RunBudget:
    """Caps for one minimizer run; ``None`` disables the respective cap.

    Attributes
    ----------
    wall_s:
        Wall-clock deadline in seconds, measured from the first checkpoint.
    max_iterations:
        Cap on inner REDUCE/EXPAND/IRREDUNDANT iterations (the driver
        charges these via :meth:`charge_iteration`).
    max_checkpoints:
        Deterministic cap on cooperative checkpoints — roughly one per cube
        per operator pass.  Machine-independent, so exhaustion under this
        cap reproduces exactly.
    """

    wall_s: Optional[float] = None
    max_iterations: Optional[int] = None
    max_checkpoints: Optional[int] = None

    # -- runtime state (not configuration) -----------------------------
    started_at: Optional[float] = field(default=None, repr=False)
    checkpoints: int = field(default=0, repr=False)
    iterations: int = field(default=0, repr=False)
    exhausted_reason: Optional[str] = field(default=None, repr=False)

    def start(self) -> None:
        """Start the wall clock (idempotent)."""
        if self.started_at is None:
            self.started_at = time.perf_counter()

    def reset(self) -> None:
        """Clear runtime state so the configuration can be reused."""
        self.started_at = None
        self.checkpoints = 0
        self.iterations = 0
        self.exhausted_reason = None

    @property
    def exhausted(self) -> bool:
        return self.exhausted_reason is not None

    def elapsed_s(self) -> float:
        """Seconds since the first checkpoint (0.0 before it)."""
        if self.started_at is None:
            return 0.0
        return time.perf_counter() - self.started_at

    def remaining_s(self) -> Optional[float]:
        """Seconds left on the wall-clock cap (None when uncapped)."""
        if self.wall_s is None:
            return None
        return self.wall_s - self.elapsed_s()

    def checkpoint(self, phase: str = "") -> None:
        """Cooperative check; raises :class:`BudgetExceeded` on any blown cap.

        Once a cap has been blown every later checkpoint raises again, so an
        operator that swallows the first exception cannot run away.
        """
        self.start()
        self.checkpoints += 1
        if self.exhausted_reason is not None:
            raise BudgetExceeded(self.exhausted_reason, phase)
        if (
            self.max_checkpoints is not None
            and self.checkpoints > self.max_checkpoints
        ):
            self._exhaust(f"checkpoint cap {self.max_checkpoints} reached", phase)
        if self.wall_s is not None and self.elapsed_s() > self.wall_s:
            self._exhaust(f"wall-clock deadline {self.wall_s:g}s reached", phase)

    def charge_iteration(self, phase: str = "loop") -> None:
        """Charge one inner-loop iteration against ``max_iterations``."""
        self.iterations += 1
        if (
            self.max_iterations is not None
            and self.iterations > self.max_iterations
        ):
            self._exhaust(f"iteration cap {self.max_iterations} reached", phase)

    def _exhaust(self, reason: str, phase: str) -> None:
        self.exhausted_reason = reason
        raise BudgetExceeded(reason, phase)


class BudgetChargeHook:
    """Pipeline hook charging the run budget (see :mod:`repro.pipeline`).

    One iteration is charged per *charged fixed-point round* — the inner
    REDUCE/EXPAND/IRREDUNDANT rounds of the minimization loop — exactly
    where the pre-pipeline driver called :meth:`RunBudget.charge_iteration`
    by hand.  Cube-granularity checkpoints stay inside the operators
    (:meth:`repro.hf.context.HFContext.checkpoint`); this hook is only the
    loop-level accounting.  States without a budget are no-ops.
    """

    def pass_started(self, step, state) -> None:
        pass

    def pass_finished(self, step, state, seconds: float) -> None:
        pass

    def round_finished(self, fixed_point, state) -> None:
        budget = state.budget
        if budget is not None:
            budget.charge_iteration(fixed_point.name)

    def fixed_point_finished(self, fixed_point, state, rounds: int) -> None:
        pass
