"""Guarded single-run wrapper and subprocess-isolated batch runner.

Two layers:

:func:`guarded_espresso_hf`
    In-process wrapper around :func:`repro.hf.espresso_hf` that turns the
    guard policy on: on an invariant violation, a coverage cross-check
    divergence, or a crash it serializes a repro bundle
    (:mod:`repro.guard.bundle`), delta-debugs it down
    (:mod:`repro.guard.shrink`), and attaches the bundle path to the
    exception / result trace before propagating.

:func:`run_one` / :func:`run_batch`
    Process isolation: each work item (a benchmark circuit or a PLA text)
    runs in its own subprocess with a wall-clock timeout, and the parent
    receives a structured, JSON-ready row per item —
    ``status ∈ {ok, degraded, budget_exceeded, no_solution,
    invariant_violation, malformed, crash, timeout}`` plus metrics and the
    bundle path, never an exception.  One pathological circuit can
    therefore never take down a Figure-8 sweep: it times out or crashes
    *in its own process* and the batch report simply records that.

``scripts/bench_hf.py`` and the CLI's ``--timeout`` mode run on this
module.  Work items are plain dicts (see :func:`benchmark_payload` /
:func:`pla_payload`) so they cross the process boundary without pickling
any library objects.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time
from typing import Any, Dict, List, Optional

from repro.guard.bundle import (
    describe_exception,
    options_from_dict,
    options_to_dict,
    probe_failure,
    write_bundle,
)
from repro.guard.errors import (
    BudgetExceeded,
    InvariantViolation,
    MalformedInstance,
    NoSolutionError,
    signal_name,
)
from repro.guard.shrink import shrink_instance

#: statuses a batch row can carry (superset of HFResult.status).
#: ``crash`` is an in-process exception the worker caught and reported;
#: ``worker_crashed`` is the worker process itself dying without reporting
#: (signal / OOM kill / hard interpreter crash) — the distinction matters
#: because only the latter is retry-safe (see :class:`WorkerCrashed`).
ROW_STATUSES = (
    "ok",
    "degraded",
    "budget_exceeded",
    "no_solution",
    "invariant_violation",
    "malformed",
    "crash",
    "worker_crashed",
    "timeout",
)


# ----------------------------------------------------------------------
# Guarded in-process wrapper
# ----------------------------------------------------------------------


def _bundle_failure(
    instance,
    options,
    kind: str,
    message: str,
    phase: str,
    bundle_dir: str,
    trace=None,
    shrink: bool = True,
    max_shrink_evaluations: int = 200,
) -> str:
    """Write (and, when reproducible, shrink) one failure bundle."""
    fault_hook = getattr(options, "coverage_fault_hook", None)
    shrink_meta: Dict[str, Any] = {}
    shrunk_instance = instance
    if shrink:
        def reproduces(candidate) -> bool:
            return probe_failure(candidate, options, fault_hook=fault_hook) == kind

        try:
            if reproduces(instance):
                result = shrink_instance(
                    instance, reproduces, max_evaluations=max_shrink_evaluations
                )
                shrunk_instance = result.instance
                shrink_meta = result.as_dict()
        except Exception:  # noqa: BLE001 - shrinking must never mask the bug
            shrunk_instance = instance
            shrink_meta = {}
    return write_bundle(
        shrunk_instance,
        failure_kind=kind,
        failure_message=message,
        failure_phase=phase,
        options=options,
        trace=trace,
        shrink=shrink_meta,
        bundle_dir=bundle_dir,
    )


def guarded_espresso_hf(
    instance,
    options=None,
    bundle_dir: Optional[str] = None,
    shrink: bool = True,
    max_shrink_evaluations: int = 200,
    warm_start=None,
    capture_session: bool = False,
    warm_assume_identical: bool = False,
):
    """Run :func:`espresso_hf` under the full guard policy.

    Behaves exactly like ``espresso_hf`` on clean runs.  On failure, and
    when ``bundle_dir`` is set:

    * :class:`InvariantViolation` — a shrunk repro bundle is written and
      its path attached to the exception (``exc.bundle_path``) before
      re-raising;
    * any other unexpected exception — a bundle is written, then the
      exception propagates unchanged;
    * a recovered cross-check divergence (the run continued on the scalar
      fallback and the result is valid) — a bundle is written and its path
      appended to ``result.trace``; no exception, since the cover is good.

    ``NoSolutionError`` and ``BudgetExceeded`` pass through untouched:
    they are properties of the input and the budget, not faults.

    ``warm_start`` / ``capture_session`` forward to ``espresso_hf``
    unchanged — warm-start planning is fallible-by-design (any unusable
    session degrades to a cold run), so no extra guard policy applies.
    """
    from repro.hf.espresso_hf import EspressoHFOptions, espresso_hf

    options = options or EspressoHFOptions()
    try:
        result = espresso_hf(
            instance,
            options,
            warm_start=warm_start,
            capture_session=capture_session,
            warm_assume_identical=warm_assume_identical,
        )
    except (NoSolutionError, BudgetExceeded):
        raise
    except InvariantViolation as exc:
        if bundle_dir:
            exc.bundle_path = _bundle_failure(
                instance,
                options,
                "invariant_violation",
                str(exc),
                exc.phase,
                bundle_dir,
                shrink=shrink,
                max_shrink_evaluations=max_shrink_evaluations,
            )
        raise
    except Exception as exc:  # noqa: BLE001 - bundle, then propagate
        if bundle_dir:
            _bundle_failure(
                instance,
                options,
                "crash",
                describe_exception(exc),
                "",
                bundle_dir,
                shrink=shrink,
                max_shrink_evaluations=max_shrink_evaluations,
            )
        raise
    if result.counters.crosscheck_divergences and bundle_dir:
        path = _bundle_failure(
            instance,
            options,
            "crosscheck_divergence",
            f"{result.counters.crosscheck_divergences} coverage cross-check "
            "divergences (run recovered on the scalar fallback)",
            "",
            bundle_dir,
            trace=result.trace,
            shrink=shrink,
            max_shrink_evaluations=max_shrink_evaluations,
        )
        result.trace.append(f"bundle:{path}")
    return result


# ----------------------------------------------------------------------
# Test-only fault injection (the ``inject`` payload seam)
# ----------------------------------------------------------------------
#
# A payload may carry an ``inject`` dict that makes the worker misbehave on
# purpose — the fault-injection suites for the batch runner and the serve
# daemon are built on it (docs/SERVICE.md "Fault injection").  Supported
# keys:
#
# ``kill``              kill this worker with SIGKILL, unconditionally
# ``kill_attempts``     list of attempt numbers (``payload["attempt"]``,
#                       maintained by the retrying supervisor) to kill on —
#                       attempt 0 killed / attempt 1 clean models a
#                       transient crash that a retry survives
# ``kill_prob`` +       probabilistic kill, derandomized per
# ``seed``              (seed, name, attempt) so replays are deterministic
# ``sleep_s``           sleep before minimizing (forces the parent timeout)
# ``defect``            install one :data:`repro.proptest.faults.DEFECTS`
#                       corruption through the ``pass_decorator`` seam
# ``raise``             raise from the first pipeline pass via the same
#                       seam: ``"malformed"`` -> MalformedInstance,
#                       anything else -> RuntimeError
#
# Kills are honoured only inside a worker process (never in MainProcess),
# so an accidental ``inject`` on an in-process call cannot take down the
# caller.  The serve daemon forwards ``inject`` only when started with
# ``--allow-test-faults``.


def _apply_preflight_faults(inject: Dict[str, Any], payload: Dict[str, Any]) -> None:
    """Kill / delay faults, applied before any real work starts."""
    attempt = int(payload.get("attempt", 0))
    kill = bool(inject.get("kill")) or attempt in set(
        inject.get("kill_attempts") or ()
    )
    prob = float(inject.get("kill_prob") or 0.0)
    if not kill and prob > 0.0:
        import random

        token = f"{inject.get('seed', 0)}:{payload.get('name', '')}:{attempt}"
        kill = random.Random(token).random() < prob
    if kill and multiprocessing.current_process().name != "MainProcess":
        import os
        import signal

        os.kill(os.getpid(), signal.SIGKILL)
    if inject.get("sleep_s"):
        time.sleep(float(inject["sleep_s"]))


class _RaisingPass:
    """Pipeline pass replacement that raises instead of running."""

    def __init__(self, inner, exc_factory):
        self.inner = inner
        self.name = inner.name
        self._exc_factory = exc_factory

    def run(self, state):
        raise self._exc_factory()


def _apply_option_faults(inject: Dict[str, Any], options) -> None:
    """Pipeline-level faults, installed through the pass_decorator seam."""
    defect = inject.get("defect")
    raise_kind = inject.get("raise")
    if defect:
        from repro.proptest.faults import DEFECTS, fault_decorator

        options.pass_decorator = fault_decorator(DEFECTS[defect])
    elif raise_kind:
        if raise_kind == "malformed":
            def factory():
                return MalformedInstance("injected malformed-instance fault")
        else:
            def factory():
                return RuntimeError(f"injected fault: {raise_kind}")

        raised = []

        def decorate(pass_):
            if raised:
                return pass_
            raised.append(pass_.name)
            return _RaisingPass(pass_, factory)

        options.pass_decorator = decorate


# ----------------------------------------------------------------------
# Work-item payloads
# ----------------------------------------------------------------------


def benchmark_payload(
    name: str,
    options=None,
    checked: bool = False,
    verify: bool = True,
    repeats: int = 1,
    timeout_s: Optional[float] = None,
    collect_spans: bool = False,
) -> Dict[str, Any]:
    """Work item for one named Figure-8 benchmark circuit.

    With ``collect_spans`` the worker runs under its own
    :class:`repro.obs.Tracer` and ships the fastest repeat's finished
    spans (plus a metrics snapshot) back on the row — the batch caller
    adopts them into its trace (``scripts/bench_gate.py --trace-out``).
    """
    return {
        "kind": "benchmark",
        "name": name,
        "options": options_to_dict(options),
        "checked": checked,
        "verify": verify,
        "repeats": repeats,
        "timeout_s": timeout_s,
        "collect_spans": collect_spans,
    }


def pla_payload(
    pla_text: str,
    name: str = "instance",
    options=None,
    checked: bool = False,
    verify: bool = True,
    timeout_s: Optional[float] = None,
    collect_spans: bool = False,
    warm_session: Optional[Dict[str, Any]] = None,
    capture_session: bool = False,
    warm_text_match: bool = False,
) -> Dict[str, Any]:
    """Work item for one extended-PLA instance (the CLI's ``--timeout``).

    ``warm_session`` is a serialized :class:`repro.session.MinimizationSession`
    dict (``to_dict`` form — plain JSON, so it survives the process
    boundary); ``capture_session`` asks the worker to ship one back on the
    row (``row["session"]``).  ``warm_text_match`` asserts that
    ``pla_text`` is byte-identical to the text that produced the session
    (the caller's proof of instance identity — the planner then skips
    signature re-derivation).  See docs/WARMSTART.md.
    """
    payload = {
        "kind": "pla",
        "name": name,
        "pla_text": pla_text,
        "options": options_to_dict(options),
        "checked": checked,
        "verify": verify,
        "repeats": 1,
        "return_cover": True,
        "timeout_s": timeout_s,
        "collect_spans": collect_spans,
    }
    if warm_session is not None:
        payload["warm_session"] = warm_session
        if warm_text_match:
            payload["warm_text_match"] = True
    if capture_session:
        payload["capture_session"] = True
    return payload


def per_output_payload(
    pla_text: str,
    name: str,
    output: int,
    options=None,
    checked: bool = False,
    collect_spans: bool = False,
) -> Dict[str, Any]:
    """Work item for one output of a per-output sweep (``--jobs`` mode).

    The worker rebuilds the full instance from the PLA text, restricts it
    to ``output``, and returns the raw sub-run result (cover cubes as
    integer pairs, essentials, counters) so the parent can merge it
    exactly like a serial sweep.  Verification is the parent's job — the
    merged multi-output cover is what the caller checks.
    """
    return {
        "kind": "pla",
        "name": f"{name}[out{output}]",
        "pla_text": pla_text,
        "restrict_output": output,
        "options": options_to_dict(options),
        "checked": checked,
        "verify": False,
        "repeats": 1,
        "return_raw": True,
        "collect_spans": collect_spans,
    }


def _build_instance(payload: Dict[str, Any]):
    if payload["kind"] == "benchmark":
        from repro.bm.benchmarks import build_benchmark

        return build_benchmark(payload["name"])
    from repro.pla import parse_pla

    # warm_text_match is the supervisor's proof that this exact byte
    # sequence already passed validation in the run that produced the
    # session (sessions are only stored from status=="ok" runs), so
    # re-validating the deterministic parse result proves nothing new.
    validate = not payload.get("warm_text_match")
    return parse_pla(
        payload["pla_text"], name=payload.get("name", "pla")
    ).to_instance(validate=validate)


def minimize_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one work item in-process; always returns a structured row.

    This is the body the subprocess child runs; tests may call it directly.
    """
    from repro.pla.reader import PlaError

    name = payload.get("name", "instance")
    row: Dict[str, Any] = {"name": name, "status": "crash", "bundle_path": None}
    bundle_dir = payload.get("bundle_dir")
    inject = payload.get("inject") or {}
    if inject:
        _apply_preflight_faults(inject, payload)
    try:
        instance = _build_instance(payload)
    except (PlaError, MalformedInstance, ValueError, KeyError) as exc:
        row["status"] = "malformed"
        row["error"] = f"{type(exc).__name__}: {exc}"
        return row
    restrict = payload.get("restrict_output")
    if restrict is not None:
        instance = instance.restrict_to_output(int(restrict))
    row["n_inputs"] = instance.n_inputs
    row["n_outputs"] = instance.n_outputs
    options = options_from_dict(payload.get("options", {}))
    options.checked = bool(payload.get("checked", False))
    if inject:
        _apply_option_faults(inject, options)
    collect_spans = bool(payload.get("collect_spans"))
    capture_session = bool(payload.get("capture_session"))
    warm_text_match = bool(payload.get("warm_text_match"))
    warm_start = None
    warm_error: Optional[str] = None
    if payload.get("warm_session") is not None:
        from repro.session import MinimizationSession

        try:
            warm_start = MinimizationSession.from_dict(payload["warm_session"])
        except ValueError as exc:
            # A malformed session must never fail the request — the run
            # proceeds cold and the row records why.
            warm_error = f"session rejected: {exc}"
    best_time: Optional[float] = None
    best = None
    best_spans: Optional[List[Dict[str, Any]]] = None
    times: List[float] = []
    try:
        for _ in range(max(1, int(payload.get("repeats", 1)))):
            if options.budget is not None:
                options.budget.reset()
            tracer = None
            t0 = time.perf_counter()
            if collect_spans:
                from repro.obs import Tracer, activate

                tracer = Tracer()
                with activate(tracer):
                    result = guarded_espresso_hf(
                        instance,
                        options,
                        bundle_dir=bundle_dir,
                        warm_start=warm_start,
                        capture_session=capture_session,
                        warm_assume_identical=warm_text_match,
                    )
            else:
                result = guarded_espresso_hf(
                    instance,
                    options,
                    bundle_dir=bundle_dir,
                    warm_start=warm_start,
                    capture_session=capture_session,
                    warm_assume_identical=warm_text_match,
                )
            elapsed = time.perf_counter() - t0
            times.append(elapsed)
            if best_time is None or elapsed < best_time:
                best_time = elapsed
                best = result
                if tracer is not None:
                    best_spans = [
                        s.as_dict() for s in tracer.finished_spans()
                    ]
    except NoSolutionError as exc:
        row["status"] = "no_solution"
        row["error"] = str(exc)
        return row
    except MalformedInstance as exc:
        # An instance defect only detectable mid-run (or an injected
        # malformed fault) classifies as user error, not a crash.
        row["status"] = "malformed"
        row["error"] = f"{type(exc).__name__}: {exc}"
        return row
    except InvariantViolation as exc:
        row["status"] = "invariant_violation"
        row["error"] = str(exc)
        row["bundle_path"] = exc.bundle_path
        return row
    except Exception as exc:  # noqa: BLE001 - isolation boundary
        row["status"] = "crash"
        row["error"] = describe_exception(exc)
        return row
    row.update(
        {
            "status": best.status,
            "num_cubes": best.num_cubes,
            "num_literals": best.num_literals,
            "num_essential_classes": best.num_essential_classes,
            "num_canonical_required": best.num_canonical_required,
            "time_s": round(best_time, 6),
            "times_s": [round(t, 6) for t in times],
            "phase_seconds": {
                k: round(v, 6) for k, v in best.phase_seconds.items()
            },
            "counters": best.counters.as_dict(),
            "trace": list(best.trace),
            "error": None,
        }
    )
    if warm_start is not None or warm_error is not None:
        row["warm"] = best.warm if warm_error is None else "cold"
        if warm_error is not None:
            row["warm_error"] = warm_error
    if best.session is not None:
        row["session"] = best.session.to_dict()
    if collect_spans:
        from repro.obs import MetricsRegistry, publish_result_metrics

        row["spans"] = best_spans or []
        row["metrics"] = publish_result_metrics(
            MetricsRegistry(), best
        ).snapshot()
    for line in best.trace:
        if line.startswith("bundle:"):
            row["bundle_path"] = line.split(":", 1)[1]
    if payload.get("verify", True):
        from repro.hazards.verify import verify_hazard_free_cover

        if best.warm == "identical":
            # The identical-mode short circuit only fires after
            # plan_warm_start ran the Theorem 2.11 verifier on this exact
            # cover against this exact instance (warm_cubes_reverified in
            # the counters); repeating the check here would double the
            # cost of the fast path for no new information.
            violations = []
        else:
            violations = verify_hazard_free_cover(instance, best.cover)
        row["verified"] = not violations
        if violations:
            row["status"] = "invariant_violation"
            row["error"] = "; ".join(str(v) for v in violations[:3])
            if bundle_dir:
                row["bundle_path"] = _bundle_failure(
                    instance,
                    options,
                    "verify_failed",
                    row["error"],
                    "final",
                    bundle_dir,
                    trace=best.trace,
                )
    if payload.get("return_cover"):
        from repro.pla.writer import format_cover

        row["cover_pla"] = format_cover(
            best.cover, pla_type="f", name=f"{name} minimized"
        )
    if payload.get("return_raw"):
        # Raw result surface for the per-output merge: integers survive the
        # process boundary losslessly, library objects would not.
        row["cover_cubes"] = [[c.inbits, c.outbits] for c in best.cover]
        row["essentials_inbits"] = [e.inbits for e in best.essentials]
        row["num_required"] = best.num_required
        row["iterations"] = best.iterations
    return row


def _child_main(payload: Dict[str, Any], out_queue) -> None:  # pragma: no cover
    """Subprocess entry point: run the payload, ship the row, exit."""
    try:
        row = minimize_payload(payload)
    except BaseException as exc:  # noqa: BLE001 - last-resort isolation
        row = {
            "name": payload.get("name", "instance"),
            "status": "crash",
            "error": describe_exception(exc),
            "bundle_path": None,
        }
    try:
        out_queue.put(row)
    except Exception:  # noqa: BLE001 - parent will report a crash
        pass


def run_one(
    payload: Dict[str, Any],
    timeout_s: Optional[float] = None,
    bundle_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one work item in a subprocess with a wall-clock timeout.

    A ``timeout_s`` key in the payload overrides the argument.  On timeout
    the child is terminated and the row reports ``status="timeout"`` (with
    an input-preserving bundle when ``bundle_dir`` is set); on a child that
    dies without reporting, ``status="crash"`` with the exit code.
    """
    timeout = payload.get("timeout_s") or timeout_s
    if bundle_dir:
        payload = dict(payload, bundle_dir=bundle_dir)
    name = payload.get("name", "instance")
    ctx = multiprocessing.get_context()
    out_queue = ctx.Queue()
    proc = ctx.Process(target=_child_main, args=(payload, out_queue), daemon=True)
    t0 = time.perf_counter()
    proc.start()
    deadline = None if timeout is None else t0 + timeout
    row: Optional[Dict[str, Any]] = None
    while row is None:
        try:
            row = out_queue.get(timeout=0.05)
        except queue_mod.Empty:
            if deadline is not None and time.perf_counter() >= deadline:
                proc.terminate()
                proc.join()
                row = {
                    "name": name,
                    "status": "timeout",
                    "time_s": round(time.perf_counter() - t0, 6),
                    "error": f"exceeded per-circuit timeout of {timeout:g}s",
                    "bundle_path": _timeout_bundle(payload, bundle_dir, timeout),
                }
                break
            if not proc.is_alive():
                # One grace read: the row may have landed between polls.
                try:
                    row = out_queue.get(timeout=0.5)
                except queue_mod.Empty:
                    row = _worker_crashed_row(
                        name, proc.exitcode, time.perf_counter() - t0
                    )
                break
    proc.join(timeout=1.0)
    if proc.is_alive():  # pragma: no cover - defensive cleanup
        proc.terminate()
        proc.join()
    row.setdefault("time_s", round(time.perf_counter() - t0, 6))
    return row


def _worker_crashed_row(
    name: str, exitcode: Optional[int], elapsed_s: float
) -> Dict[str, Any]:
    """Structured row for a worker that died without reporting a result.

    Mirrors :class:`repro.guard.errors.WorkerCrashed`: the raw exit code,
    the decoded signal name (negative exit codes are deaths-by-signal),
    and a status supervisors can key their retry logic off.
    """
    sig = signal_name(exitcode)
    detail = f"signal {sig}" if sig else f"exit code {exitcode}"
    return {
        "name": name,
        "status": "worker_crashed",
        "time_s": round(elapsed_s, 6),
        "error": f"worker died without reporting ({detail})",
        "exitcode": exitcode,
        "signal": sig,
        "bundle_path": None,
    }


def worker_crashed_error(row: Dict[str, Any]) -> "WorkerCrashed":
    """Lift a ``worker_crashed`` row into the exception taxonomy."""
    from repro.guard.errors import WorkerCrashed

    return WorkerCrashed(
        row.get("error") or "worker died without reporting",
        exitcode=row.get("exitcode"),
    )


def _timeout_bundle(
    payload: Dict[str, Any], bundle_dir: Optional[str], timeout: float
) -> Optional[str]:
    """Preserve a timed-out work item's input as a (non-shrunk) bundle."""
    if not bundle_dir:
        return None
    try:
        instance = _build_instance(payload)
        return write_bundle(
            instance,
            failure_kind="timeout",
            failure_message=f"exceeded per-circuit timeout of {timeout:g}s",
            options=options_from_dict(payload.get("options", {})),
            bundle_dir=bundle_dir,
        )
    except Exception:  # noqa: BLE001 - bundling best-effort on timeout
        return None


def run_batch(
    payloads: List[Dict[str, Any]],
    timeout_s: Optional[float] = None,
    bundle_dir: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Run a list of work items, each isolated; one row per item, always.

    Items run sequentially (measurement noise beats parallel speed for the
    benchmark harness); a timeout or crash in one item never affects the
    rest of the batch.
    """
    return [run_one(p, timeout_s=timeout_s, bundle_dir=bundle_dir) for p in payloads]


def run_pool(
    payloads: List[Dict[str, Any]],
    jobs: int,
    bundle_dir: Optional[str] = None,
    timeout_s: Optional[float] = None,
) -> List[Dict[str, Any]]:
    """Run work items on up to ``jobs`` concurrent worker processes.

    The parallel counterpart of :func:`run_batch`, used by
    :func:`repro.hf.espresso_hf_per_output` for independent per-output
    sub-runs and by the serve daemon's load tooling.  Rows come back in
    payload order, so the caller's merge is deterministic regardless of
    scheduling.  With ``jobs <= 1`` (or a single item) the items run in
    this process — identical semantics, no pool overhead.

    Each item gets its *own* single-shot process (a sliding window of up
    to ``jobs`` of them), not a slot in a long-lived ``multiprocessing``
    pool.  That costs one cheap fork per item and buys exact crash
    attribution: a worker killed by a signal yields a structured
    ``worker_crashed`` row for *its* item — exit code and signal included —
    while every other item completes normally.  A shared pool cannot
    promise that (a dead pool worker can hang ``Pool.map`` forever), and a
    hang is the one failure mode a supervisor cannot retry its way out of.
    A per-item ``timeout_s`` payload key (or the argument, as a default)
    terminates overrunning workers just like :func:`run_one`.
    """
    if bundle_dir:
        payloads = [dict(p, bundle_dir=bundle_dir) for p in payloads]
    jobs = min(int(jobs), len(payloads))
    if jobs <= 1:
        return [minimize_payload(p) for p in payloads]
    ctx = multiprocessing.get_context()
    rows: List[Optional[Dict[str, Any]]] = [None] * len(payloads)
    active: Dict[int, Any] = {}  # idx -> (proc, queue, t0, deadline)
    next_idx = 0
    while active or next_idx < len(payloads):
        while next_idx < len(payloads) and len(active) < jobs:
            payload = payloads[next_idx]
            out_queue = ctx.Queue()
            proc = ctx.Process(
                target=_child_main, args=(payload, out_queue), daemon=True
            )
            t0 = time.perf_counter()
            proc.start()
            timeout = payload.get("timeout_s") or timeout_s
            deadline = None if timeout is None else t0 + timeout
            active[next_idx] = (proc, out_queue, t0, deadline)
            next_idx += 1
        progressed = False
        for idx in list(active):
            proc, out_queue, t0, deadline = active[idx]
            row: Optional[Dict[str, Any]] = None
            try:
                row = out_queue.get_nowait()
            except queue_mod.Empty:
                now = time.perf_counter()
                if deadline is not None and now >= deadline:
                    proc.terminate()
                    proc.join()
                    timeout = deadline - t0
                    row = {
                        "name": payloads[idx].get("name", "instance"),
                        "status": "timeout",
                        "time_s": round(now - t0, 6),
                        "error": "exceeded per-circuit timeout of "
                        f"{timeout:g}s",
                        "bundle_path": _timeout_bundle(
                            payloads[idx],
                            payloads[idx].get("bundle_dir"),
                            timeout,
                        ),
                    }
                elif not proc.is_alive():
                    try:
                        row = out_queue.get(timeout=0.5)
                    except queue_mod.Empty:
                        row = _worker_crashed_row(
                            payloads[idx].get("name", "instance"),
                            proc.exitcode,
                            now - t0,
                        )
            if row is not None:
                row.setdefault("time_s", round(time.perf_counter() - t0, 6))
                rows[idx] = row
                proc.join(timeout=1.0)
                if proc.is_alive():  # pragma: no cover - defensive cleanup
                    proc.terminate()
                    proc.join()
                del active[idx]
                progressed = True
        if not progressed and active:
            time.sleep(0.01)
    return rows
