"""Phase-boundary invariant checkpoints (checked mode).

Espresso-HF's contract is that the result is heuristic *only in cover
cardinality* — the cover itself must always satisfy the three Theorem 2.11
conditions.  Hazard verification is intractable in general (Ikenmeyer et
al.), so the only trustworthy run is a machine-checked one: with
``EspressoHFOptions(checked=True)`` the driver calls
:func:`check_phase` after every operator (EXPAND, IRREDUNDANT, REDUCE,
LAST_GASP, ESSENTIALS, MAKE_PRIME) and :func:`check_final` on the finished
cover.

``check_phase`` is a *fast incremental* check on the bitset engine:

1. **Cross-check** — every cover cube's coverage mask from the bitset
   engine (:class:`repro.hf.coverage.CoverageIndex`) is recomputed with the
   scalar per-pair containment predicate.  A divergence means the engine
   (or its caches) is wrong; the context falls back to the scalar coverage
   path for the rest of the run and the event lands in
   :class:`repro.perf.PerfCounters` — the run *continues correctly* on the
   slow path instead of silently producing a wrong cover.
2. **Validity** — every cube must be a dhf-implicant of each output it
   drives (conditions (a)+(c) of Theorem 2.11, via
   :meth:`HFContext.is_dhf_implicant`), and the cover plus essentials must
   contain every canonical required cube (condition (b), one OR/AND over
   the scalar masks).

A validity failure is an implementation bug and raises
:class:`~repro.guard.errors.InvariantViolation`; the guarded wrapper
(:mod:`repro.guard.runner`) serializes and shrinks a repro bundle for it.

``check_final`` re-verifies the finished cover with the full
:func:`repro.hazards.verify.verify_hazard_free_cover` oracle — the slow,
engine-independent ground truth over the *original* (non-canonical)
required cubes.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.guard.errors import InvariantViolation
from repro.hazards.verify import verify_hazard_free_cover


def scalar_coverage_mask(cube, reqs: Sequence, positions: Sequence[int]) -> int:
    """Ground-truth coverage mask of one cover cube, computed per pair.

    Independent of the coverage engine and all of its caches: bit
    ``positions[i]`` is set iff ``cube`` has ``reqs[i]``'s output and its
    input part contains the canonical input part.
    """
    mask = 0
    inbits = cube.inbits
    outbits = cube.outbits
    for q, pos in zip(reqs, positions):
        if (outbits >> q.output) & 1:
            q_in = q.canonical.inbits
            if q_in & inbits == q_in:
                mask |= 1 << pos
    return mask


def check_phase(ctx, phase: str, cubes: Sequence, reqs: Sequence) -> None:
    """Assert the Theorem 2.11 conditions after one operator.

    ``cubes`` must cover every canonical required cube in ``reqs``.
    Cross-check divergences trigger the scalar fallback and are recorded;
    genuine violations raise :class:`InvariantViolation`.
    """
    perf = ctx.perf
    perf.invariant_checks += 1
    cov = ctx.coverage
    positions = cov.positions(reqs)
    sel = cov.selection_mask(reqs)
    all_cubes = list(cubes)

    # 1. scalar-vs-bitset cross-check (and coverage accumulation).
    covered = 0
    diverged = False
    for c in all_cubes:
        engine_mask = cov.covered_bits(c.inbits, c.outbits) & sel
        scalar_mask = scalar_coverage_mask(c, reqs, positions) & sel
        if engine_mask != scalar_mask:
            diverged = True
            perf.crosscheck_divergences += 1
        covered |= scalar_mask
    if diverged:
        ctx.activate_scalar_fallback(phase)
        # Re-derive the engine masks on the scalar path; a divergence that
        # survives the fallback is a real invariant problem, not a cache bug.
        for c in all_cubes:
            engine_mask = cov.covered_bits(c.inbits, c.outbits) & sel
            scalar_mask = scalar_coverage_mask(c, reqs, positions) & sel
            if engine_mask != scalar_mask:
                raise InvariantViolation(
                    phase,
                    [
                        "coverage cross-check divergence survives scalar "
                        f"fallback for cube {c.input_string()}"
                    ],
                )

    violations: List[str] = []
    # 2a. every cube a dhf-implicant of its outputs ((a) + (c)).
    for c in cubes:
        if c.outbits and not ctx.is_dhf_implicant(c, c.outbits):
            violations.append(
                f"cube {c.input_string()} is not a dhf-implicant of its "
                f"output set {c.outbits:#x}"
            )
    # 2b. required-cube containment ((b)).
    missing = sel & ~covered
    if missing:
        for q, pos in zip(reqs, positions):
            if (missing >> pos) & 1:
                violations.append(f"required cube {q} uncovered")
                if len(violations) >= 8:
                    break
    if violations:
        raise InvariantViolation(phase, violations)


def check_final(ctx, instance, cover, phase: str = "final") -> None:
    """Full Theorem 2.11 oracle over the finished cover (checked mode)."""
    ctx.perf.invariant_checks += 1
    failures = verify_hazard_free_cover(instance, cover, collect_all=False)
    if failures:
        raise InvariantViolation(phase, [str(v) for v in failures])


class InvariantCheckHook:
    """Pipeline hook running :func:`check_phase` after each checked pass.

    Active only when the state carries a checked-mode context
    (``state.ctx.checked``).  The step spec supplies what to verify:
    ``check_cubes(state)`` for the cover cubes (default ``state.f``) and
    ``check_reqs(state)`` for the required cubes they must keep covering —
    a step without ``check_reqs`` is skipped, since the Theorem 2.11
    conditions are only meaningful against a required-cube set.  See
    :mod:`repro.pipeline` for the hook protocol.
    """

    def pass_started(self, step, state) -> None:
        pass

    def pass_finished(self, step, state, seconds: float) -> None:
        ctx = state.ctx
        if ctx is None or not getattr(ctx, "checked", False) or not step.check:
            return
        reqs = step.check_reqs(state) if step.check_reqs is not None else None
        if reqs is None:
            return
        cubes = (
            step.check_cubes(state) if step.check_cubes is not None else state.f
        )
        check_phase(ctx, step.name, cubes, reqs)

    def round_finished(self, fixed_point, state) -> None:
        pass

    def fixed_point_finished(self, fixed_point, state, rounds: int) -> None:
        pass
