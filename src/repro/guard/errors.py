"""Structured error taxonomy for the guarded execution runtime.

Every failure the minimizer stack can produce maps onto one subclass of
:class:`HFError`, so callers (the CLI, the batch runner, service frontends)
can branch on *kind* of failure instead of string-matching messages:

===========================  ==================================================
class                        meaning
===========================  ==================================================
:class:`NoSolutionError`     the instance admits no hazard-free cover
                             (Theorem 4.1) — a property of the input, not a
                             fault
:class:`BudgetExceeded`      a :class:`~repro.guard.budget.RunBudget` ran out
                             before the canonical cover existed (once it does,
                             budget exhaustion degrades gracefully instead of
                             raising)
:class:`InvariantViolation`  checked mode caught a cover that breaks a
                             Theorem 2.11 condition at a phase boundary — an
                             implementation bug, never user error
:class:`MalformedInstance`   the input itself is ill-formed (bad PLA text,
                             inconsistent ON/OFF sets, function hazards)
:class:`WorkerCrashed`       an isolated worker process died without
                             reporting a result (signal, OOM kill, hard
                             interpreter crash) — the *worker* failed, not
                             the input, so supervisors may retry
===========================  ==================================================

The classes double-inherit from the built-in exceptions the pre-guard code
raised (``RuntimeError`` / ``ValueError``), so existing ``except`` clauses
keep working.  This module must stay import-light: it is imported by
``repro.hf`` and ``repro.pla`` and must never import them back.
"""

from __future__ import annotations

from typing import List, Optional


class HFError(Exception):
    """Base class of every structured Espresso-HF failure."""

    #: CLI exit code associated with this failure kind (see repro.cli)
    exit_code: int = 1


class NoSolutionError(HFError, RuntimeError):
    """Raised when the instance admits no hazard-free cover (Theorem 4.1)."""

    exit_code = 2


class BudgetExceeded(HFError, RuntimeError):
    """A run budget was exhausted before any valid cover existed.

    Raised cooperatively by :meth:`repro.guard.budget.RunBudget.checkpoint`.
    Once the canonical cover is available the driver *catches* this and
    returns a degraded result instead, so user code normally only sees the
    ``status`` field, not the exception.
    """

    exit_code = 5

    def __init__(self, reason: str, phase: str = ""):
        super().__init__(f"{reason}" + (f" (during {phase})" if phase else ""))
        self.reason = reason
        self.phase = phase


class InvariantViolation(HFError, AssertionError):
    """Checked mode caught a Theorem 2.11 violation at a phase boundary.

    Carries the phase name, the individual violation descriptions, and —
    once the guarded wrapper has serialized one — the path of the repro
    bundle that replays the failure.
    """

    exit_code = 3

    def __init__(
        self,
        phase: str,
        violations: Optional[List[str]] = None,
        bundle_path: Optional[str] = None,
    ):
        self.phase = phase
        self.violations = list(violations or [])
        self.bundle_path = bundle_path
        detail = "; ".join(self.violations[:3]) or "unspecified violation"
        suffix = f" [bundle: {bundle_path}]" if bundle_path else ""
        super().__init__(f"invariant violated after {phase}: {detail}{suffix}")


class MalformedInstance(HFError, ValueError):
    """The input instance or file is ill-formed (user error, exit code 4)."""

    exit_code = 4


class WorkerCrashed(HFError, RuntimeError):
    """An isolated worker process died without reporting a result.

    Carries the child's raw ``exitcode`` (negative = killed by that signal
    number, per :attr:`multiprocessing.Process.exitcode`) and the decoded
    ``signal`` name when one applies.  Unlike :class:`MalformedInstance`
    or :class:`NoSolutionError` this says nothing about the *input*: the
    worker died, so a supervisor is entitled to retry the job on a fresh
    worker — which is exactly what :mod:`repro.serve` does, with bounded
    backoff and a poison-job quarantine for inputs that kill repeatedly.
    """

    exit_code = 6

    def __init__(self, message: str, exitcode: Optional[int] = None):
        super().__init__(message)
        self.exitcode = exitcode
        self.signal = signal_name(exitcode)


def signal_name(exitcode: Optional[int]) -> Optional[str]:
    """Decode a negative :attr:`Process.exitcode` into a signal name."""
    if exitcode is None or exitcode >= 0:
        return None
    try:
        import signal as _signal

        return _signal.Signals(-exitcode).name
    except (ValueError, ImportError):  # pragma: no cover - exotic signal
        return f"signal {-exitcode}"
