"""Command-line interface: ``espresso-hf``.

Reads a hazard-free minimization instance from an extended PLA file
(``.type fr`` with ``.trans`` lines, see :mod:`repro.pla`), minimizes it,
and writes the cover back as a PLA.

Examples::

    espresso-hf input.pla                     # minimize, print cover
    espresso-hf input.pla -o out.pla          # write the result
    espresso-hf input.pla --exact             # exact flow instead
    espresso-hf input.pla --check-existence   # Theorem 4.1 only
    espresso-hf input.pla --verify            # re-verify via Theorem 2.11
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.exact import exact_hazard_free_minimize, ExactBudget, ExactFailure
from repro.hazards.existence import existence_report
from repro.hazards.verify import verify_hazard_free_cover
from repro.hf import espresso_hf, EspressoHFOptions, NoSolutionError
from repro.pla import read_pla, format_cover, write_pla


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="espresso-hf",
        description="Heuristic hazard-free two-level logic minimization "
        "(Theobald/Nowick/Wu, DAC 1996).",
    )
    parser.add_argument("input", help="PLA file (.type fr with .trans lines)")
    parser.add_argument("-o", "--output", help="write the minimized cover here")
    parser.add_argument(
        "--exact",
        action="store_true",
        help="run the exact flow (all primes -> dhf-primes -> MINCOV)",
    )
    parser.add_argument(
        "--exact-time-limit",
        type=float,
        default=300.0,
        metavar="S",
        help="wall-clock budget for the exact flow (default 300s)",
    )
    parser.add_argument(
        "--check-existence",
        action="store_true",
        help="only decide whether a hazard-free cover exists (Theorem 4.1)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="verify the result against Theorem 2.11 after minimizing",
    )
    parser.add_argument(
        "--no-essentials",
        action="store_true",
        help="disable essential equivalence-class detection",
    )
    parser.add_argument(
        "--no-last-gasp", action="store_true", help="disable the LAST_GASP step"
    )
    parser.add_argument(
        "--no-make-prime",
        action="store_true",
        help="skip the final MAKE_DHF_PRIME pass",
    )
    parser.add_argument(
        "--stats", action="store_true", help="print per-phase statistics"
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="print a full instance/cover report (sizes, literals, PLA area)",
    )
    parser.add_argument(
        "--simulate",
        type=int,
        metavar="N",
        default=0,
        help="Monte-Carlo check the result with N random delay trials per "
        "specified transition and output",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        pla = read_pla(args.input)
        instance = pla.to_instance()
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.check_existence:
        report = existence_report(instance)
        if report.exists:
            print("a hazard-free cover exists")
            return 0
        print("NO hazard-free cover exists; offending required cubes:")
        for q in report.failures:
            print(f"   {q.cube.input_string()} (output {q.output})")
        return 1

    try:
        if args.exact:
            result = exact_hazard_free_minimize(
                instance, budget=ExactBudget(time_limit_s=args.exact_time_limit)
            )
            cover = result.cover
            if args.stats:
                print(f"# dhf-primes: {result.num_dhf_primes}", file=sys.stderr)
                for phase, seconds in result.phase_seconds.items():
                    print(f"# {phase}: {seconds:.2f}s", file=sys.stderr)
        else:
            options = EspressoHFOptions(
                use_essentials=not args.no_essentials,
                use_last_gasp=not args.no_last_gasp,
                make_prime=not args.no_make_prime,
            )
            result = espresso_hf(instance, options)
            cover = result.cover
            if args.stats:
                print(f"# {result.summary()}", file=sys.stderr)
                for phase, seconds in result.phase_seconds.items():
                    print(f"# {phase}: {seconds:.2f}s", file=sys.stderr)
                for line in result.counters.summary_lines():
                    print(f"# {line}", file=sys.stderr)
    except NoSolutionError as exc:
        print(f"no hazard-free cover exists: {exc}", file=sys.stderr)
        return 1
    except ExactFailure as exc:
        print(f"exact flow failed: {exc}", file=sys.stderr)
        return 3

    if args.verify:
        violations = verify_hazard_free_cover(instance, cover)
        if violations:
            print("VERIFICATION FAILED:", file=sys.stderr)
            for v in violations:
                print(f"   {v}", file=sys.stderr)
            return 4
        print("# verified hazard-free (Theorem 2.11)", file=sys.stderr)

    if args.report:
        from repro.report import minimization_report

        counters = getattr(result, "counters", None)
        print(
            minimization_report(instance, cover, counters=counters),
            file=sys.stderr,
        )

    if args.simulate > 0:
        from repro.simulate import SopNetwork, find_glitch

        glitches = 0
        for j in range(instance.n_outputs):
            network = SopNetwork(cover, output=j)
            for t in instance.transitions:
                if find_glitch(network, t, trials=args.simulate) is not None:
                    glitches += 1
                    print(
                        f"GLITCH: output {j} on transition {t}", file=sys.stderr
                    )
        if glitches:
            return 5
        print(
            f"# simulation clean ({args.simulate} delay trials per "
            "transition/output)",
            file=sys.stderr,
        )

    text = format_cover(cover, pla_type="f", name=f"{instance.name} minimized")
    if args.output:
        write_pla(cover, args.output, pla_type="f", name=f"{instance.name} minimized")
    else:
        print(text, end="")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
