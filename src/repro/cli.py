"""Command-line interface: ``espresso-hf``.

Reads a hazard-free minimization instance from an extended PLA file
(``.type fr`` with ``.trans`` lines, see :mod:`repro.pla`), minimizes it,
and writes the cover back as a PLA.

Examples::

    espresso-hf input.pla                     # minimize, print cover
    espresso-hf input.pla -o out.pla          # write the result
    espresso-hf input.pla --exact             # exact flow instead
    espresso-hf input.pla --check-existence   # Theorem 4.1 only
    espresso-hf input.pla --verify            # re-verify via Theorem 2.11
    espresso-hf input.pla --checked           # phase-boundary invariants on
    espresso-hf input.pla --timeout 30        # isolated run, 30s wall cap
    espresso-hf input.pla --jobs 4            # per-output mode, 4 workers
    espresso-hf input.pla --pipeline essentials,loop   # skip MAKE_DHF_PRIME
    espresso-hf input.pla --trace-out t.json  # Chrome trace of the run
    espresso-hf serve --port 7777             # minimization-as-a-service
                                              # daemon (see docs/SERVICE.md)
    espresso-hf detect circuit.net            # gate-level hazard detection
    espresso-hf transform circuit.net -o f.net  # hazard-free u(f) rewrite
                                              # (see docs/DETECTION.md)

Exit codes (see ``docs/FAILURES.md``):

====  =========================================================
0     success (including ``--check-existence`` with a positive answer)
1     usage error or unexpected internal failure
2     no hazard-free cover exists (Theorem 4.1)
3     verification failed (Theorem 2.11 / checked-mode invariant / glitch)
4     malformed input (bad PLA text or ill-formed instance)
5     timeout or resource budget exhausted
6     worker process crashed (died without reporting a result)
====  =========================================================
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.exact import exact_hazard_free_minimize, ExactBudget, ExactFailure
from repro.guard.errors import (
    InvariantViolation,
    MalformedInstance,
    NoSolutionError,
)
from repro.hazards.existence import existence_report
from repro.hazards.verify import verify_hazard_free_cover
from repro.hf import EspressoHFOptions
from repro.pla import format_cover, parse_pla, read_pla, write_pla

EXIT_OK = 0
EXIT_USAGE = 1
EXIT_NO_SOLUTION = 2
EXIT_VERIFY_FAILED = 3
EXIT_MALFORMED = 4
EXIT_TIMEOUT = 5
EXIT_WORKER_CRASHED = 6


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="espresso-hf",
        description="Heuristic hazard-free two-level logic minimization "
        "(Theobald/Nowick/Wu, DAC 1996).",
    )
    parser.add_argument("input", help="PLA file (.type fr with .trans lines)")
    parser.add_argument("-o", "--output", help="write the minimized cover here")
    parser.add_argument(
        "--exact",
        action="store_true",
        help="run the exact flow (all primes -> dhf-primes -> MINCOV)",
    )
    parser.add_argument(
        "--exact-time-limit",
        type=float,
        default=300.0,
        metavar="S",
        help="wall-clock budget for the exact flow (default 300s)",
    )
    parser.add_argument(
        "--check-existence",
        action="store_true",
        help="only decide whether a hazard-free cover exists (Theorem 4.1)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="verify the result against Theorem 2.11 after minimizing",
    )
    parser.add_argument(
        "--checked",
        action="store_true",
        help="guarded mode: assert the Theorem 2.11 invariants at every "
        "phase boundary and cross-check the coverage engine (slower)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="run the minimizer in an isolated subprocess with this "
        "wall-clock cap; exceeding it exits with code 5",
    )
    parser.add_argument(
        "--bundle-dir",
        metavar="DIR",
        default="artifacts",
        help="directory for failure repro bundles (default: artifacts/)",
    )
    parser.add_argument(
        "--no-essentials",
        action="store_true",
        help="disable essential equivalence-class detection",
    )
    parser.add_argument(
        "--no-last-gasp", action="store_true", help="disable the LAST_GASP step"
    )
    parser.add_argument(
        "--no-make-prime",
        action="store_true",
        help="skip the final MAKE_DHF_PRIME pass",
    )
    parser.add_argument(
        "--pipeline",
        metavar="STAGES",
        help="comma-separated pipeline stage list (essentials,loop,"
        "last_gasp,make_prime); overrides the default stage sequence",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=1,
        help="minimize each output independently on N parallel worker "
        "processes (per-output mode; N=1 keeps the native multi-output "
        "algorithm)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write a Chrome trace (chrome://tracing JSON) of the run: "
        "one span per pipeline pass/group/fixed point, worker spans "
        "included in --jobs and --timeout modes; see docs/OBSERVABILITY.md",
    )
    parser.add_argument(
        "--session-in",
        metavar="FILE",
        help="warm-start from a saved minimization session (JSON written "
        "by --session-out); an unusable session degrades to a cold run — "
        "see docs/WARMSTART.md",
    )
    parser.add_argument(
        "--session-out",
        metavar="FILE",
        help="capture this run's minimization session for later "
        "--session-in warm starts (heuristic single-process mode only)",
    )
    parser.add_argument(
        "--stats", action="store_true", help="print per-phase statistics"
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="print a full instance/cover report (sizes, literals, PLA area)",
    )
    parser.add_argument(
        "--simulate",
        type=int,
        metavar="N",
        default=0,
        help="Monte-Carlo check the result with N random delay trials per "
        "specified transition and output",
    )
    return parser


def _heuristic_options(args) -> EspressoHFOptions:
    passes = None
    if args.pipeline:
        from repro.hf.espresso_hf import validate_stages

        stages = tuple(
            s.strip() for s in args.pipeline.split(",") if s.strip()
        )
        try:
            passes = validate_stages(stages)
        except ValueError as exc:
            print(f"error: --pipeline: {exc}", file=sys.stderr)
            raise SystemExit(EXIT_USAGE)
    return EspressoHFOptions(
        use_essentials=not args.no_essentials,
        use_last_gasp=not args.no_last_gasp,
        make_prime=not args.no_make_prime,
        checked=args.checked,
        jobs=max(1, args.jobs),
        passes=passes,
    )


def _run_isolated(args, instance, pla_text: str):
    """Minimize in a subprocess under ``--timeout``; returns (cover, row).

    Exits (via SystemExit) with the taxonomy code when the run does not
    produce a cover.
    """
    from repro.guard.runner import pla_payload, run_one
    from repro.obs import current_tracer

    tracer = current_tracer()
    payload = pla_payload(
        pla_text,
        name=instance.name,
        options=_heuristic_options(args),
        checked=args.checked,
        verify=False,  # verification runs in the parent, on the real cover
        collect_spans=tracer is not None,
    )
    row = run_one(payload, timeout_s=args.timeout, bundle_dir=args.bundle_dir)
    if tracer is not None:
        tracer.adopt(row.get("spans") or [], tid=1)
    status = row["status"]
    if status == "timeout":
        print(f"error: {row['error']}", file=sys.stderr)
        if row.get("bundle_path"):
            print(f"repro bundle: {row['bundle_path']}", file=sys.stderr)
        raise SystemExit(EXIT_TIMEOUT)
    if status == "no_solution":
        print(f"no hazard-free cover exists: {row['error']}", file=sys.stderr)
        raise SystemExit(EXIT_NO_SOLUTION)
    if status == "invariant_violation":
        print(f"error: {row['error']}", file=sys.stderr)
        if row.get("bundle_path"):
            print(f"repro bundle: {row['bundle_path']}", file=sys.stderr)
        raise SystemExit(EXIT_VERIFY_FAILED)
    if status in ("malformed",):
        print(f"error: {row['error']}", file=sys.stderr)
        raise SystemExit(EXIT_MALFORMED)
    if status == "worker_crashed":
        print(f"error: {row['error']}", file=sys.stderr)
        raise SystemExit(EXIT_WORKER_CRASHED)
    if status == "crash":
        print(f"error: worker failed:\n{row['error']}", file=sys.stderr)
        raise SystemExit(EXIT_USAGE)
    if status != "ok":
        # degraded / budget_exceeded: the cover is still valid — warn only.
        print(f"warning: run finished with status={status}", file=sys.stderr)
    cover = parse_pla(row["cover_pla"], name=instance.name).on
    if args.stats:
        print(
            f"# {instance.name}: {row['num_cubes']} cubes, "
            f"{row['num_literals']} literals, {row['time_s']:.3f}s "
            f"(isolated run, status={status})",
            file=sys.stderr,
        )
        for phase, seconds in row.get("phase_seconds", {}).items():
            print(f"# {phase}: {seconds:.2f}s", file=sys.stderr)
    return cover, row


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "serve":
        # Minimization-as-a-service daemon (docs/SERVICE.md).  Dispatched
        # before argparse so the positional-PLA interface stays untouched.
        from repro.serve.daemon import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "detect":
        # Gate-level hazard detection for foreign netlists (docs/DETECTION.md).
        from repro.detect.cli import detect_main

        return detect_main(argv[1:])
    if argv and argv[0] == "transform":
        # Hazard-free u(f) rewrite (docs/DETECTION.md).
        from repro.detect.cli import transform_main

        return transform_main(argv[1:])
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors and 0 on --help; remap usage
        # errors onto the taxonomy (1 = usage) and pass --help through.
        return EXIT_OK if exc.code in (0, None) else EXIT_USAGE

    if not args.trace_out:
        return _run_command(args, tracer=None)

    # --trace-out: run under an active span tracer and export whatever
    # was captured on every exit path — a trace of a failed run is
    # exactly when you want one.
    from repro.obs import Tracer, activate, write_chrome_trace

    tracer = Tracer()
    with activate(tracer):
        code = _run_command(args, tracer=tracer)
    try:
        write_chrome_trace(args.trace_out, tracer)
    except OSError as exc:
        print(f"error: cannot write {args.trace_out}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.stats:
        from repro.obs import top_spans_report

        for line in top_spans_report(tracer):
            print(f"# {line}", file=sys.stderr)
    return code


def _run_command(args, tracer) -> int:
    """Parse the instance and execute the selected mode (see :func:`main`)."""
    try:
        pla = read_pla(args.input)
        instance = pla.to_instance()
    except (MalformedInstance, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_MALFORMED
    except OSError as exc:
        print(f"error: cannot read {args.input}: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if args.check_existence:
        report = existence_report(instance)
        if report.exists:
            print("a hazard-free cover exists")
            return EXIT_OK
        print("NO hazard-free cover exists; offending required cubes:")
        for q in report.failures:
            print(f"   {q.cube.input_string()} (output {q.output})")
        return EXIT_NO_SOLUTION

    if (args.session_in or args.session_out) and (
        args.exact or args.timeout or args.jobs > 1
    ):
        print(
            "warning: --session-in/--session-out only apply to the "
            "heuristic single-process mode; ignored",
            file=sys.stderr,
        )
    result = None
    try:
        if args.exact:
            result = exact_hazard_free_minimize(
                instance, budget=ExactBudget(time_limit_s=args.exact_time_limit)
            )
            if result.status == "no_solution":
                print(f"NO hazard-free cover exists: {result.detail}",
                      file=sys.stderr)
                return EXIT_NO_SOLUTION
            cover = result.cover
            if args.stats:
                print(f"# dhf-primes: {result.num_dhf_primes}", file=sys.stderr)
                for phase, seconds in result.phase_seconds.items():
                    print(f"# {phase}: {seconds:.2f}s", file=sys.stderr)
        elif args.timeout:
            from repro.pla.writer import format_pla

            cover, _row = _run_isolated(args, instance, format_pla(instance))
        elif args.jobs > 1:
            from repro.hf.espresso_hf import espresso_hf_per_output

            result = espresso_hf_per_output(instance, _heuristic_options(args))
            cover = result.cover
            if result.status != "ok":
                print(
                    f"warning: run finished with status={result.status} "
                    "(the cover is hazard-free but may not be locally "
                    "minimal); see docs/FAILURES.md",
                    file=sys.stderr,
                )
            if args.stats:
                print(f"# {result.summary()}", file=sys.stderr)
                for phase, seconds in result.phase_seconds.items():
                    print(f"# {phase}: {seconds:.2f}s", file=sys.stderr)
                for line in result.counters.summary_lines():
                    print(f"# {line}", file=sys.stderr)
        else:
            from repro.guard.runner import guarded_espresso_hf

            warm_start = None
            if args.session_in:
                from repro.session import MinimizationSession

                try:
                    warm_start = MinimizationSession.load(args.session_in)
                except (OSError, ValueError) as exc:
                    print(
                        f"warning: ignoring --session-in ({exc}); "
                        "running cold",
                        file=sys.stderr,
                    )
            result = guarded_espresso_hf(
                instance,
                _heuristic_options(args),
                bundle_dir=args.bundle_dir if args.checked else None,
                warm_start=warm_start,
                capture_session=bool(args.session_out),
            )
            if warm_start is not None and args.stats:
                print(f"# warm start: {result.warm}", file=sys.stderr)
            if args.session_out:
                if result.session is not None:
                    result.session.save(args.session_out)
                else:
                    print(
                        "warning: no session captured "
                        f"(status={result.status}); {args.session_out} "
                        "not written",
                        file=sys.stderr,
                    )
            cover = result.cover
            if result.status != "ok":
                print(
                    f"warning: run finished with status={result.status} "
                    "(the cover is hazard-free but may not be locally "
                    "minimal); see docs/FAILURES.md",
                    file=sys.stderr,
                )
            if args.stats:
                print(f"# {result.summary()}", file=sys.stderr)
                for phase, seconds in result.phase_seconds.items():
                    print(f"# {phase}: {seconds:.2f}s", file=sys.stderr)
                for line in result.counters.summary_lines():
                    print(f"# {line}", file=sys.stderr)
    except SystemExit as exc:
        return int(exc.code or 0)
    except NoSolutionError as exc:
        print(f"no hazard-free cover exists: {exc}", file=sys.stderr)
        return EXIT_NO_SOLUTION
    except InvariantViolation as exc:
        print(f"error: {exc}", file=sys.stderr)
        if exc.bundle_path:
            print(f"repro bundle: {exc.bundle_path}", file=sys.stderr)
        return EXIT_VERIFY_FAILED
    except ExactFailure as exc:
        print(f"exact flow failed (budget): {exc}", file=sys.stderr)
        return EXIT_TIMEOUT

    if args.verify:
        violations = verify_hazard_free_cover(instance, cover)
        if violations:
            print("VERIFICATION FAILED:", file=sys.stderr)
            for v in violations:
                print(f"   {v}", file=sys.stderr)
            return EXIT_VERIFY_FAILED
        print("# verified hazard-free (Theorem 2.11)", file=sys.stderr)

    if args.report:
        from repro.report import minimization_report

        counters = getattr(result, "counters", None)
        status = getattr(result, "status", "ok")
        print(
            minimization_report(
                instance,
                cover,
                counters=counters,
                status=status,
                phase_seconds=getattr(result, "phase_seconds", None),
            ),
            file=sys.stderr,
        )

    if args.simulate > 0:
        from repro.simulate import SopNetwork, find_glitch

        glitches = 0
        for j in range(instance.n_outputs):
            network = SopNetwork(cover, output=j)
            for t in instance.transitions:
                if find_glitch(network, t, trials=args.simulate) is not None:
                    glitches += 1
                    print(
                        f"GLITCH: output {j} on transition {t}", file=sys.stderr
                    )
        if glitches:
            return EXIT_VERIFY_FAILED
        print(
            f"# simulation clean ({args.simulate} delay trials per "
            "transition/output)",
            file=sys.stderr,
        )

    text = format_cover(cover, pla_type="f", name=f"{instance.name} minimized")
    if args.output:
        write_pla(cover, args.output, pla_type="f", name=f"{instance.name} minimized")
    else:
        print(text, end="")
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
