"""Minimal plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import List, Optional, Sequence


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: Optional[str] = None
) -> str:
    """Render an aligned plain-text table (monospace)."""
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells.append([str(v) for v in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "  "
    lines.append(sep.join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep.join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(sep.join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
