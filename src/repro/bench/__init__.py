"""Benchmark harness: regenerates every table and figure of the paper.

* :mod:`repro.bench.figure1` — the cost-of-hazard-freedom example
  (minimal hazard-free cover of 5 products vs minimal unconstrained cover
  of 4).
* :mod:`repro.bench.figure8` — the main experimental table: exact vs
  Espresso-HF over the fifteen-circuit suite.
* :mod:`repro.bench.tables` — plain-text table rendering.

Each experiment is runnable standalone (``python -m repro.bench.figure8``)
and is also wrapped by a pytest-benchmark module under ``benchmarks/``.
"""

from repro.bench.figure1 import figure1_instance, figure1_experiment
from repro.bench.figure8 import run_figure8, Figure8Row, DEFAULT_EXACT_BUDGET

__all__ = [
    "figure1_instance",
    "figure1_experiment",
    "run_figure8",
    "Figure8Row",
    "DEFAULT_EXACT_BUDGET",
]
