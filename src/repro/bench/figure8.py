"""The main experimental table (paper Figure 8): exact vs Espresso-HF.

For every circuit of the suite this harness runs the exact flow under a
stage budget (the stand-in for the paper's 40-hour limit) and Espresso-HF,
then prints the paper's columns:

======  ========================================================
column  meaning
======  ========================================================
i/o     inputs / outputs of the minimization problem
#p      number of dhf-prime implicants (exact flow; ``*`` = failed)
#c      cover cardinality (per minimizer; ``*`` = failed)
time    wall-clock seconds (the paper reports minutes on a SPARC)
#e      number of essential equivalence classes (Espresso-HF)
======  ========================================================

Run standalone: ``python -m repro.bench.figure8 [circuit ...]``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import List, Optional

from repro.bench.tables import render_table
from repro.bm.benchmarks import BENCHMARKS, build_benchmark
from repro.exact import exact_hazard_free_minimize, ExactBudget, ExactFailure
from repro.hf import espresso_hf, EspressoHFOptions
from repro.hazards.verify import verify_hazard_free_cover

#: Stage budgets standing in for the paper's 40-hour exact-minimizer limit.
DEFAULT_EXACT_BUDGET = ExactBudget(
    prime_limit=50_000,
    transform_limit=100_000,
    covering_node_limit=300_000,
    time_limit_s=60.0,
)


@dataclass
class Figure8Row:
    """One line of the comparison table."""

    name: str
    n_inputs: int
    n_outputs: int
    exact_num_dhf_primes: Optional[int]
    exact_num_cubes: Optional[int]
    exact_time_s: Optional[float]
    exact_failure_stage: Optional[str]
    hf_num_essential: int
    hf_num_cubes: int
    hf_time_s: float
    hf_verified: bool

    @property
    def exact_solved(self) -> bool:
        return self.exact_failure_stage is None

    def cells(self) -> List[object]:
        star = "*"
        return [
            self.name,
            f"{self.n_inputs}/{self.n_outputs}",
            self.exact_num_dhf_primes if self.exact_solved else star,
            self.exact_num_cubes if self.exact_solved else star,
            f"{self.exact_time_s:.1f}" if self.exact_solved else star,
            self.hf_num_essential,
            self.hf_num_cubes,
            f"{self.hf_time_s:.1f}",
        ]


def run_figure8(
    names: Optional[List[str]] = None,
    exact_budget: Optional[ExactBudget] = None,
    hf_options: Optional[EspressoHFOptions] = None,
    verify: bool = True,
) -> List[Figure8Row]:
    """Run the full comparison; returns one row per circuit."""
    budget = exact_budget or DEFAULT_EXACT_BUDGET
    selected = BENCHMARKS if names is None else [
        b for b in BENCHMARKS if b.name in set(names)
    ]
    rows: List[Figure8Row] = []
    for bench in selected:
        instance = build_benchmark(bench.name)
        try:
            exact = exact_hazard_free_minimize(instance, budget=budget)
            exact_primes: Optional[int] = exact.num_dhf_primes
            exact_cubes: Optional[int] = exact.num_cubes
            exact_time: Optional[float] = exact.runtime_s
            # every suite circuit is solvable by construction, so a
            # no_solution answer would be a calibration bug worth surfacing
            exact_stage: Optional[str] = (
                None if exact.status == "ok" else exact.status
            )
            if verify and exact.status == "ok":
                assert not verify_hazard_free_cover(instance, exact.cover)
        except ExactFailure as failure:
            exact_primes = exact_cubes = exact_time = None
            exact_stage = failure.stage
        hf = espresso_hf(instance, hf_options)
        verified = True
        if verify:
            verified = not verify_hazard_free_cover(instance, hf.cover)
        rows.append(
            Figure8Row(
                name=bench.name,
                n_inputs=instance.n_inputs,
                n_outputs=instance.n_outputs,
                exact_num_dhf_primes=exact_primes,
                exact_num_cubes=exact_cubes,
                exact_time_s=exact_time,
                exact_failure_stage=exact_stage,
                hf_num_essential=hf.num_essential_classes,
                hf_num_cubes=hf.num_cubes,
                hf_time_s=hf.runtime_s,
                hf_verified=verified,
            )
        )
    return rows


def format_figure8(rows: List[Figure8Row]) -> str:
    """Render rows in the paper's table layout."""
    headers = ["name", "i/o", "#p", "exact #c", "exact time", "#e", "HF #c", "HF time"]
    return render_table(
        headers,
        [r.cells() for r in rows],
        title="Figure 8: exact vs Espresso-HF (times in seconds; * = exact failed)",
    )


def rows_to_json(rows: List[Figure8Row]) -> str:
    """Machine-readable export of the table (for CI tracking)."""
    import json
    from dataclasses import asdict

    return json.dumps([asdict(r) for r in rows], indent=2)


def main(argv: Optional[List[str]] = None) -> None:  # pragma: no cover
    args = list(argv if argv is not None else sys.argv[1:])
    json_path = None
    if "--json" in args:
        idx = args.index("--json")
        json_path = args[idx + 1]
        del args[idx : idx + 2]
    names = args or None
    rows = run_figure8(names)
    if json_path:
        with open(json_path, "w") as fh:
            fh.write(rows_to_json(rows))
        print(f"wrote {json_path}")
    print(format_figure8(rows))
    failed = [r.name for r in rows if not r.exact_solved]
    matched = [
        r.name
        for r in rows
        if r.exact_solved and r.exact_num_cubes == r.hf_num_cubes
    ]
    print()
    print(f"exact failed on : {', '.join(failed) or 'none'}")
    print(
        f"HF == exact minimum on {len(matched)}/{sum(1 for r in rows if r.exact_solved)} "
        "solvable circuits"
    )
    bad = [r.name for r in rows if not r.hf_verified]
    print(f"hazard-free verification: {'ALL OK' if not bad else 'FAILED: ' + str(bad)}")


if __name__ == "__main__":  # pragma: no cover
    main()
