"""The Figure 1 experiment: hazard-freedom costs cover cardinality.

The paper's Figure 1 shows a function whose minimal hazard-free cover has
five products while the minimal unconstrained (non-hazard-free) cover has
four.  The paper's K-map is not machine-readable from the text, so this
module carries an instance with exactly the same property, found by
exhaustive search over seeded random four-variable instances and verified
three ways in the test suite:

* the exact hazard-free minimizer returns 5 cubes, the exact unconstrained
  minimizer 4;
* the 4-cube cover violates Theorem 2.11 (uncovered required cubes and an
  illegal privileged-cube intersection);
* Monte-Carlo delay simulation finds real glitches for the 4-cube cover on
  two of the specified transitions, and none for the 5-cube cover.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cubes.cover import Cover
from repro.espresso import exact_minimize
from repro.espresso.complement import complement
from repro.exact import exact_hazard_free_minimize
from repro.hazards.instance import HazardFreeInstance
from repro.hazards.transitions import Transition


def figure1_instance() -> HazardFreeInstance:
    """The frozen 4-variable instance with a 5-vs-4 hazard-freedom gap."""
    on = Cover.from_strings(
        ["0000", "1000", "0100", "1010", "0110", "0001", "1111"]
    )
    off = Cover.from_strings(
        ["1100", "0010", "1110", "1001", "0101", "1101", "0011", "1011", "0111"]
    )
    transitions = [
        Transition((0, 0, 0, 0), (1, 1, 0, 1)),
        Transition((0, 1, 1, 1), (1, 1, 1, 1)),
        Transition((1, 1, 1, 0), (1, 0, 1, 0)),
        Transition((1, 1, 0, 0), (0, 0, 0, 0)),
    ]
    return HazardFreeInstance(on, off, transitions, name="figure1")


@dataclass
class Figure1Result:
    """Both minimal covers and their cardinalities."""

    hazard_free_cover: Cover
    plain_cover: Cover

    @property
    def hazard_free_cubes(self) -> int:
        return len(self.hazard_free_cover)

    @property
    def plain_cubes(self) -> int:
        return len(self.plain_cover)


def minimum_plain_cover(inst: HazardFreeInstance, output: int = 0) -> Cover:
    """The minimum *unconstrained* cover of the same covering objects.

    A hazard-free cover must contain every required cube in a single
    product and avoid the OFF-set; the fair non-hazard-free baseline covers
    the union of the required cubes (minterm-wise) and avoids the same
    OFF-set, with everything else don't-care — the same functional
    specification minus conditions (b)-as-single-cube and (c) of
    Theorem 2.11.
    """
    req = Cover(
        inst.n_inputs,
        [q.cube for q in inst.required_cubes() if q.output == output],
    )
    off = inst.off_for_output(output)
    dc = complement(Cover(inst.n_inputs, list(req.cubes) + list(off.cubes)))
    return exact_minimize(req, dc)


def figure1_experiment() -> Figure1Result:
    """Run both exact minimizations on the Figure 1 instance."""
    inst = figure1_instance()
    hf = exact_hazard_free_minimize(inst)
    plain = minimum_plain_cover(inst)
    return Figure1Result(hazard_free_cover=hf.cover, plain_cover=plain)


def main() -> None:  # pragma: no cover - exercised via examples
    result = figure1_experiment()
    print("Figure 1: minimal hazard-free cover vs minimal cover")
    print(f"  hazard-free : {result.hazard_free_cubes} products")
    for c in result.hazard_free_cover:
        print(f"      {c.input_string()}")
    print(f"  unconstrained: {result.plain_cubes} products")
    for c in result.plain_cover:
        print(f"      {c.input_string()}")
    print("  (paper's Figure 1: 5 vs 4 products)")


if __name__ == "__main__":  # pragma: no cover
    main()
