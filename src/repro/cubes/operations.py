"""Classic cube-algebra operations: sharp, consensus, supercube folds."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.cubes.cube import Cube
from repro.cubes.cover import Cover
from repro._compat import popcount


def cube_sharp(a: Cube, b: Cube) -> List[Cube]:
    """The sharp product ``a # b``: maximal subcubes of ``a`` disjoint from ``b``.

    Returns a (possibly overlapping) list of cubes whose union is exactly the
    set difference ``a \\ b``.  If the cubes do not intersect the result is
    ``[a]``; if ``b`` contains ``a`` the result is empty.
    """
    if not a.intersects(b):
        return [] if a.is_empty else [a]
    result: List[Cube] = []
    if a.n_outputs > 1:
        remaining_out = a.outbits & ~b.outbits
        if remaining_out:
            result.append(a.with_outputs(remaining_out))
    for i in range(a.n_inputs):
        keep = a.literal(i) & ~b.literal(i) & 3
        if keep:
            result.append(a.with_literal(i, keep))
    return result


def sharp(cover: Cover, sub: Cube) -> Cover:
    """Sharp a whole cover against one cube (union of per-cube sharps)."""
    out = Cover(cover.n_inputs, (), cover.n_outputs)
    for c in cover:
        out.extend(cube_sharp(c, sub))
    return out


def sharp_cover(cover: Cover, subtrahend: Cover) -> Cover:
    """Sharp a cover against a cover: ``cover \\ subtrahend`` as a cube list.

    The result is not minimized; callers usually follow with single-cube
    containment minimization.
    """
    current = cover.copy()
    for b in subtrahend:
        current = sharp(current, b)
        if current.is_empty:
            break
    return current


def consensus(a: Cube, b: Cube) -> Optional[Cube]:
    """The consensus cube of ``a`` and ``b`` (``None`` when undefined).

    The consensus is defined when the cubes have distance exactly 1:

    * conflict on one input variable: that variable is raised to the union of
      its literals, all other parts are intersected;
    * conflict on the output part only (multi-output): inputs are intersected
      and the output parts are united.
    """
    meet_in = a.inbits & b.inbits
    from repro.cubes.cube import empty_pairs

    conflicts = empty_pairs(meet_in, a.n_inputs)
    n_in_conflicts = popcount(conflicts)
    out_meet = a.outbits & b.outbits
    out_disjoint = out_meet == 0 and a.n_outputs > 1
    if n_in_conflicts + (1 if out_disjoint else 0) != 1:
        return None
    if n_in_conflicts == 1:
        var = (conflicts & -conflicts).bit_length() // 2
        union_lit = (a.literal(var) | b.literal(var)) & 3
        inter = Cube(a.n_inputs, meet_in, out_meet if a.n_outputs > 1 else (a.outbits & b.outbits), a.n_outputs)
        return inter.with_literal(var, union_lit)
    # Output conflict only: inputs intersect, outputs unioned.
    return Cube(a.n_inputs, meet_in, a.outbits | b.outbits, a.n_outputs)


def supercube_of(cubes: Iterable[Cube]) -> Optional[Cube]:
    """The smallest cube containing every cube in the iterable (None if empty)."""
    result: Optional[Cube] = None
    for c in cubes:
        result = c if result is None else result.supercube(c)
    return result


def minterms_of_cube(cube: Cube) -> List[Tuple[int, ...]]:
    """All 0/1 input vectors inside the cube (exponential in free vars)."""
    return list(cube.minterm_vectors())


def transition_cube(a: Sequence[int], b: Sequence[int], n_outputs: int = 1, outbits: int = 1) -> Cube:
    """The transition cube ``[A, B]`` for two input minterms.

    Contains every minterm reachable while the inputs change monotonically
    from ``A`` to ``B``: variable ``i``'s literal is ``A_i + B_i``.
    """
    if len(a) != len(b):
        raise ValueError("start and end points must have the same width")
    inbits = 0
    for i, (va, vb) in enumerate(zip(a, b)):
        lit = 0
        for v in (va, vb):
            lit |= 2 if v else 1
        inbits |= lit << (2 * i)
    return Cube(len(a), inbits, outbits, n_outputs)


def changing_vars(a: Sequence[int], b: Sequence[int]) -> Tuple[int, ...]:
    """Indices of input variables that differ between two minterms."""
    return tuple(i for i, (va, vb) in enumerate(zip(a, b)) if va != vb)
