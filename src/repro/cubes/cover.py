"""Covers: ordered collections of cubes over a shared shape."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.cubes.cube import Cube


class Cover:
    """A sum-of-products cover: an ordered list of cubes of one shape.

    Covers are lightweight containers; the heavyweight algorithms (tautology,
    complement, minimization) live in :mod:`repro.espresso` and operate on
    covers.  A cover may be used as a set of implicants of a multi-output
    function: a cube belongs to output ``j``'s cover iff its output bit ``j``
    is set.
    """

    __slots__ = ("n_inputs", "n_outputs", "cubes")

    def __init__(self, n_inputs: int, cubes: Iterable[Cube] = (), n_outputs: int = 1):
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs
        self.cubes: List[Cube] = []
        for c in cubes:
            self.append(c)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_strings(cls, rows: Sequence[str], n_outputs: int = 1) -> "Cover":
        """Build a cover from PLA-style rows, e.g. ``["10-1 1", "0--- 1"]``.

        Rows may omit the output part for single-output covers.
        """
        cubes = []
        n_inputs = None
        for row in rows:
            parts = row.split()
            cube = (
                Cube.from_string(parts[0])
                if len(parts) == 1
                else Cube.from_string(parts[0], parts[1])
            )
            if n_inputs is None:
                n_inputs = cube.n_inputs
            cubes.append(cube)
        if n_inputs is None:
            raise ValueError("cannot infer shape from an empty row list")
        n_out = cubes[0].n_outputs
        return cls(n_inputs, cubes, n_out)

    @classmethod
    def empty_like(cls, other: "Cover") -> "Cover":
        """An empty cover with the same shape as ``other``."""
        return cls(other.n_inputs, (), other.n_outputs)

    def copy(self) -> "Cover":
        clone = Cover(self.n_inputs, (), self.n_outputs)
        clone.cubes = list(self.cubes)
        return clone

    def append(self, cube: Cube) -> None:
        if cube.n_inputs != self.n_inputs or cube.n_outputs != self.n_outputs:
            raise ValueError(
                f"cube shape ({cube.n_inputs},{cube.n_outputs}) does not match "
                f"cover shape ({self.n_inputs},{self.n_outputs})"
            )
        self.cubes.append(cube)

    def extend(self, cubes: Iterable[Cube]) -> None:
        for c in cubes:
            self.append(c)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self) -> Iterator[Cube]:
        return iter(self.cubes)

    def __getitem__(self, idx):
        return self.cubes[idx]

    def __contains__(self, cube: Cube) -> bool:
        return cube in self.cubes

    def __eq__(self, other) -> bool:
        if not isinstance(other, Cover):
            return NotImplemented
        return (
            self.n_inputs == other.n_inputs
            and self.n_outputs == other.n_outputs
            and sorted(self.cubes) == sorted(other.cubes)
        )

    # A Cover is mutated in place by append/extend, so hashing by content
    # would let a dict/set key change under the container.  Unhashable is
    # the honest contract; use ``key()`` for an explicit content snapshot.
    __hash__ = None

    def key(self) -> tuple:
        """Immutable content snapshot, usable as a dict/set key."""
        return (self.n_inputs, self.n_outputs, tuple(sorted(self.cubes)))

    @property
    def is_empty(self) -> bool:
        return not self.cubes

    def num_literals(self) -> int:
        """Total number of input literals over all cubes (PLA area proxy)."""
        return sum(c.num_literals() for c in self.cubes)

    def evaluate(self, values: Sequence[int], output: int = 0) -> bool:
        """Evaluate the cover's output ``output`` on a 0/1 input vector."""
        for c in self.cubes:
            if c.has_output(output) and c.contains_minterm(values):
                return True
        return False

    def contains_cube(self, cube: Cube) -> bool:
        """True iff some single cube of the cover contains ``cube``."""
        return any(c.contains(cube) for c in self.cubes)

    def intersects_cube(self, cube: Cube) -> bool:
        """True iff some cube of the cover intersects ``cube``."""
        return any(c.intersects(cube) for c in self.cubes)

    def cubes_intersecting(self, cube: Cube) -> List[Cube]:
        """All cover cubes that intersect ``cube``."""
        return [c for c in self.cubes if c.intersects(cube)]

    def restrict_to_output(self, j: int) -> "Cover":
        """The single-output cover of output ``j`` (cubes with bit ``j`` set)."""
        out = Cover(self.n_inputs, (), 1)
        for c in self.cubes:
            if c.has_output(j):
                out.append(Cube(self.n_inputs, c.inbits, 1, 1))
        return out

    # ------------------------------------------------------------------
    # Simple transforms
    # ------------------------------------------------------------------

    def without(self, cube: Cube) -> "Cover":
        """A copy of the cover with one occurrence of ``cube`` removed."""
        out = self.copy()
        out.cubes.remove(cube)
        return out

    def deduplicate(self) -> "Cover":
        """Remove exact duplicate cubes, preserving first-seen order."""
        seen = set()
        out = Cover(self.n_inputs, (), self.n_outputs)
        for c in self.cubes:
            if c not in seen:
                seen.add(c)
                out.append(c)
        return out

    def drop_empty(self) -> "Cover":
        """Remove cubes that denote the empty set."""
        out = Cover(self.n_inputs, (), self.n_outputs)
        for c in self.cubes:
            if not c.is_empty:
                out.append(c)
        return out

    def sorted(self) -> "Cover":
        """A deterministically ordered copy (by cube encoding)."""
        out = Cover(self.n_inputs, (), self.n_outputs)
        out.cubes = sorted(self.cubes)
        return out

    def cofactor(self, cube: Cube) -> "Cover":
        """Shannon cofactor of the cover with respect to ``cube``."""
        out = Cover(self.n_inputs, (), self.n_outputs)
        for c in self.cubes:
            cf = c.cofactor(cube)
            if cf is not None:
                out.append(cf)
        return out

    # ------------------------------------------------------------------
    # Brute-force semantics (test oracles; exponential in n_inputs)
    # ------------------------------------------------------------------

    def on_set_vectors(self, output: int = 0) -> List[Tuple[int, ...]]:
        """All input vectors on which output ``output`` evaluates to 1."""
        import itertools

        return [
            vec
            for vec in itertools.product((0, 1), repeat=self.n_inputs)
            if self.evaluate(vec, output)
        ]

    def semantically_equal(self, other: "Cover") -> bool:
        """Exhaustive functional equality check (small ``n_inputs`` only)."""
        import itertools

        if self.n_inputs != other.n_inputs or self.n_outputs != other.n_outputs:
            return False
        for vec in itertools.product((0, 1), repeat=self.n_inputs):
            for j in range(self.n_outputs):
                if self.evaluate(vec, j) != other.evaluate(vec, j):
                    return False
        return True

    def __str__(self) -> str:
        return "\n".join(str(c) for c in self.cubes)

    def __repr__(self) -> str:
        return f"Cover(n_inputs={self.n_inputs}, n_outputs={self.n_outputs}, cubes={len(self.cubes)})"
