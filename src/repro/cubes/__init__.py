"""Cube and cover algebra in positional-cube notation.

This package is the substrate for every algorithm in the library: cubes are
immutable bitmask-encoded products (two bits per input variable, one bit per
output), and covers are ordered lists of cubes over a shared shape.

The encoding follows Espresso's positional-cube notation:

* input literal codes: ``01`` = complemented literal (admits only 0),
  ``10`` = positive literal (admits only 1), ``11`` = don't-care,
  ``00`` = empty (the cube denotes the empty set);
* intersection is bitwise AND, supercube (smallest cube containing both)
  is bitwise OR, containment is a subset test on the bits.
"""

from repro.cubes.cube import Cube, LITERAL_DC, LITERAL_EMPTY, LITERAL_ONE, LITERAL_ZERO
from repro.cubes.cover import Cover
from repro.cubes.operations import (
    sharp,
    cube_sharp,
    consensus,
    supercube_of,
    minterms_of_cube,
)
from repro.cubes.containment import minimize_scc

__all__ = [
    "Cube",
    "Cover",
    "LITERAL_ZERO",
    "LITERAL_ONE",
    "LITERAL_DC",
    "LITERAL_EMPTY",
    "sharp",
    "cube_sharp",
    "consensus",
    "supercube_of",
    "minterms_of_cube",
    "minimize_scc",
]
