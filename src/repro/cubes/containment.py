"""Single-cube containment minimization (Espresso's SCC step)."""

from __future__ import annotations

from typing import List

from repro.cubes.cube import Cube
from repro.cubes.cover import Cover
from repro._compat import popcount


def minimize_scc(cover: Cover) -> Cover:
    """Remove every cube contained in another single cube of the cover.

    Duplicates and empty cubes are removed as well.  The relative order of
    surviving cubes is preserved.  This is Espresso's "single cube
    containment" minimization — cheap, and sound because removing a contained
    cube never changes the function.
    """
    survivors: List[Cube] = []
    # Sort candidates largest-first so a contained cube is always examined
    # after a potential container; ties broken by encoding for determinism.
    candidates = sorted(
        (c for c in cover if not c.is_empty),
        key=lambda c: (-(c.num_dc()), -popcount(c.outbits), c.inbits, c.outbits),
    )
    kept: List[Cube] = []
    for c in candidates:
        if any(k.contains(c) for k in kept):
            continue
        kept.append(c)
    kept_set = set(kept)
    seen = set()
    for c in cover:
        if c in kept_set and c not in seen:
            survivors.append(c)
            seen.add(c)
    out = Cover(cover.n_inputs, (), cover.n_outputs)
    out.cubes = survivors
    return out


def maximal_cubes(cubes: List[Cube]) -> List[Cube]:
    """The maximal elements of a cube list under single-cube containment."""
    if not cubes:
        return []
    cover = Cover(cubes[0].n_inputs, (), cubes[0].n_outputs)
    cover.cubes = list(cubes)
    return list(minimize_scc(cover))
