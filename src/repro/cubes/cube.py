"""Immutable cube in positional-cube notation (bitmask encoded).

A :class:`Cube` is a product term over ``n_inputs`` binary input variables
and ``n_outputs`` outputs.  The input part is a Python integer holding two
bits per variable; the output part holds one bit per output function (the
cube is part of output ``j``'s cover iff output bit ``j`` is set).

Literal codes (two bits, low bit = "admits 0", high bit = "admits 1"):

====== =========== ==========================
code   name        meaning for variable ``x``
====== =========== ==========================
``00`` EMPTY       cube denotes the empty set
``01`` ZERO        literal ``x'`` (x must be 0)
``10`` ONE         literal ``x``  (x must be 1)
``11`` DC          ``x`` unconstrained
====== =========== ==========================
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Iterator, Optional, Sequence, Tuple

from repro._compat import popcount

LITERAL_EMPTY = 0
LITERAL_ZERO = 1
LITERAL_ONE = 2
LITERAL_DC = 3

_LITERAL_CHARS = {"0": LITERAL_ZERO, "1": LITERAL_ONE, "-": LITERAL_DC, "2": LITERAL_DC, "~": LITERAL_EMPTY}
_CHAR_OF_LITERAL = {LITERAL_EMPTY: "~", LITERAL_ZERO: "0", LITERAL_ONE: "1", LITERAL_DC: "-"}


@lru_cache(maxsize=None)
def mask01(n_inputs: int) -> int:
    """Bitmask ``0b...0101`` with the low bit of each of ``n_inputs`` pairs set."""
    mask = 0
    for i in range(n_inputs):
        mask |= 1 << (2 * i)
    return mask


@lru_cache(maxsize=None)
def full_input_mask(n_inputs: int) -> int:
    """Bitmask with all ``2 * n_inputs`` bits set (the universal input part)."""
    return (1 << (2 * n_inputs)) - 1


def empty_pairs(inbits: int, n_inputs: int) -> int:
    """Mask (on the low bit of each pair) of variables whose literal is EMPTY."""
    return ~(inbits | (inbits >> 1)) & mask01(n_inputs)


def dc_pairs(inbits: int, n_inputs: int) -> int:
    """Mask (on the low bit of each pair) of variables whose literal is DC."""
    return inbits & (inbits >> 1) & mask01(n_inputs)


class Cube:
    """An immutable product term (cube) over inputs and outputs.

    Cubes are hashable and totally ordered (lexicographically on their
    encoding) so that covers can be sorted and deduplicated deterministically.
    """

    __slots__ = ("n_inputs", "n_outputs", "inbits", "outbits", "_hash")

    def __init__(self, n_inputs: int, inbits: int, outbits: int = 1, n_outputs: int = 1):
        if n_inputs < 0:
            raise ValueError("n_inputs must be >= 0")
        if n_outputs < 1:
            raise ValueError("n_outputs must be >= 1")
        if inbits < 0 or inbits > full_input_mask(n_inputs):
            raise ValueError(f"inbits 0x{inbits:x} out of range for {n_inputs} inputs")
        if outbits < 0 or outbits >= (1 << n_outputs):
            raise ValueError(f"outbits 0x{outbits:x} out of range for {n_outputs} outputs")
        object.__setattr__(self, "n_inputs", n_inputs)
        object.__setattr__(self, "n_outputs", n_outputs)
        object.__setattr__(self, "inbits", inbits)
        object.__setattr__(self, "outbits", outbits)
        object.__setattr__(self, "_hash", hash((n_inputs, n_outputs, inbits, outbits)))

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("Cube is immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def full(cls, n_inputs: int, n_outputs: int = 1) -> "Cube":
        """The universal cube (all inputs don't-care, all outputs set)."""
        return cls(n_inputs, full_input_mask(n_inputs), (1 << n_outputs) - 1, n_outputs)

    @classmethod
    def from_string(cls, text: str, outputs: Optional[str] = None, n_outputs: Optional[int] = None) -> "Cube":
        """Parse a cube from PLA-style text, e.g. ``Cube.from_string("10-1", "01")``.

        ``text`` uses ``0``, ``1``, ``-`` (input literals); ``outputs`` uses
        ``0``/``1`` per output (default: a single output set to 1).
        """
        text = text.strip()
        inbits = 0
        for i, ch in enumerate(text):
            if ch not in _LITERAL_CHARS:
                raise ValueError(f"bad literal character {ch!r} in {text!r}")
            inbits |= _LITERAL_CHARS[ch] << (2 * i)
        if outputs is None:
            n_out = n_outputs if n_outputs is not None else 1
            outbits = (1 << n_out) - 1 if n_outputs is not None else 1
        else:
            outputs = outputs.strip()
            n_out = len(outputs)
            outbits = 0
            for j, ch in enumerate(outputs):
                if ch == "1" or ch == "4":
                    outbits |= 1 << j
                elif ch not in "0~":
                    raise ValueError(f"bad output character {ch!r} in {outputs!r}")
        return cls(len(text), inbits, outbits, n_out)

    @classmethod
    def from_literals(cls, literals: Sequence[int], outbits: int = 1, n_outputs: int = 1) -> "Cube":
        """Build a cube from a sequence of literal codes (0..3 per variable)."""
        inbits = 0
        for i, lit in enumerate(literals):
            if not 0 <= lit <= 3:
                raise ValueError(f"literal code {lit} out of range")
            inbits |= lit << (2 * i)
        return cls(len(literals), inbits, outbits, n_outputs)

    @classmethod
    def minterm(cls, values: Sequence[int], outbits: int = 1, n_outputs: int = 1) -> "Cube":
        """Build the minterm cube for a 0/1 input vector."""
        inbits = 0
        for i, v in enumerate(values):
            inbits |= (LITERAL_ONE if v else LITERAL_ZERO) << (2 * i)
        return cls(len(values), inbits, outbits, n_outputs)

    @classmethod
    def from_index(cls, n_inputs: int, index: int, outbits: int = 1, n_outputs: int = 1) -> "Cube":
        """Build the minterm cube whose input vector is the binary expansion of ``index``.

        Bit ``i`` of ``index`` is the value of input variable ``i``.
        """
        inbits = 0
        for i in range(n_inputs):
            inbits |= (LITERAL_ONE if (index >> i) & 1 else LITERAL_ZERO) << (2 * i)
        return cls(n_inputs, inbits, outbits, n_outputs)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def literal(self, i: int) -> int:
        """The two-bit literal code of input variable ``i``."""
        return (self.inbits >> (2 * i)) & 3

    def literals(self) -> Tuple[int, ...]:
        """Tuple of all literal codes, variable 0 first."""
        return tuple(self.literal(i) for i in range(self.n_inputs))

    def with_literal(self, i: int, code: int) -> "Cube":
        """A copy of this cube with variable ``i``'s literal replaced by ``code``."""
        if not 0 <= code <= 3:
            raise ValueError(f"literal code {code} out of range")
        cleared = self.inbits & ~(3 << (2 * i))
        return Cube(self.n_inputs, cleared | (code << (2 * i)), self.outbits, self.n_outputs)

    def with_outputs(self, outbits: int) -> "Cube":
        """A copy of this cube with a different output part."""
        return Cube(self.n_inputs, self.inbits, outbits, self.n_outputs)

    def restrict_to_output(self, j: int) -> "Cube":
        """This cube as a single-output cube for output ``j`` (output part = 1)."""
        if not (self.outbits >> j) & 1:
            raise ValueError(f"cube does not belong to output {j}")
        return Cube(self.n_inputs, self.inbits, 1, 1)

    def has_output(self, j: int) -> bool:
        """True iff this cube participates in output ``j``."""
        return bool((self.outbits >> j) & 1)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True iff the cube denotes the empty set (some EMPTY literal or no outputs)."""
        if self.outbits == 0:
            return True
        return empty_pairs(self.inbits, self.n_inputs) != 0

    @property
    def is_minterm(self) -> bool:
        """True iff every input literal is fully specified (no DC, no EMPTY)."""
        return (
            empty_pairs(self.inbits, self.n_inputs) == 0
            and dc_pairs(self.inbits, self.n_inputs) == 0
        )

    def contains(self, other: "Cube") -> bool:
        """True iff ``other``'s set of (minterm, output) points is a subset of ours."""
        self._check_shape(other)
        return (other.inbits & self.inbits) == other.inbits and (other.outbits & self.outbits) == other.outbits

    def contains_input(self, other: "Cube") -> bool:
        """Containment on the input part only (ignores outputs)."""
        return (other.inbits & self.inbits) == other.inbits

    def intersects(self, other: "Cube") -> bool:
        """True iff the two cubes share at least one (minterm, output) point."""
        self._check_shape(other)
        if (self.outbits & other.outbits) == 0:
            return False
        meet = self.inbits & other.inbits
        return empty_pairs(meet, self.n_inputs) == 0

    def intersects_input(self, other: "Cube") -> bool:
        """Input-part intersection test (ignores outputs)."""
        meet = self.inbits & other.inbits
        return empty_pairs(meet, self.n_inputs) == 0

    def contains_minterm(self, values: Sequence[int]) -> bool:
        """True iff the 0/1 input vector lies inside this cube's input part."""
        for i, v in enumerate(values):
            lit = self.literal(i)
            if not (lit >> (1 if v else 0)) & 1:
                return False
        return True

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def intersect(self, other: "Cube") -> "Cube":
        """The cube denoting the intersection (may be empty)."""
        self._check_shape(other)
        return Cube(self.n_inputs, self.inbits & other.inbits, self.outbits & other.outbits, self.n_outputs)

    def supercube(self, other: "Cube") -> "Cube":
        """The smallest cube containing both cubes."""
        self._check_shape(other)
        return Cube(self.n_inputs, self.inbits | other.inbits, self.outbits | other.outbits, self.n_outputs)

    def distance(self, other: "Cube") -> int:
        """Number of input variables on which the cubes conflict.

        Two cubes intersect (on the input part) iff their distance is 0.  The
        output part contributes one extra unit when the output sets are
        disjoint, matching Espresso's multi-output distance.
        """
        self._check_shape(other)
        meet = self.inbits & other.inbits
        dist = popcount(empty_pairs(meet, self.n_inputs))
        if self.n_outputs > 1 and (self.outbits & other.outbits) == 0:
            dist += 1
        return dist

    def input_distance(self, other: "Cube") -> int:
        """Number of conflicting input variables (output part ignored)."""
        meet = self.inbits & other.inbits
        return popcount(empty_pairs(meet, self.n_inputs))

    def conflict_vars(self, other: "Cube") -> Iterator[int]:
        """Indices of input variables on which the cubes conflict."""
        pairs = empty_pairs(self.inbits & other.inbits, self.n_inputs)
        while pairs:
            low = pairs & -pairs
            yield low.bit_length() // 2
            pairs ^= low

    def cofactor(self, other: "Cube") -> Optional["Cube"]:
        """The Shannon cofactor of this cube with respect to ``other``.

        Returns ``None`` when the cubes do not intersect.  Variables that
        ``other`` fixes become don't-cares in the result (standard cover
        cofactor: ``self`` restricted to the subspace selected by ``other``).
        """
        self._check_shape(other)
        outbits = self.outbits & other.outbits
        if outbits == 0 and self.n_outputs > 1:
            return None
        meet = self.inbits & other.inbits
        if empty_pairs(meet, self.n_inputs):
            return None
        # Raise every variable fixed by `other` back to don't-care.
        fixed = ~dc_pairs(other.inbits, self.n_inputs) & mask01(self.n_inputs)
        raise_mask = fixed | (fixed << 1)
        return Cube(self.n_inputs, self.inbits | raise_mask, outbits if self.n_outputs > 1 else self.outbits, self.n_outputs)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def num_literals(self) -> int:
        """Number of specified (non-DC) input literals, i.e. AND-gate fan-in."""
        return self.n_inputs - popcount(dc_pairs(self.inbits, self.n_inputs))

    def num_dc(self) -> int:
        """Number of don't-care input positions."""
        return popcount(dc_pairs(self.inbits, self.n_inputs))

    def num_minterms(self) -> int:
        """Number of input minterms the cube spans (per output)."""
        if self.is_empty:
            return 0
        return 1 << self.num_dc()

    def free_vars(self) -> Tuple[int, ...]:
        """Indices of don't-care input variables."""
        pairs = dc_pairs(self.inbits, self.n_inputs)
        out = []
        while pairs:
            low = pairs & -pairs
            out.append(low.bit_length() // 2)
            pairs ^= low
        return tuple(out)

    def fixed_vars(self) -> Tuple[int, ...]:
        """Indices of specified (non-DC) input variables."""
        dc = dc_pairs(self.inbits, self.n_inputs)
        fixed = ~dc & mask01(self.n_inputs)
        out = []
        while fixed:
            low = fixed & -fixed
            out.append(low.bit_length() // 2)
            fixed ^= low
        return tuple(out)

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------

    def minterm_vectors(self) -> Iterator[Tuple[int, ...]]:
        """Yield every 0/1 input vector inside this cube (small n only)."""
        if self.is_empty:
            return
        free = self.free_vars()
        base = [0] * self.n_inputs
        for i in range(self.n_inputs):
            if self.literal(i) == LITERAL_ONE:
                base[i] = 1
        for mask in range(1 << len(free)):
            vec = list(base)
            for k, var in enumerate(free):
                vec[var] = (mask >> k) & 1
            yield tuple(vec)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def _check_shape(self, other: "Cube") -> None:
        if self.n_inputs != other.n_inputs or self.n_outputs != other.n_outputs:
            raise ValueError(
                f"shape mismatch: ({self.n_inputs},{self.n_outputs}) vs ({other.n_inputs},{other.n_outputs})"
            )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Cube):
            return NotImplemented
        return (
            self.n_inputs == other.n_inputs
            and self.n_outputs == other.n_outputs
            and self.inbits == other.inbits
            and self.outbits == other.outbits
        )

    def __lt__(self, other: "Cube") -> bool:
        return (self.inbits, self.outbits) < (other.inbits, other.outbits)

    def __hash__(self) -> int:
        return self._hash

    def input_string(self) -> str:
        """PLA-style input part, e.g. ``"10-1"``."""
        return "".join(_CHAR_OF_LITERAL[self.literal(i)] for i in range(self.n_inputs))

    def output_string(self) -> str:
        """PLA-style output part, e.g. ``"01"``."""
        return "".join("1" if (self.outbits >> j) & 1 else "0" for j in range(self.n_outputs))

    def __str__(self) -> str:
        if self.n_outputs == 1 and self.outbits == 1:
            return self.input_string()
        return f"{self.input_string()} {self.output_string()}"

    def __repr__(self) -> str:
        return f"Cube({self!s})"


def parse_cubes(lines: Iterable[str], n_outputs: int = 1) -> Tuple[Cube, ...]:
    """Parse whitespace-separated ``input output`` cube lines into cubes."""
    cubes = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) == 1:
            cubes.append(Cube.from_string(parts[0]))
        else:
            cubes.append(Cube.from_string(parts[0], parts[1]))
    return tuple(cubes)
