"""Instance and cover statistics: problem metrics, PLA area, text reports.

The classic PLA area model charges every product row ``2·inputs + outputs``
crosspoints (true and complemented input columns plus output columns), so
``area = p · (2i + o)``.  Cover cardinality is the paper's cost function;
literal count and area are the secondary metrics MAKE_DHF_PRIME improves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cubes.cover import Cover
from repro.hazards.instance import HazardFreeInstance
from repro.perf import PerfCounters
from repro._compat import popcount


@dataclass
class InstanceStats:
    """Size metrics of a hazard-free minimization instance."""

    name: str
    n_inputs: int
    n_outputs: int
    n_transitions: int
    n_required_cubes: int
    n_privileged_cubes: int
    transitions_by_kind: Dict[str, int]

    def lines(self) -> List[str]:
        out = [
            f"instance {self.name}: {self.n_inputs} inputs, "
            f"{self.n_outputs} outputs, {self.n_transitions} transitions",
            f"  required cubes  : {self.n_required_cubes}",
            f"  privileged cubes: {self.n_privileged_cubes}",
        ]
        kinds = ", ".join(f"{k}: {v}" for k, v in sorted(self.transitions_by_kind.items()))
        out.append(f"  transition kinds (summed over outputs): {kinds}")
        return out


@dataclass
class CoverStats:
    """Cost metrics of a two-level cover."""

    n_cubes: int
    n_literals: int
    n_inputs: int
    n_outputs: int
    output_connections: int

    @property
    def pla_area(self) -> int:
        """Crosspoint count: products × (2·inputs + outputs)."""
        return self.n_cubes * (2 * self.n_inputs + self.n_outputs)

    @property
    def avg_fanin(self) -> float:
        """Average AND-gate fan-in (literals per product)."""
        return self.n_literals / self.n_cubes if self.n_cubes else 0.0

    def lines(self) -> List[str]:
        return [
            f"cover: {self.n_cubes} products, {self.n_literals} literals "
            f"(avg AND fan-in {self.avg_fanin:.1f})",
            f"  output connections: {self.output_connections}",
            f"  PLA area (crosspoints): {self.pla_area}",
        ]


def instance_stats(instance: HazardFreeInstance) -> InstanceStats:
    """Collect size metrics for an instance."""
    kinds: Dict[str, int] = {}
    for t in instance.transitions:
        for j in range(instance.n_outputs):
            kind = instance.kind(t, j)
            kinds[kind.value] = kinds.get(kind.value, 0) + 1
    return InstanceStats(
        name=instance.name,
        n_inputs=instance.n_inputs,
        n_outputs=instance.n_outputs,
        n_transitions=len(instance.transitions),
        n_required_cubes=len(instance.required_cubes()),
        n_privileged_cubes=len(instance.privileged_cubes()),
        transitions_by_kind=kinds,
    )


def cover_stats(cover: Cover) -> CoverStats:
    """Collect cost metrics for a cover."""
    return CoverStats(
        n_cubes=len(cover),
        n_literals=cover.num_literals(),
        n_inputs=cover.n_inputs,
        n_outputs=cover.n_outputs,
        output_connections=sum(popcount(c.outbits) for c in cover),
    )


def phase_table(phase_seconds: Dict[str, float]) -> List[str]:
    """Per-pass timing table, slowest pass first.

    ``phase_seconds`` is an :class:`HFResult`'s per-pass wall-time
    breakdown, keyed by pipeline pass name (accumulated over loop
    repetitions by the manager's timing hook).
    """
    if not phase_seconds:
        return []
    total = sum(phase_seconds.values())
    width = max(len(name) for name in phase_seconds)
    lines = ["per-pass wall time:"]
    for name, seconds in sorted(
        phase_seconds.items(), key=lambda kv: kv[1], reverse=True
    ):
        share = 100.0 * seconds / total if total else 0.0
        lines.append(f"  {name:<{width}}  {seconds:9.4f}s  {share:5.1f}%")
    lines.append(f"  {'total':<{width}}  {total:9.4f}s")
    return lines


def minimization_report(
    instance: HazardFreeInstance,
    cover: Cover,
    baseline: Optional[Cover] = None,
    counters: Optional[PerfCounters] = None,
    status: str = "ok",
    phase_seconds: Optional[Dict[str, float]] = None,
    spans: Optional[list] = None,
) -> str:
    """Human-readable before/after report for one minimization run.

    With ``counters`` (an :class:`HFResult`'s ``counters`` attribute) the
    report ends with the performance-engine section: supercube memo hit
    rate, coverage-mask hit rate, probe counts, and per-operator wall time.
    With ``phase_seconds`` it also includes the pipeline's per-pass timing
    table (:func:`phase_table`).  With ``spans`` (finished
    :class:`repro.obs.Span` objects from a traced run) it appends the
    top-N slowest-spans table (:func:`repro.obs.top_spans_report`).

    A non-``"ok"`` ``status`` (an :class:`HFResult`'s ``status``) prepends a
    warning: the cover is hazard-free either way, but a degraded or
    budget-capped run may not be locally minimal, and silently reporting it
    as converged would misstate the result.
    """
    lines: List[str] = []
    if status == "degraded":
        lines.append(
            "WARNING: run stopped at the outer-iteration cap before "
            "converging; the cover is hazard-free but may not be locally "
            "minimal"
        )
    elif status == "budget_exceeded":
        lines.append(
            "WARNING: run budget exhausted; reporting the best verified "
            "intermediate cover (hazard-free, not minimized to convergence)"
        )
    lines.extend(instance_stats(instance).lines())
    lines.extend(cover_stats(cover).lines())
    if baseline is not None:
        base = cover_stats(baseline)
        ours = cover_stats(cover)
        lines.append(
            f"  vs baseline: {base.n_cubes} -> {ours.n_cubes} products, "
            f"area {base.pla_area} -> {ours.pla_area}"
        )
    if phase_seconds:
        lines.extend(phase_table(phase_seconds))
    if counters is not None:
        lines.append("performance counters:")
        lines.extend(f"  {line}" for line in counters.summary_lines())
    if spans:
        from repro.obs import top_spans_report

        lines.extend(top_spans_report(spans))
    return "\n".join(lines)
