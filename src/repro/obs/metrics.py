"""Metrics registry: counters, gauges, histograms, mergeable snapshots.

Three instrument kinds, deliberately matching the conventional semantics:

:class:`Counter`
    monotone accumulator (``inc``); merging sums.
:class:`Gauge`
    last-written value (``set``); merging takes the max, which is the only
    associative, commutative choice that needs no timestamps.
:class:`Histogram`
    fixed *upper-inclusive* bucket boundaries: an observation ``v`` lands
    in the first bucket whose boundary satisfies ``v <= boundary``, values
    above every boundary land in the overflow bucket.  A value exactly on
    a boundary therefore counts in that boundary's bucket.  ``sum`` and
    ``count`` track the raw observations exactly; merging adds bucket
    counts pairwise (boundaries must match).

A :class:`MetricsRegistry` is a name-keyed collection of instruments with
a JSON-ready :meth:`~MetricsRegistry.snapshot`.  Snapshots — not live
registries — cross process boundaries and merge: :func:`merge_snapshots`
is associative and commutative, so per-worker snapshots fold in any order
to the same aggregate (pinned by ``tests/test_obs_metrics.py``).

Metric naming convention (see ``docs/OBSERVABILITY.md``): dot-separated
``<subsystem>.<quantity>``, e.g. ``hf.supercube_calls``,
``hf.pass_seconds``.  :func:`publish_result_metrics` publishes one
:class:`~repro.hf.result.HFResult` — the run's
:class:`~repro.perf.PerfCounters` (fed by the coverage engine and the
MINCOV solver on the hot path), cover quality gauges, and per-pass wall
time — into a registry under that convention.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: default histogram boundaries for wall-time observations, in seconds
TIME_BUCKETS_S: Tuple[float, ...] = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
)

#: PerfCounters fields that are monotone event counts (not wall times) —
#: identical across serial and parallel per-output sweeps of the same
#: instance, which is what makes them safe regression-gate inputs.
MONOTONE_COUNTER_FIELDS: Tuple[str, ...] = (
    "supercube_calls",
    "supercube_cache_hits",
    "supercube_chain_cached",
    "expand_probes",
    "coverage_masks_built",
    "coverage_mask_hits",
    "mincov_problems",
    "mincov_rows",
    "mincov_nodes",
    "passes_executed",
    "invariant_checks",
    "crosscheck_divergences",
    "scalar_fallbacks",
)


class Counter:
    """Monotone event counter."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += n

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": "counter", "value": self.value}


class Gauge:
    """Last-written value (float)."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": "gauge", "value": self.value}


class Histogram:
    """Fixed-boundary histogram with exact ``sum`` and ``count``.

    ``boundaries`` are strictly increasing upper-inclusive bucket edges;
    ``counts`` has ``len(boundaries) + 1`` slots, the last being the
    overflow bucket for observations above every boundary.
    """

    kind = "histogram"

    def __init__(self, boundaries: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError("histogram needs at least one boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram boundaries must strictly increase")
        self.boundaries = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, v: float) -> None:
        v = float(v)
        # bisect_left gives the first boundary >= v: upper-inclusive edges.
        self.counts[bisect.bisect_left(self.boundaries, v)] += 1
        self.sum += v
        self.count += 1

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": "histogram",
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Name-keyed instruments with get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, kind: str, factory) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a {kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, "counter", Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, "gauge", Gauge)

    def histogram(
        self, name: str, boundaries: Sequence[float] = TIME_BUCKETS_S
    ) -> Histogram:
        hist = self._get(name, "histogram", lambda: Histogram(boundaries))
        if tuple(float(b) for b in boundaries) != hist.boundaries:
            raise ValueError(
                f"histogram {name!r} already registered with different "
                "boundaries"
            )
        return hist

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-ready state of every instrument, keyed by metric name."""
        return {name: m.as_dict() for name, m in sorted(self._metrics.items())}


def merge_snapshots(
    a: Dict[str, Dict[str, Any]], b: Dict[str, Dict[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    """Fold two registry snapshots into one (associative, commutative).

    Counters add, gauges take the max, histograms add bucket counts and
    sums (mismatched boundaries or kinds raise — that is a naming bug, not
    data to be papered over).  Metrics present in only one snapshot pass
    through unchanged.
    """
    merged: Dict[str, Dict[str, Any]] = {}
    for name in sorted(set(a) | set(b)):
        da, db = a.get(name), b.get(name)
        if da is None or db is None:
            src = da if da is not None else db
            merged[name] = _copy_metric(src)
            continue
        if da["kind"] != db["kind"]:
            raise TypeError(
                f"metric {name!r}: cannot merge {da['kind']} with {db['kind']}"
            )
        kind = da["kind"]
        if kind == "counter":
            merged[name] = {"kind": "counter", "value": da["value"] + db["value"]}
        elif kind == "gauge":
            merged[name] = {"kind": "gauge", "value": max(da["value"], db["value"])}
        else:
            if list(da["boundaries"]) != list(db["boundaries"]):
                raise ValueError(
                    f"histogram {name!r}: boundary mismatch in merge"
                )
            merged[name] = {
                "kind": "histogram",
                "boundaries": list(da["boundaries"]),
                "counts": [
                    x + y for x, y in zip(da["counts"], db["counts"])
                ],
                "sum": da["sum"] + db["sum"],
                "count": da["count"] + db["count"],
            }
    return merged


def histogram_quantile(metric: Dict[str, Any], q: float) -> Optional[float]:
    """Quantile estimate from a histogram *snapshot* (upper-edge rule).

    Returns the upper boundary of the bucket containing the ``q``-th
    quantile observation — a guaranteed upper bound on the true quantile
    given the bucketing, which is the conservative direction for latency
    reporting.  Observations in the overflow bucket have no upper edge, so
    a quantile landing there returns ``inf``; an empty histogram returns
    ``None``.  Because :func:`merge_snapshots` adds bucket counts, the
    quantile of a merged snapshot equals the quantile over the union of
    observations (at bucket resolution) no matter how many shards
    contributed or in what order — that is what lets the corpus
    scoreboard report per-stratum p50/p99 from out-of-order shard merges.
    """
    if metric.get("kind") != "histogram":
        raise TypeError(f"not a histogram snapshot: {metric.get('kind')!r}")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = int(metric["count"])
    if total == 0:
        return None
    # smallest k observations covering the q-quantile (nearest-rank rule)
    target = max(1, min(total, math.ceil(q * total)))
    boundaries = list(metric["boundaries"])
    cumulative = 0
    for i, c in enumerate(metric["counts"]):
        cumulative += int(c)
        if cumulative >= target:
            if i < len(boundaries):
                return float(boundaries[i])
            return float("inf")
    return float("inf")  # pragma: no cover - counts always sum to total


def _copy_metric(metric: Dict[str, Any]) -> Dict[str, Any]:
    copied = dict(metric)
    for key in ("boundaries", "counts"):
        if key in copied:
            copied[key] = list(copied[key])
    return copied


def publish_result_metrics(
    registry: MetricsRegistry, result: Any, prefix: str = "hf"
) -> MetricsRegistry:
    """Publish one minimizer result into a registry.

    * ``<prefix>.<counter>`` — every monotone :class:`~repro.perf.PerfCounters`
      field (the coverage engine and MINCOV publish through these);
    * ``<prefix>.cover_cubes`` / ``<prefix>.cover_literals`` — quality gauges;
    * ``<prefix>.pass_seconds`` — histogram over per-pass wall times;
    * ``<prefix>.op_exclusive_seconds`` — histogram over per-operator
      exclusive wall times (:attr:`repro.perf.PerfCounters.exclusive_seconds`).
    """
    counters = result.counters
    for field_name in MONOTONE_COUNTER_FIELDS:
        registry.counter(f"{prefix}.{field_name}").inc(
            getattr(counters, field_name)
        )
    registry.gauge(f"{prefix}.cover_cubes").set(result.num_cubes)
    registry.gauge(f"{prefix}.cover_literals").set(result.num_literals)
    pass_hist = registry.histogram(f"{prefix}.pass_seconds")
    for _phase, seconds in sorted(result.phase_seconds.items()):
        pass_hist.observe(seconds)
    op_hist = registry.histogram(f"{prefix}.op_exclusive_seconds")
    for _op, seconds in sorted(counters.exclusive_seconds.items()):
        op_hist.observe(seconds)
    return registry


def monotone_counters(
    snapshot: Dict[str, Dict[str, Any]], prefix: str = "hf"
) -> Dict[str, int]:
    """The monotone-counter slice of a snapshot (regression-safe subset)."""
    wanted = {f"{prefix}.{f}" for f in MONOTONE_COUNTER_FIELDS}
    return {
        name: metric["value"]
        for name, metric in snapshot.items()
        if name in wanted and metric["kind"] == "counter"
    }
