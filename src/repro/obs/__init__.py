"""Observability layer: span tracing, metrics, exporters, regression gate.

The paper's headline claim is *speed* (30–135× over exact HFMIN on the
Figure 8 benchmarks), so this package gives the repository the evidence
machinery a performance claim needs:

* :mod:`repro.obs.span` — zero-dependency structured spans with
  context-var propagation (:class:`Span`, :class:`Tracer`,
  :func:`activate`, :func:`current_tracer`);
* :mod:`repro.obs.hook` — :class:`ObsHook`, the
  :class:`~repro.pipeline.manager.PassManager` hook that turns every
  pass / group / fixed-point application into a span;
* :mod:`repro.obs.metrics` — counter / gauge / histogram registry with
  associatively mergeable snapshots (:class:`MetricsRegistry`,
  :func:`merge_snapshots`, :func:`publish_result_metrics`);
* :mod:`repro.obs.export` — JSONL, Chrome ``chrome://tracing``, and
  plain-text top-N exporters;
* :mod:`repro.obs.regress` — the benchmark regression gate behind
  ``scripts/bench_gate.py``: noise-aware per-phase / total-time / quality
  thresholds against the committed ``BENCH_espresso_hf.json`` baseline.

See ``docs/OBSERVABILITY.md`` for the span model, metric naming
conventions, exporter formats, and how to read a gate failure.
"""

from repro.obs.export import (
    spans_from_dicts,
    to_chrome_trace,
    to_jsonl,
    top_spans_report,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.hook import ObsHook
from repro.obs.metrics import (
    TIME_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_quantile,
    merge_snapshots,
    monotone_counters,
    publish_result_metrics,
)
from repro.obs.regress import (
    GateReport,
    GateThresholds,
    compare_snapshots,
    load_snapshot,
)
from repro.obs.span import Span, Tracer, activate, current_tracer

__all__ = [
    "TIME_BUCKETS_S",
    "Span",
    "Tracer",
    "activate",
    "current_tracer",
    "ObsHook",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "histogram_quantile",
    "merge_snapshots",
    "monotone_counters",
    "publish_result_metrics",
    "to_jsonl",
    "to_chrome_trace",
    "top_spans_report",
    "write_jsonl",
    "write_chrome_trace",
    "spans_from_dicts",
    "GateReport",
    "GateThresholds",
    "compare_snapshots",
    "load_snapshot",
]
