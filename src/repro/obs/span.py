"""Structured span tracing: :class:`Span`, :class:`Tracer`, propagation.

A *span* is one timed region of a run — a pipeline pass, a fixed-point
loop, a whole minimizer invocation — with a name, a parent, and a small
attribute dict (cover size, counter deltas, budget state).  A *tracer*
owns the spans of one run: it hands out monotonically increasing span ids,
keeps the open-span stack that makes nesting implicit, and records every
span in start order so exporters (:mod:`repro.obs.export`) can replay the
run structurally.

Everything here is zero-dependency and deliberately boring:

* timestamps are ``time.perf_counter`` seconds relative to the tracer's
  epoch, so traces from different processes are each internally
  consistent (cross-process alignment is :meth:`Tracer.adopt`'s job);
* span ids are sequential integers — deterministic for a deterministic
  run, which is what lets ``data/golden_trace.json`` pin the schema;
* propagation uses a :mod:`contextvars` variable (:func:`activate` /
  :func:`current_tracer`), so instrumented code pays one context-var read
  when tracing is off and callers never thread a tracer argument through
  the engine.

Worker processes cannot share the parent's tracer; they build their own
(:func:`repro.guard.runner.minimize_payload` with ``collect_spans``) and
ship finished spans back as plain dicts, which the parent grafts into its
own trace with :meth:`Tracer.adopt` — re-identified, re-parented under the
adopting span, and rebased onto the parent clock.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence


@dataclass
class Span:
    """One timed, named, attributed region of a run.

    ``start_s`` / ``end_s`` are seconds since the owning tracer's epoch;
    ``end_s`` is ``None`` while the span is open.  ``attrs`` values must be
    JSON-serializable (ints, floats, strings, bools) — exporters dump them
    verbatim.
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    start_s: float
    end_s: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    pid: int = 0
    tid: int = 0

    @property
    def duration_s(self) -> float:
        """Wall duration in seconds (0.0 while still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot (the cross-process wire format)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": round(self.start_s, 9),
            "end_s": None if self.end_s is None else round(self.end_s, 9),
            "attrs": dict(self.attrs),
            "pid": self.pid,
            "tid": self.tid,
        }


class Tracer:
    """Span factory and container for one run.

    Spans are recorded in *start* order (``spans``), which — together with
    sequential ids — makes the trace of a deterministic run deterministic
    up to durations.  The open-span stack gives new spans their parent
    implicitly; the manager's :class:`~repro.obs.hook.ObsHook` runs
    strictly nested, so a stack is the whole story.
    """

    def __init__(self, pid: Optional[int] = None, tid: int = 0):
        self.pid = os.getpid() if pid is None else pid
        self.tid = tid
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1
        self._epoch = time.perf_counter()

    # -- clock ---------------------------------------------------------

    def elapsed_s(self) -> float:
        """Seconds since the tracer's epoch."""
        return time.perf_counter() - self._epoch

    # -- span lifecycle --------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def start(self, name: str, **attrs: Any) -> Span:
        """Open a span under the current one and push it on the stack."""
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            start_s=self.elapsed_s(),
            attrs=dict(attrs),
            pid=self.pid,
            tid=self.tid,
        )
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return span

    def finish(self, span: Span, **attrs: Any) -> Span:
        """Close a span (it must be the innermost open one)."""
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} is not the innermost open span"
            )
        self._stack.pop()
        span.attrs.update(attrs)
        span.end_s = self.elapsed_s()
        return span

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """``with tracer.span("expand"):`` — open/close around a block."""
        span = self.start(name, **attrs)
        try:
            yield span
        finally:
            self.unwind(span)

    def unwind(self, span: Span, **attrs: Any) -> Span:
        """Finish ``span``, force-closing any still-open descendants.

        An exception escaping mid-pipeline (budget exhaustion, an
        invariant violation) leaves the spans below the current node open;
        unwinding marks them ``aborted`` and closes them at the current
        instant, so the enclosing span can still finish cleanly and the
        exported trace shows exactly where the run stopped.
        """
        while self._stack and self._stack[-1] is not span:
            inner = self._stack.pop()
            inner.attrs["aborted"] = True
            inner.end_s = self.elapsed_s()
        if not self._stack:
            raise RuntimeError(f"span {span.name!r} is not open")
        return self.finish(span, **attrs)

    def finished_spans(self) -> List[Span]:
        """All closed spans, in start order."""
        return [s for s in self.spans if s.end_s is not None]

    # -- cross-process adoption ------------------------------------------

    def adopt(
        self,
        span_dicts: Sequence[Dict[str, Any]],
        tid: Optional[int] = None,
    ) -> List[Span]:
        """Graft a worker's serialized spans into this trace.

        Ids are re-assigned from this tracer's sequence (preserving the
        worker's internal parent/child edges); worker root spans are
        re-parented under the currently open span; times are rebased so the
        worker's spans end at the adoption instant (workers report a clock
        relative to *their* epoch, so only the internal offsets are
        meaningful).  ``tid`` tags the adopted spans (e.g. worker index) so
        exporters can lane them separately.
        """
        if not span_dicts:
            return []
        id_map: Dict[int, int] = {}
        max_end = max(
            (d["end_s"] for d in span_dicts if d.get("end_s") is not None),
            default=0.0,
        )
        offset = max(0.0, self.elapsed_s() - max_end)
        parent_id = self._stack[-1].span_id if self._stack else None
        adopted: List[Span] = []
        for d in span_dicts:
            new_id = self._next_id
            self._next_id += 1
            id_map[d["span_id"]] = new_id
            old_parent = d.get("parent_id")
            span = Span(
                name=d["name"],
                span_id=new_id,
                parent_id=(
                    id_map[old_parent]
                    if old_parent in id_map
                    else parent_id
                ),
                start_s=d["start_s"] + offset,
                end_s=(
                    None if d.get("end_s") is None else d["end_s"] + offset
                ),
                attrs=dict(d.get("attrs", {})),
                pid=d.get("pid", self.pid),
                tid=self.tid if tid is None else tid,
            )
            self.spans.append(span)
            adopted.append(span)
        return adopted


# ----------------------------------------------------------------------
# Context-var propagation
# ----------------------------------------------------------------------

_ACTIVE: ContextVar[Optional[Tracer]] = ContextVar(
    "repro_obs_tracer", default=None
)


def current_tracer() -> Optional[Tracer]:
    """The tracer active in this context, or ``None`` (tracing off)."""
    return _ACTIVE.get()


@contextmanager
def activate(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Make ``tracer`` the context's active tracer for the block.

    ``activate(None)`` explicitly disables tracing inside the block —
    useful for forked worker processes that inherited a parent tracer they
    must not write into.
    """
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)
