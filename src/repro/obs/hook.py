"""The observability hook: pipeline events → structured spans.

:class:`ObsHook` plugs into the :class:`~repro.pipeline.manager.PassManager`
hook stack and turns every pipeline node application into a span on the
run's :class:`~repro.obs.span.Tracer`:

* ``pass:<name>`` for each :class:`~repro.pipeline.base.Step`;
* ``group:<name>`` / ``fixedpoint:<name>`` around the structural nodes —
  these use the extended hook events (``group_started``,
  ``group_finished``, ``fixed_point_started``, ``fixed_point_exited``)
  the manager dispatches defensively, so legacy duck-typed hooks need not
  implement them.  The extended events are *always paired* (dispatched in
  ``finally`` blocks), unlike the legacy ``fixed_point_finished``, which
  is skipped on cooperative early stops — pairing is what keeps the span
  stack consistent.

Pass spans carry the attributes the ISSUE calls out: cover size and
measure after the pass, budget consumption so far, and the deltas of the
hot-path :class:`~repro.perf.PerfCounters` across the pass (what *this*
pass cost, not the running totals).  The manager runs nodes strictly
nested and sequentially, so the tracer's open-span stack mirrors the
pipeline structure exactly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.obs.span import Span, Tracer
from repro.pipeline.hooks import Hook

#: PerfCounters fields whose per-pass deltas are attached to pass spans
DELTA_FIELDS: Tuple[str, ...] = (
    "supercube_calls",
    "supercube_cache_hits",
    "expand_probes",
    "coverage_masks_built",
    "mincov_nodes",
)


class ObsHook(Hook):
    """Emit one span per pipeline node application."""

    def __init__(self, tracer: Tracer):
        self.tracer = tracer
        #: (span, perf-counter snapshot) per open pass, innermost last
        self._passes: List[Tuple[Span, Dict[str, int]]] = []
        self._structural: List[Span] = []

    # -- pass spans ------------------------------------------------------

    def pass_started(self, step, state) -> None:
        span = self.tracer.start(f"pass:{step.name}")
        self._passes.append((span, self._perf_snapshot(state)))

    def pass_finished(self, step, state, seconds: float) -> None:
        span, before = self._passes.pop()
        attrs: Dict[str, Any] = {
            "cover_size": state.cover_size(),
            "measure": state.measure(),
        }
        after = self._perf_snapshot(state)
        for field in DELTA_FIELDS:
            attrs[f"d_{field}"] = after.get(field, 0) - before.get(field, 0)
        budget = state.budget
        if budget is not None:
            attrs["budget_checkpoints"] = budget.checkpoints
            attrs["budget_iterations"] = budget.iterations
        self.tracer.finish(span, **attrs)

    # -- structural spans ------------------------------------------------

    def group_started(self, group, state) -> None:
        self._structural.append(self.tracer.start(f"group:{group.name}"))

    def group_finished(self, group, state) -> None:
        # unwind, not finish: an exception escaping a pass inside the
        # group leaves that pass's span open (pass_finished never fires).
        self.tracer.unwind(
            self._structural.pop(), cover_size=state.cover_size()
        )

    def fixed_point_started(self, fixed_point, state) -> None:
        self._structural.append(
            self.tracer.start(f"fixedpoint:{fixed_point.name}")
        )

    def fixed_point_exited(self, fixed_point, state, rounds: int) -> None:
        self.tracer.unwind(
            self._structural.pop(),
            rounds=rounds,
            cover_size=state.cover_size(),
        )

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _perf_snapshot(state) -> Dict[str, int]:
        perf = getattr(state.ctx, "perf", None) if state.ctx is not None else None
        if perf is None:
            return {}
        return {field: getattr(perf, field) for field in DELTA_FIELDS}
