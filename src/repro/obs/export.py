"""Trace exporters: JSONL event stream, Chrome trace format, text report.

Three consumers, three formats:

:func:`to_jsonl`
    one JSON object per finished span, in start order — the stable
    machine-readable stream the golden-schema test pins field by field;
:func:`to_chrome_trace`
    the Chrome ``chrome://tracing`` / Perfetto "trace event" JSON object
    format: complete (``"ph": "X"``) events with microsecond ``ts`` /
    ``dur`` and ``pid`` / ``tid`` lanes (CLI ``--trace-out``);
:func:`top_spans_report`
    a plain-text slowest-spans table for terminal reports
    (:func:`repro.report.minimization_report`).

All exporters read finished spans only: an open span has no duration and
would serialize as a lie.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence, Union

from repro.obs.span import Span, Tracer

SpanSource = Union[Tracer, Sequence[Span]]


def _finished(spans: SpanSource) -> List[Span]:
    if isinstance(spans, Tracer):
        return spans.finished_spans()
    return [s for s in spans if s.end_s is not None]


def to_jsonl(spans: SpanSource) -> str:
    """One JSON object per finished span, newline-delimited, start order.

    Schema per line (pinned by ``data/golden_trace.json``): ``name``,
    ``span_id``, ``parent_id``, ``start_us``, ``dur_us``, ``pid``,
    ``tid``, ``attrs``.
    """
    lines = []
    for s in _finished(spans):
        lines.append(
            json.dumps(
                {
                    "name": s.name,
                    "span_id": s.span_id,
                    "parent_id": s.parent_id,
                    "start_us": round(s.start_s * 1e6, 3),
                    "dur_us": round(s.duration_s * 1e6, 3),
                    "pid": s.pid,
                    "tid": s.tid,
                    "attrs": s.attrs,
                },
                sort_keys=True,
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


def to_chrome_trace(spans: SpanSource) -> Dict[str, Any]:
    """Chrome trace-event JSON object (load via ``chrome://tracing``).

    Every finished span becomes one complete event: ``ph="X"``, ``ts`` and
    ``dur`` in microseconds, ``pid``/``tid`` lanes, span attributes under
    ``args`` (plus the span/parent ids, so the tree survives the format's
    flat event list).
    """
    events: List[Dict[str, Any]] = []
    for s in _finished(spans):
        args = dict(s.attrs)
        args["span_id"] = s.span_id
        if s.parent_id is not None:
            args["parent_id"] = s.parent_id
        events.append(
            {
                "name": s.name,
                "cat": "repro",
                "ph": "X",
                "ts": round(s.start_s * 1e6, 3),
                "dur": round(s.duration_s * 1e6, 3),
                "pid": s.pid,
                "tid": s.tid,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: SpanSource) -> None:
    """Serialize :func:`to_chrome_trace` to a file."""
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(spans), fh, indent=1)
        fh.write("\n")


def write_jsonl(path: str, spans: SpanSource) -> None:
    """Serialize :func:`to_jsonl` to a file."""
    with open(path, "w") as fh:
        fh.write(to_jsonl(spans))


def self_seconds(spans: SpanSource) -> Dict[int, float]:
    """Per-span *self* time: duration minus direct children's durations.

    Self time is what the top-N report ranks by — a fixed-point span that
    is slow only because its body passes are slow should not outrank them.
    Clamped at zero (a child finishing after its parent would otherwise go
    negative; that cannot happen with strict nesting, but adopted worker
    spans are only approximately rebased).
    """
    finished = _finished(spans)
    child_sum: Dict[int, float] = {}
    for s in finished:
        if s.parent_id is not None:
            child_sum[s.parent_id] = (
                child_sum.get(s.parent_id, 0.0) + s.duration_s
            )
    return {
        s.span_id: max(0.0, s.duration_s - child_sum.get(s.span_id, 0.0))
        for s in finished
    }


def top_spans_report(spans: SpanSource, top: int = 10) -> List[str]:
    """Plain-text table of the ``top`` spans by self time."""
    finished = _finished(spans)
    if not finished:
        return []
    selfs = self_seconds(finished)
    total = sum(selfs.values())
    ranked = sorted(
        finished, key=lambda s: selfs[s.span_id], reverse=True
    )[:top]
    width = max(len(s.name) for s in ranked)
    lines = [f"slowest spans (self time, top {len(ranked)} of {len(finished)}):"]
    for s in ranked:
        self_s = selfs[s.span_id]
        share = 100.0 * self_s / total if total else 0.0
        lines.append(
            f"  {s.name:<{width}}  {self_s:9.4f}s self "
            f"{s.duration_s:9.4f}s total  {share:5.1f}%"
        )
    return lines


def spans_from_dicts(span_dicts: Iterable[Dict[str, Any]]) -> List[Span]:
    """Rehydrate :meth:`repro.obs.span.Span.as_dict` payloads."""
    return [
        Span(
            name=d["name"],
            span_id=d["span_id"],
            parent_id=d.get("parent_id"),
            start_s=d["start_s"],
            end_s=d.get("end_s"),
            attrs=dict(d.get("attrs", {})),
            pid=d.get("pid", 0),
            tid=d.get("tid", 0),
        )
        for d in span_dicts
    ]
