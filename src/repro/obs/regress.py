"""Benchmark regression gate: diff two suite snapshots, noise-aware.

The gate compares a *current* ``scripts/bench_hf.py`` snapshot against the
committed *baseline* (``BENCH_espresso_hf.json``) and classifies every
delta as ``ok`` / ``warn`` / ``fail``:

**Time rules** (suite total, per-circuit, suite-wide per-phase, and
per-circuit operator-exclusive time) use a two-sided noise model — a
relative *slack* multiplier combined with an *absolute floor*::

    fail  iff  current > baseline * slack + floor

The multiplier absorbs proportional machine noise (a loaded CI runner is
uniformly slower); the floor keeps sub-millisecond phases from failing the
gate on scheduler jitter — a 0.4 ms phase doubling to 0.8 ms is noise, a
400 ms phase doubling is a regression.  Per-circuit times use the *median*
of the recorded repeat times (``times_s``) rather than the best-of, which
is far more stable under transient load.

**Quality rules** are exact: any increase in a circuit's cover size
(``num_cubes``) or literal count (``num_literals``) fails — the minimizer
is deterministic, so quality drift is a code change, never noise.  A
status degradation (``ok`` → anything else, or any → ``crash``/
``timeout``…) also fails.

**Coverage rules** warn, never fail: a circuit present only in the current
snapshot has no baseline to compare against (commit a refreshed baseline
to adopt it); a circuit missing from the current run may be an intentional
``--circuits`` subset.

Run directly to diff two snapshot files without re-benchmarking::

    python -m repro.obs.regress BENCH_espresso_hf.json /tmp/current.json
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

#: statuses in "worst-of" order; a current status later in the list than
#: the baseline's is a degradation
STATUS_ORDER = (
    "ok",
    "degraded",
    "budget_exceeded",
    "no_solution",
    "invariant_violation",
    "malformed",
    "crash",
    "timeout",
)


@dataclass(frozen=True)
class GateThresholds:
    """Noise model of the gate: relative slack plus absolute floors.

    ``slack`` multiplies every baseline time before comparison; the floors
    are added on top, per comparison kind, so short measurements need a
    proportionally larger (absolute) excursion to fail.
    """

    slack: float = 1.6
    total_floor_s: float = 0.050
    circuit_floor_s: float = 0.020
    phase_floor_s: float = 0.010
    op_floor_s: float = 0.010

    def exceeded(self, baseline: float, current: float, floor_s: float) -> bool:
        """The core rule: ``current > baseline * slack + floor``."""
        return current > baseline * self.slack + floor_s


@dataclass
class Delta:
    """One comparison row of the gate report."""

    kind: str  # total | circuit | phase | op | cubes | literals | status | coverage
    name: str  # circuit, phase, or "suite"
    baseline: Optional[float]
    current: Optional[float]
    verdict: str  # ok | warn | fail
    note: str = ""

    @property
    def ratio(self) -> Optional[float]:
        if (
            isinstance(self.baseline, (int, float))
            and isinstance(self.current, (int, float))
            and self.baseline
        ):
            return self.current / self.baseline
        return None


@dataclass
class GateReport:
    """All deltas of one gate run, with the pass/fail verdict."""

    deltas: List[Delta] = field(default_factory=list)
    thresholds: GateThresholds = field(default_factory=GateThresholds)

    @property
    def failures(self) -> List[Delta]:
        return [d for d in self.deltas if d.verdict == "fail"]

    @property
    def warnings(self) -> List[Delta]:
        return [d for d in self.deltas if d.verdict == "warn"]

    @property
    def passed(self) -> bool:
        return not self.failures

    def table(self, all_rows: bool = False) -> List[str]:
        """The per-circuit / per-phase delta table as text lines.

        By default only non-``ok`` rows plus the suite total are shown;
        ``all_rows`` includes every comparison.
        """
        rows = [
            d
            for d in self.deltas
            if all_rows or d.verdict != "ok" or d.kind == "total"
        ]
        lines = [
            f"{'verdict':7s} {'kind':8s} {'name':34s} "
            f"{'baseline':>10s} {'current':>10s} {'ratio':>7s}"
        ]
        for d in rows:
            base = "-" if d.baseline is None else f"{d.baseline:.4f}"
            cur = "-" if d.current is None else f"{d.current:.4f}"
            ratio = "-" if d.ratio is None else f"{d.ratio:.2f}x"
            note = f"  {d.note}" if d.note else ""
            lines.append(
                f"{d.verdict.upper():7s} {d.kind:8s} {d.name:34s} "
                f"{base:>10s} {cur:>10s} {ratio:>7s}{note}"
            )
        lines.append(
            f"gate: {len(self.failures)} failure(s), "
            f"{len(self.warnings)} warning(s), "
            f"{len(self.deltas)} comparison(s) "
            f"(slack {self.thresholds.slack:g}x)"
        )
        return lines

    def summary(self) -> str:
        return "PASS" if self.passed else "FAIL"


def circuit_time_s(row: Dict[str, Any]) -> Optional[float]:
    """A circuit row's representative wall time: median of repeats.

    Snapshots record every repeat (``times_s``); the median is robust to a
    single slow repeat.  Pre-``times_s`` baselines fall back to the
    best-of ``time_s``.
    """
    times = row.get("times_s")
    if times:
        return float(statistics.median(times))
    t = row.get("time_s")
    return None if t is None else float(t)


def _op_exclusive_total(row: Dict[str, Any]) -> Optional[float]:
    counters = row.get("counters") or {}
    exclusive = counters.get("exclusive_seconds")
    if not exclusive:
        return None
    return float(sum(exclusive.values()))


def _status_rank(status: str) -> int:
    try:
        return STATUS_ORDER.index(status)
    except ValueError:
        return len(STATUS_ORDER)


def compare_snapshots(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    thresholds: Optional[GateThresholds] = None,
) -> GateReport:
    """Diff two ``bench_hf`` snapshots into a :class:`GateReport`.

    Applies, in order: the suite-total time rule, suite-wide per-phase
    time rules, then per-circuit status / quality / time / op-time rules,
    and finally the coverage warnings for added or missing circuits.
    """
    th = thresholds or GateThresholds()
    report = GateReport(thresholds=th)
    deltas = report.deltas

    base_rows = {r["name"]: r for r in baseline.get("circuits", [])}
    cur_rows = {r["name"]: r for r in current.get("circuits", [])}

    # -- suite total ----------------------------------------------------
    base_total = float(baseline.get("total_time_s", 0.0))
    cur_total = float(current.get("total_time_s", 0.0))
    deltas.append(
        Delta(
            kind="total",
            name="suite",
            baseline=base_total,
            current=cur_total,
            verdict=(
                "fail"
                if th.exceeded(base_total, cur_total, th.total_floor_s)
                else "ok"
            ),
        )
    )

    # -- suite-wide per-phase time --------------------------------------
    base_phases = baseline.get("phase_seconds_total", {}) or {}
    cur_phases = current.get("phase_seconds_total", {}) or {}
    for phase in sorted(set(base_phases) | set(cur_phases)):
        b = base_phases.get(phase)
        c = cur_phases.get(phase)
        if b is None or c is None:
            deltas.append(
                Delta(
                    kind="phase",
                    name=phase,
                    baseline=b,
                    current=c,
                    verdict="warn",
                    note="phase only on one side",
                )
            )
            continue
        deltas.append(
            Delta(
                kind="phase",
                name=phase,
                baseline=float(b),
                current=float(c),
                verdict=(
                    "fail"
                    if th.exceeded(float(b), float(c), th.phase_floor_s)
                    else "ok"
                ),
            )
        )

    # -- per circuit ----------------------------------------------------
    for name in sorted(set(base_rows) & set(cur_rows)):
        b_row, c_row = base_rows[name], cur_rows[name]

        b_status = b_row.get("status", "ok")
        c_status = c_row.get("status", "ok")
        if _status_rank(c_status) > _status_rank(b_status):
            deltas.append(
                Delta(
                    kind="status",
                    name=name,
                    baseline=None,
                    current=None,
                    verdict="fail",
                    note=f"{b_status} -> {c_status}",
                )
            )
            # A degraded/crashed run's quality and time are meaningless;
            # the status failure already gates it.
            continue

        for kind in ("num_cubes", "num_literals"):
            b_q, c_q = b_row.get(kind), c_row.get(kind)
            if b_q is None or c_q is None:
                continue
            deltas.append(
                Delta(
                    kind=kind.replace("num_", ""),
                    name=name,
                    baseline=float(b_q),
                    current=float(c_q),
                    verdict="fail" if c_q > b_q else "ok",
                    note="quality drift" if c_q > b_q else "",
                )
            )

        b_t, c_t = circuit_time_s(b_row), circuit_time_s(c_row)
        if b_t is not None and c_t is not None:
            deltas.append(
                Delta(
                    kind="circuit",
                    name=name,
                    baseline=b_t,
                    current=c_t,
                    verdict=(
                        "fail"
                        if th.exceeded(b_t, c_t, th.circuit_floor_s)
                        else "ok"
                    ),
                    note="median of repeats",
                )
            )

        b_op, c_op = _op_exclusive_total(b_row), _op_exclusive_total(c_row)
        if b_op is not None and c_op is not None:
            deltas.append(
                Delta(
                    kind="op",
                    name=name,
                    baseline=b_op,
                    current=c_op,
                    verdict=(
                        "fail"
                        if th.exceeded(b_op, c_op, th.op_floor_s)
                        else "ok"
                    ),
                    note="operator exclusive time",
                )
            )

    # -- coverage -------------------------------------------------------
    for name in sorted(set(cur_rows) - set(base_rows)):
        deltas.append(
            Delta(
                kind="coverage",
                name=name,
                baseline=None,
                current=circuit_time_s(cur_rows[name]),
                verdict="warn",
                note="new circuit: no baseline (refresh the baseline to adopt)",
            )
        )
    for name in sorted(set(base_rows) - set(cur_rows)):
        deltas.append(
            Delta(
                kind="coverage",
                name=name,
                baseline=circuit_time_s(base_rows[name]),
                current=None,
                verdict="warn",
                note="circuit missing from current run",
            )
        )

    return report


def load_snapshot(path: str) -> Dict[str, Any]:
    """Read a ``bench_hf`` snapshot JSON file."""
    with open(path) as fh:
        return json.load(fh)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Diff two snapshot files: ``python -m repro.obs.regress BASE CUR``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.obs.regress",
        description="diff two bench_hf snapshots (no re-benchmarking)",
    )
    parser.add_argument("baseline", help="committed baseline snapshot JSON")
    parser.add_argument("current", help="fresh snapshot JSON to gate")
    parser.add_argument(
        "--slack", type=float, default=1.6, help="relative slack (default 1.6)"
    )
    parser.add_argument(
        "--all", action="store_true", help="show every comparison row"
    )
    args = parser.parse_args(argv)
    report = compare_snapshots(
        load_snapshot(args.baseline),
        load_snapshot(args.current),
        GateThresholds(slack=args.slack),
    )
    for line in report.table(all_rows=args.all):
        print(line)
    print(report.summary())
    return 0 if report.passed else 1


if __name__ == "__main__":  # pragma: no cover - thin CLI shim
    import sys

    sys.exit(main())
