"""The paper's Figure 3 walkthrough: dhf-canonicalization of required cubes.

A required cube that illegally intersects a privileged cube must grow to
absorb the privileged cube's start point; that growth can trigger further
illegal intersections, so the expansion chains until it stabilizes — the
*canonical required cube* (the unique minimum dhf-implicant containing the
original).  This example replays the paper's chain bcd -> bd -> b.

Run: python examples/canonicalization_walkthrough.py
"""

from repro.cubes import Cube, Cover
from repro.hazards import HazardFreeInstance, Transition, supercube_dhf
from repro.hazards.dhf import illegally_intersects
from repro.hf import HFContext

on = Cover.from_strings(["-1--", "1-0-", "0-00"])
off = Cover.from_strings(["-01-", "0001"])
transitions = [
    Transition((0, 1, 0, 0), (0, 0, 0, 1)),
    Transition((1, 1, 0, 1), (1, 0, 1, 1)),
    Transition((1, 0, 0, 0), (1, 1, 0, 1)),
    Transition((0, 1, 1, 1), (1, 1, 1, 1)),
    Transition((0, 1, 1, 0), (1, 1, 1, 0)),
]
instance = HazardFreeInstance(on, off, transitions, name="figure3")
priv = instance.privileged_for_output(0)
off0 = instance.off_for_output(0)

print("privileged cubes:")
for p in priv:
    print(f"   {p.cube.input_string()} (start point {p.start.input_string()})")

r = Cube.from_string("-111")  # the required cube bcd
print(f"\ncanonicalizing required cube bcd = {r.input_string()}:")
step = r
while True:
    offenders = [p for p in priv if illegally_intersects(step, p)]
    if not offenders:
        break
    p = offenders[0]
    grown = step.supercube(p.start)
    print(
        f"   {step.input_string()} illegally intersects {p.cube.input_string()} "
        f"-> absorb start {p.start.input_string()} -> {grown.input_string()}"
    )
    step = grown
print(f"   {step.input_string()} is a dhf-implicant: canonical cube = b")
assert supercube_dhf([r], priv, off0) == step

print("\nall canonical required cubes (after single-cube containment):")
ctx = HFContext(instance)
for q in ctx.canonical_required():
    print(f"   {q.original.input_string()}  ->  {q.canonical.input_string()}")

print(
    "\nthe paper's point: the 7 raw required cubes collapse to 3 canonical "
    "ones, and any dhf-implicant containing a required cube must contain its "
    "canonical cube — so the covering problem shrinks with no loss."
)
