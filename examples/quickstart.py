"""Quickstart: minimize a hazard-free two-level logic problem.

A hazard-free minimization instance is a Boolean function (ON and OFF
covers; everything else don't-care) plus a set of specified multiple-input
changes.  Espresso-HF returns a minimum-size sum-of-products cover whose
AND-OR implementation never glitches on any specified transition, under
arbitrary gate and wire delays.

Run: python examples/quickstart.py
"""

from repro.cubes import Cover
from repro.hazards import HazardFreeInstance, Transition, verify_hazard_free_cover
from repro.hf import espresso_hf

# The function from the paper's Figure 3 (inputs a, b, c, d):
#   ON  = b + ac' + a'c'd'      OFF = b'c + a'b'c'd
on = Cover.from_strings(["-1--", "1-0-", "0-00"])
off = Cover.from_strings(["-01-", "0001"])

# Specified multiple-input changes (start minterm -> end minterm).  Inputs
# may change in any order during a transition; the implementation must not
# glitch anywhere along the way.
transitions = [
    Transition((0, 1, 0, 0), (0, 0, 0, 1)),  # f falls: b-, d+
    Transition((1, 1, 0, 1), (1, 0, 1, 1)),  # f falls: b-, c+
    Transition((1, 0, 0, 0), (1, 1, 0, 1)),  # f holds 1: b+, d+
    Transition((0, 1, 1, 1), (1, 1, 1, 1)),  # f holds 1: a+
    Transition((0, 1, 1, 0), (1, 1, 1, 0)),  # f holds 1: a+
]

instance = HazardFreeInstance(on, off, transitions, name="quickstart")

print(f"instance: {instance}")
print(f"required cubes   : {[str(q.cube.input_string()) for q in instance.required_cubes()]}")
print(f"privileged cubes : {[p.cube.input_string() for p in instance.privileged_cubes()]}")

result = espresso_hf(instance)

print(f"\nminimized hazard-free cover ({result.num_cubes} products):")
for cube in result.cover:
    print(f"   {cube.input_string()}")
print(f"\nstats: {result.summary()}")

violations = verify_hazard_free_cover(instance, result.cover)
print(f"Theorem 2.11 verification: {'hazard-free' if not violations else violations}")
