"""Three ways to analyse a cover for hazards, plus VCD waveform export.

Takes the textbook static-1 hazard (f = ab + a'c during an `a` change with
b = c = 1) and analyses the hazardous and the repaired cover with:

1. the Theorem 2.11 verifier (algebraic, exact),
2. the eight-valued waveform algebra (exact for two-level logic, also
   classifies the hazard type),
3. Monte-Carlo delay simulation (operational witness), exporting the
   glitching waveform to a VCD file for a waveform viewer.

Run: python examples/hazard_analysis.py
"""

from repro.cubes import Cover
from repro.hazards import HazardFreeInstance, Transition, verify_hazard_free_cover
from repro.simulate import (
    SopNetwork,
    classify_network,
    find_glitch,
    has_static_hazard_ternary,
)
from repro.simulate.vcd import write_vcd

# f = ab + a'c; the transition drops a while b = c = 1, so f stays 1.
hazardous = Cover.from_strings(["11-", "0-1"])
repaired = Cover.from_strings(["11-", "0-1", "-11"])  # + consensus cube bc
transition = Transition((1, 1, 1), (0, 1, 1))

on = Cover.from_strings(["11-", "0-1", "-11"])
off = Cover.from_strings(["0-0", "10-"])
instance = HazardFreeInstance(on, off, [transition], name="textbook")

print("transition: a falls with b = c = 1 (f must hold 1)\n")
for label, cover in [("hazardous f = ab + a'c", hazardous),
                     ("repaired  f = ab + a'c + bc", repaired)]:
    network = SopNetwork(cover)
    print(f"{label}:")
    violations = verify_hazard_free_cover(instance, cover)
    print(f"   Theorem 2.11 : {violations[0] if violations else 'hazard-free'}")
    print(f"   8-valued sim : output class {classify_network(network, transition).name}")
    print(f"   ternary sim  : {'X (potential hazard)' if has_static_hazard_ternary(network, transition) else 'stable 1'}")
    glitch = find_glitch(network, transition, trials=400)
    if glitch:
        waveform = " -> ".join(str(v) for _, v in glitch.output_waveform)
        print(f"   Monte-Carlo  : GLITCH found (trial {glitch.trial}): {waveform}")
        write_vcd("hazard.vcd", {"f": glitch.output_waveform})
        print("                  waveform written to hazard.vcd")
    else:
        print("   Monte-Carlo  : clean over 400 random delay assignments")
    print()

print("the consensus cube bc holds the output at 1 while ab and a'c trade "
      "places — exactly what\nhazard-free minimization inserts automatically.")
