"""Synthesize and minimize a hand-written burst-mode controller.

Models a small DMA-style bus controller in the burst-mode style the paper's
benchmarks come from: states, input bursts (sets of input changes that can
arrive in any order) and output bursts.  The controller is synthesized into
a hazard-free minimization instance (next-state + output logic with one-hot
fed-back state variables), minimized with Espresso-HF, verified, written to
a PLA file, and spot-checked with the Monte-Carlo delay simulator.

Inputs : req (transfer request), grant (bus grant), done (device done)
Outputs: busreq (bus request), xfer (transfer enable)

Run: python examples/burst_mode_controller.py
"""

from repro.bm import BurstModeSpec, synthesize
from repro.hf import espresso_hf
from repro.hazards import verify_hazard_free_cover
from repro.pla import write_pla
from repro.simulate import SopNetwork, find_glitch

REQ, GRANT, DONE = 0, 1, 2
BUSREQ, XFER = 0, 1

spec = BurstModeSpec(n_inputs=3, n_outputs=2, name="dma-ctrl")
spec.add_state("idle")
spec.add_state("arbitrating")
spec.add_state("transfer")

# idle --[req+ / busreq+]--> arbitrating
spec.add_transition("idle", "arbitrating", input_burst={REQ}, output_burst={BUSREQ})
# arbitrating --[grant+ / xfer+]--> transfer
spec.add_transition("arbitrating", "transfer", input_burst={GRANT}, output_burst={XFER})
# transfer --[done+, req- / xfer-, busreq-]--> idle' (polarities toggled)
spec.add_transition(
    "transfer", "idle", input_burst={DONE, REQ}, output_burst={XFER, BUSREQ}
)

print(f"spec: {spec}")
for state in spec.states.values():
    for t in state.transitions:
        print(f"   {t}")

result = synthesize(spec)
instance = result.instance
print(f"\nsynthesized: {instance}")
print(f"   total states (after polarity unrolling): {result.n_synth_states}")
print(f"   {result.state_names}")
print(f"   required cubes  : {len(instance.required_cubes())}")
print(f"   privileged cubes: {len(instance.privileged_cubes())}")

hf = espresso_hf(instance)
print(f"\nEspresso-HF: {hf.summary()}")
violations = verify_hazard_free_cover(instance, hf.cover)
print(f"verification: {'hazard-free' if not violations else violations}")

print("\nminimized next-state + output logic (inputs: req grant done | state one-hot):")
for cube in hf.cover.sorted():
    print(f"   {cube.input_string()}  ->  {cube.output_string()}")

write_pla(instance, "dma-ctrl.pla")
write_pla(hf.cover, "dma-ctrl.min.pla", pla_type="f", name="dma-ctrl minimized")
print("\nwrote dma-ctrl.pla (instance) and dma-ctrl.min.pla (minimized cover)")

print("\nMonte-Carlo glitch check on every specified transition / output:")
clean = True
for j in range(instance.n_outputs):
    network = SopNetwork(hf.cover, output=j)
    for t in instance.transitions:
        if find_glitch(network, t, trials=100, seed=j) is not None:
            clean = False
print("   no glitches found" if clean else "   GLITCH FOUND (bug!)")
