"""Regenerate the paper's Figure 8 table (exact vs Espresso-HF).

Runs the exact flow (under a stage budget standing in for the paper's
40-hour limit) and Espresso-HF over the fifteen-circuit suite and prints
the comparison table.  Expect a few minutes of runtime; pass circuit names
to run a subset:

    python examples/figure8_table.py dram-ctrl stetson-p3
"""

import sys

from repro.bench.figure8 import main

main(sys.argv[1:])
