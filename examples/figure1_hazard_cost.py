"""The paper's Figure 1: hazard-freedom costs cover cardinality.

Computes, for the same function and transition set:

* the minimum *hazard-free* cover (5 products), and
* the minimum *unconstrained* cover (4 products),

then demonstrates with Monte-Carlo delay simulation that the 4-product
cover really glitches on the specified transitions while the 5-product
cover never does.

Run: python examples/figure1_hazard_cost.py
"""

from repro.bench.figure1 import figure1_experiment, figure1_instance
from repro.hazards import verify_hazard_free_cover
from repro.simulate import SopNetwork, find_glitch

instance = figure1_instance()
result = figure1_experiment()

print("minimum hazard-free cover "
      f"({result.hazard_free_cubes} products):")
for cube in result.hazard_free_cover:
    print(f"   {cube.input_string()}")
print(f"minimum unconstrained cover ({result.plain_cubes} products):")
for cube in result.plain_cover:
    print(f"   {cube.input_string()}")

print("\nwhy the 4-product cover is rejected (Theorem 2.11):")
for violation in verify_hazard_free_cover(instance, result.plain_cover, collect_all=True)[:4]:
    print(f"   {violation}")

print("\nMonte-Carlo delay simulation (400 random delay assignments per transition):")
net_plain = SopNetwork(result.plain_cover)
net_hf = SopNetwork(result.hazard_free_cover)
for t in instance.transitions:
    glitch_plain = find_glitch(net_plain, t, trials=400)
    glitch_hf = find_glitch(net_hf, t, trials=400)
    plain_str = "GLITCHES" if glitch_plain else "clean"
    assert glitch_hf is None
    print(f"   {t}:  4-product cover {plain_str:8s} | 5-product cover clean")

print("\npaper's Figure 1: minimal hazard-free cover 5 products, "
      "minimal non-hazard-free cover 4 products — reproduced.")
