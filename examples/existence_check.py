"""Theorem 4.1: deciding whether a hazard-free cover exists at all.

Some (function, transition set) pairs have *no* hazard-free sum-of-products
implementation: the covering conditions (every required cube inside one
product) and the intersection conditions (no product may clip a 1->0
transition cube without holding its start point) can be unsatisfiable
together.  The exact method can only discover this after generating every
dhf-prime implicant; Espresso-HF's check (Theorem 4.1) needs one forced
``supercube_dhf`` chain per required cube.

Run: python examples/existence_check.py
"""

from repro.cubes import Cover
from repro.hazards import (
    HazardFreeInstance,
    Transition,
    existence_report,
    supercube_dhf,
)
from repro.hf import espresso_hf, NoSolutionError

# Inputs a, b, c.  ON = ab + bc', OFF = ab' + a'bc.
on = Cover.from_strings(["11-", "-10"])
off = Cover.from_strings(["10-", "011"])
transitions = [
    Transition((1, 1, 1), (1, 0, 0)),  # f falls; privileged cube a, start abc
    Transition((0, 1, 0), (1, 1, 0)),  # f holds 1; required cube bc'
]
instance = HazardFreeInstance(on, off, transitions, name="unsolvable")

report = existence_report(instance)
print(f"hazard-free cover exists: {report.exists}")
for q in report.failures:
    print(f"   required cube {q.cube.input_string()} has no dhf-supercube:")

# Walk the forced expansion chain by hand to see why.
priv = instance.privileged_for_output(0)
off0 = instance.off_for_output(0)
bad = report.failures[0].cube
print(f"\nforced expansion chain for {bad.input_string()}:")
print(f"   bc' = {bad.input_string()} illegally intersects privileged cube "
      f"{priv[0].cube.input_string()} (start {priv[0].start.input_string()})")
grown = bad.supercube(priv[0].start)
print(f"   -> absorb the start point: {grown.input_string()}")
hits = [o.input_string() for o in off0 if grown.intersects_input(o)]
print(f"   -> {grown.input_string()} intersects the OFF-set ({hits[0]}): undefined")
assert supercube_dhf([bad], priv, off0) is None

print("\nEspresso-HF refuses the instance up front:")
try:
    espresso_hf(instance)
except NoSolutionError as err:
    print(f"   NoSolutionError: {err}")
