"""Operate a minimized controller in closed loop and watch it not glitch.

Synthesizes the SCSI target-send controller, minimizes it with Espresso-HF,
then runs the actual feedback machine (combinational logic + state latch,
random per-gate/per-wire delays, random burst arrival orders) through a
random walk of its own specification.  Then it deliberately breaks the
cover — splitting one product so a required cube loses its single-cube
containment, without changing the implemented function — and shows the
machine now glitches.

Run: python examples/closed_loop_simulation.py
"""

from repro.bm import build_controller, synthesize
from repro.cubes import Cover
from repro.hf import espresso_hf
from repro.hazards import verify_hazard_free_cover
from repro.simulate import FeedbackSimulationError, run_spec_walk

synth = synthesize(build_controller("scsi-target-send"))
instance = synth.instance
cover = espresso_hf(instance).cover
print(f"controller: {instance}")
print(f"minimized cover: {len(cover)} products")

print("\nrandom spec walks (fresh delays and burst skews every step):")
total_steps = 0
for seed in range(10):
    reports = run_spec_walk(cover, synth, n_steps=30, seed=seed)
    total_steps += len(reports)
print(f"   {total_steps} burst steps executed, zero glitches, "
      "every state landing verified")

# Now break it: split one product so a required cube is no longer inside a
# single cube.  The function is unchanged; only the hazard guarantee dies.
target = None
for q in instance.required_cubes():
    for c in cover:
        if c.has_output(q.output) and c.contains_input(q.cube):
            free = [i for i in q.cube.free_vars() if c.literal(i) == 3]
            if free:
                target = (q, c, free[0])
                break
    if target:
        break
q, c, var = target
pieces = [c.with_literal(var, 1), c.with_literal(var, 2)]
bad = Cover(instance.n_inputs, [d for d in cover if d != c] + pieces,
            instance.n_outputs)
print(f"\ncorrupting the cover: split {c.input_string()} into "
      f"{pieces[0].input_string()} + {pieces[1].input_string()}")
violation = verify_hazard_free_cover(instance, bad)[0]
print(f"   Theorem 2.11 now fails: {violation}")

caught = 0
for seed in range(25):
    try:
        run_spec_walk(bad, synth, n_steps=40, seed=seed)
    except FeedbackSimulationError as err:
        caught += 1
        if caught == 1:
            print(f"   first dynamic failure: {err}")
print(f"   {caught}/25 walks glitched — same function, hazardous cover.")
