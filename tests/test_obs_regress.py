"""Benchmark regression gate: the pass/fail matrix on synthetic snapshots.

Everything here runs on hand-built snapshot fixtures — no benchmarking —
so each rule of :mod:`repro.obs.regress` is pinned in isolation:

* time rules (suite total, per-circuit median-of-repeats, suite-wide
  per-phase, operator-exclusive) fail iff
  ``current > baseline * slack + floor``;
* the absolute floor suppresses noise on sub-millisecond phases;
* quality rules (cube / literal counts) and status degradations are
  zero-tolerance;
* coverage changes (circuit added or missing) warn, never fail;
* ``scripts/bench_gate.py`` — the actual CI entry point — exits 0 on
  identical snapshots and nonzero when a fixture injects a 2× slowdown
  into one phase (the ISSUE's acceptance criterion, automated).
"""

import copy
import importlib.util
import json
import os
import sys

import pytest

from repro.obs.regress import (
    GateThresholds,
    circuit_time_s,
    compare_snapshots,
    load_snapshot,
)
from repro.obs.regress import main as regress_main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _circuit(
    name,
    time_s=0.1,
    times_s=None,
    num_cubes=10,
    num_literals=50,
    status="ok",
    exclusive=None,
):
    return {
        "name": name,
        "status": status,
        "num_cubes": num_cubes,
        "num_literals": num_literals,
        "time_s": time_s,
        "times_s": times_s if times_s is not None else [time_s] * 3,
        "phase_seconds": {},
        "counters": {"exclusive_seconds": exclusive or {"expand": time_s}},
    }


def _snapshot(circuits, phases=None):
    return {
        "suite": "espresso-hf",
        "total_time_s": sum(circuit_time_s(c) for c in circuits),
        "phase_seconds_total": phases or {"expand": 0.1, "reduce": 0.05},
        "circuits": circuits,
    }


@pytest.fixture()
def baseline():
    return _snapshot(
        [_circuit("alpha", 0.2), _circuit("beta", 0.1)],
        phases={"expand": 0.2, "reduce": 0.1},
    )


def _verdicts(report, kind):
    return {d.name: d.verdict for d in report.deltas if d.kind == kind}


class TestTimeRules:
    def test_identical_snapshots_pass(self, baseline):
        report = compare_snapshots(baseline, copy.deepcopy(baseline))
        assert report.passed
        assert not report.failures and not report.warnings

    def test_total_time_regression_fails(self, baseline):
        current = copy.deepcopy(baseline)
        current["total_time_s"] = baseline["total_time_s"] * 3
        report = compare_snapshots(baseline, current)
        assert _verdicts(report, "total")["suite"] == "fail"
        assert not report.passed

    def test_total_time_within_slack_passes(self, baseline):
        current = copy.deepcopy(baseline)
        current["total_time_s"] = baseline["total_time_s"] * 1.5
        report = compare_snapshots(
            baseline, current, GateThresholds(slack=1.6)
        )
        assert report.passed

    def test_per_phase_regression_fails(self, baseline):
        current = copy.deepcopy(baseline)
        current["phase_seconds_total"]["expand"] = 0.9  # 4.5x the 0.2s base
        report = compare_snapshots(baseline, current)
        phases = _verdicts(report, "phase")
        assert phases["expand"] == "fail"
        assert phases["reduce"] == "ok"
        assert not report.passed

    def test_absolute_floor_suppresses_submillisecond_noise(self, baseline):
        # a 0.4ms phase doubling to 0.8ms is scheduler jitter, not a
        # regression: the 10ms phase floor must absorb it.
        baseline["phase_seconds_total"]["tiny"] = 0.0004
        current = copy.deepcopy(baseline)
        current["phase_seconds_total"]["tiny"] = 0.0008
        report = compare_snapshots(baseline, current)
        assert _verdicts(report, "phase")["tiny"] == "ok"
        assert report.passed

    def test_floor_zero_restores_pure_relative_rule(self, baseline):
        baseline["phase_seconds_total"]["tiny"] = 0.0004
        current = copy.deepcopy(baseline)
        current["phase_seconds_total"]["tiny"] = 0.0008
        report = compare_snapshots(
            baseline, current, GateThresholds(slack=1.6, phase_floor_s=0.0)
        )
        assert _verdicts(report, "phase")["tiny"] == "fail"

    def test_per_circuit_uses_median_of_repeats(self, baseline):
        current = copy.deepcopy(baseline)
        # one pathological repeat: best-of and median stay at 0.2s
        current["circuits"][0]["times_s"] = [0.2, 0.2, 9.0]
        report = compare_snapshots(baseline, current)
        assert _verdicts(report, "circuit")["alpha"] == "ok"
        # a true slowdown moves the median and fails
        current["circuits"][0]["times_s"] = [0.9, 1.0, 1.1]
        report = compare_snapshots(baseline, current)
        assert _verdicts(report, "circuit")["alpha"] == "fail"

    def test_pre_times_s_baseline_falls_back_to_best_of(self):
        row = {"time_s": 0.3}
        assert circuit_time_s(row) == 0.3
        assert circuit_time_s({}) is None

    def test_op_exclusive_time_regression_fails(self, baseline):
        current = copy.deepcopy(baseline)
        current["circuits"][0]["counters"]["exclusive_seconds"] = {
            "expand": 2.0
        }
        report = compare_snapshots(baseline, current)
        assert _verdicts(report, "op")["alpha"] == "fail"

    def test_phase_only_on_one_side_warns(self, baseline):
        current = copy.deepcopy(baseline)
        current["phase_seconds_total"]["new_phase"] = 0.01
        report = compare_snapshots(baseline, current)
        assert _verdicts(report, "phase")["new_phase"] == "warn"
        assert report.passed


class TestQualityRules:
    def test_cube_count_drift_fails_even_within_time_slack(self, baseline):
        # quality regressions gate too: the minimizer is deterministic,
        # so +1 cube is a code change, never noise.
        current = copy.deepcopy(baseline)
        current["circuits"][0]["num_cubes"] += 1
        report = compare_snapshots(baseline, current)
        assert _verdicts(report, "cubes")["alpha"] == "fail"
        assert not report.passed

    def test_literal_count_drift_fails(self, baseline):
        current = copy.deepcopy(baseline)
        current["circuits"][1]["num_literals"] += 1
        report = compare_snapshots(baseline, current)
        assert _verdicts(report, "literals")["beta"] == "fail"

    def test_quality_improvement_passes(self, baseline):
        current = copy.deepcopy(baseline)
        current["circuits"][0]["num_cubes"] -= 1
        current["circuits"][0]["num_literals"] -= 5
        report = compare_snapshots(baseline, current)
        assert report.passed

    def test_status_degradation_fails_and_skips_quality(self, baseline):
        current = copy.deepcopy(baseline)
        current["circuits"][0]["status"] = "timeout"
        current["circuits"][0]["num_cubes"] = 0  # meaningless on a timeout
        report = compare_snapshots(baseline, current)
        assert _verdicts(report, "status")["alpha"] == "fail"
        assert "alpha" not in _verdicts(report, "cubes")

    def test_status_improvement_passes(self, baseline):
        baseline["circuits"][0]["status"] = "degraded"
        current = copy.deepcopy(baseline)
        current["circuits"][0]["status"] = "ok"
        report = compare_snapshots(baseline, current)
        assert "alpha" not in _verdicts(report, "status")
        assert report.passed


class TestCoverageRules:
    def test_new_circuit_warns_not_fails(self, baseline):
        current = copy.deepcopy(baseline)
        current["circuits"].append(_circuit("gamma", 0.05))
        report = compare_snapshots(baseline, current)
        assert _verdicts(report, "coverage")["gamma"] == "warn"
        assert report.passed

    def test_missing_circuit_warns_not_fails(self, baseline):
        current = copy.deepcopy(baseline)
        current["circuits"].pop()
        report = compare_snapshots(baseline, current)
        assert _verdicts(report, "coverage")["beta"] == "warn"
        assert report.passed


class TestReportTable:
    def test_table_shows_failures_and_summary_line(self, baseline):
        current = copy.deepcopy(baseline)
        current["circuits"][0]["num_cubes"] += 2
        report = compare_snapshots(baseline, current)
        lines = report.table()
        assert any("FAIL" in line and "alpha" in line for line in lines)
        assert lines[-1].startswith("gate: 1 failure(s)")
        assert report.summary() == "FAIL"

    def test_default_table_hides_ok_rows_all_rows_shows_them(self, baseline):
        report = compare_snapshots(baseline, copy.deepcopy(baseline))
        assert len(report.table(all_rows=True)) > len(report.table())


def _write(tmp_path, name, snapshot):
    path = tmp_path / name
    path.write_text(json.dumps(snapshot))
    return str(path)


class TestRegressMain:
    def test_exit_zero_on_identical(self, tmp_path, baseline, capsys):
        base = _write(tmp_path, "base.json", baseline)
        cur = _write(tmp_path, "cur.json", baseline)
        assert regress_main([base, cur]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_exit_nonzero_on_quality_drift(self, tmp_path, baseline, capsys):
        current = copy.deepcopy(baseline)
        current["circuits"][0]["num_cubes"] += 1
        base = _write(tmp_path, "base.json", baseline)
        cur = _write(tmp_path, "cur.json", current)
        assert regress_main([base, cur]) == 1
        assert "FAIL" in capsys.readouterr().out


def _load_bench_gate():
    scripts = os.path.join(REPO_ROOT, "scripts")
    if scripts not in sys.path:
        sys.path.insert(0, scripts)
    spec = importlib.util.spec_from_file_location(
        "bench_gate", os.path.join(scripts, "bench_gate.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchGateScript:
    """The CI entry point itself, gated on fixture snapshots via
    ``--current`` (no benchmark sweep)."""

    @pytest.fixture(scope="class")
    def bench_gate(self):
        return _load_bench_gate()

    def test_exit_zero_on_identical_snapshots(
        self, bench_gate, tmp_path, baseline, capsys
    ):
        base = _write(tmp_path, "base.json", baseline)
        cur = _write(tmp_path, "cur.json", copy.deepcopy(baseline))
        assert bench_gate.main(["--baseline", base, "--current", cur]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_exit_nonzero_on_2x_phase_slowdown(
        self, bench_gate, tmp_path, baseline, capsys
    ):
        # the acceptance criterion: inject a 2x slowdown into one phase
        # (well above the floor) and the gate must exit nonzero.
        baseline["phase_seconds_total"]["expand"] = 0.2
        current = copy.deepcopy(baseline)
        current["phase_seconds_total"]["expand"] = 0.4
        base = _write(tmp_path, "base.json", baseline)
        cur = _write(tmp_path, "cur.json", current)
        code = bench_gate.main(
            ["--baseline", base, "--current", cur, "--slack", "1.6"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "expand" in out

    def test_floor_flags_reach_thresholds(
        self, bench_gate, tmp_path, baseline, capsys
    ):
        # same 2x excursion, but on a sub-millisecond phase: the default
        # 10ms floor absorbs it, a 0ms floor fails it.
        baseline["phase_seconds_total"]["tiny"] = 0.0004
        current = copy.deepcopy(baseline)
        current["phase_seconds_total"]["tiny"] = 0.0008
        base = _write(tmp_path, "base.json", baseline)
        cur = _write(tmp_path, "cur.json", current)
        common = ["--baseline", base, "--current", cur]
        assert bench_gate.main(common) == 0
        assert bench_gate.main(common + ["--phase-floor-ms", "0"]) == 1
        capsys.readouterr()

    def test_table_out_writes_full_delta_table(
        self, bench_gate, tmp_path, baseline, capsys
    ):
        base = _write(tmp_path, "base.json", baseline)
        cur = _write(tmp_path, "cur.json", copy.deepcopy(baseline))
        table = tmp_path / "delta.txt"
        code = bench_gate.main(
            ["--baseline", base, "--current", cur, "--table-out", str(table)]
        )
        assert code == 0
        text = table.read_text()
        assert "alpha" in text and text.rstrip().endswith("PASS")
        capsys.readouterr()


class TestCommittedBaselineLoads:
    def test_committed_baseline_has_gate_inputs(self):
        snap = load_snapshot(
            os.path.join(REPO_ROOT, "BENCH_espresso_hf.json")
        )
        assert snap["circuits"], "empty committed baseline"
        for row in snap["circuits"]:
            assert row["times_s"], row["name"]
            assert row["counters"]["exclusive_seconds"], row["name"]
        assert snap["phase_seconds_total"]

    def test_committed_baseline_self_gates_clean(self):
        # the gate against itself is the degenerate no-regression case
        snap = load_snapshot(
            os.path.join(REPO_ROOT, "BENCH_espresso_hf.json")
        )
        report = compare_snapshots(snap, copy.deepcopy(snap))
        assert report.passed and not report.warnings


def _load_bench_hf():
    scripts = os.path.join(REPO_ROOT, "scripts")
    if scripts not in sys.path:
        sys.path.insert(0, scripts)
    spec = importlib.util.spec_from_file_location(
        "bench_hf", os.path.join(scripts, "bench_hf.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestPhaseLimits:
    """The phase wall-time gates of ``scripts/bench_hf.py`` — the
    ``check_phase_limits`` matrix on synthetic snapshots plus the
    ``--from-snapshot`` CLI path CI's essentials-share gate uses."""

    @pytest.fixture(scope="class")
    def bench_hf(self):
        return _load_bench_hf()

    @pytest.fixture
    def snapshot(self):
        return {
            "phase_seconds_total": {"essentials": 0.6, "expand": 0.4}
        }

    def test_within_limits_returns_no_violations(self, bench_hf, snapshot):
        out = bench_hf.check_phase_limits(
            snapshot,
            budgets=["essentials=1.0"],
            shares=["essentials=0.65"],
        )
        assert out == []

    def test_budget_exceeded(self, bench_hf, snapshot):
        out = bench_hf.check_phase_limits(snapshot, budgets=["essentials=0.5"])
        assert len(out) == 1 and "essentials" in out[0] and "cap" in out[0]

    def test_share_exceeded(self, bench_hf, snapshot):
        out = bench_hf.check_phase_limits(snapshot, shares=["essentials=0.5"])
        assert len(out) == 1 and "60.0%" in out[0]

    def test_unknown_phase_is_a_violation(self, bench_hf, snapshot):
        # a silently skipped gate would be worse than a loud error
        out = bench_hf.check_phase_limits(snapshot, budgets=["nosuch=1.0"])
        assert out and "no such phase" in out[0]

    def test_malformed_spec_raises(self, bench_hf, snapshot):
        with pytest.raises(ValueError):
            bench_hf.check_phase_limits(snapshot, budgets=["essentials"])
        with pytest.raises(ValueError):
            bench_hf.check_phase_limits(snapshot, shares=["essentials=abc"])

    def test_from_snapshot_cli_exit_codes(
        self, bench_hf, tmp_path, snapshot, capsys
    ):
        path = _write(tmp_path, "snap.json", snapshot)
        ok = bench_hf.main(
            ["--from-snapshot", path, "--max-phase-share", "essentials=0.65"]
        )
        assert ok == 0 and "phase limits ok" in capsys.readouterr().out
        bad = bench_hf.main(
            ["--from-snapshot", path, "--max-phase-share", "essentials=0.5"]
        )
        assert bad == 1 and "FAIL" in capsys.readouterr().out
